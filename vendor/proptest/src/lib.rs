//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this vendored
//! shim implements exactly the surface the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`any`],
//! integer-range / tuple / `collection::vec` / `option::of` / printable-string
//! strategies, and [`ProptestConfig::with_cases`]. Generation is driven by a
//! deterministic splitmix64 stream seeded from the test name, so failures
//! reproduce bit-identically across runs — which is also what the rest of
//! this repository is about. Shrinking is not implemented; a failing case
//! reports its inputs via `Debug` instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error produced by a failing `prop_assert!` family macro.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator, seeded per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Derives a reproducible stream for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Marker returned by [`any`]; generates uniformly over the whole type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T` (integers, `bool`, `f64`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises subnormals, infinities and NaNs too.
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Printable-string strategy: a `&str` literal is treated as a loose regex.
///
/// Only the shape used in this workspace is honoured: a char-class escape
/// (e.g. `\PC`, printable char) followed by an optional `{lo,hi}` repetition.
/// Characters are drawn from printable ASCII plus a few multi-byte code
/// points so UTF-8 handling gets exercised.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const EXTRA: [char; 6] = ['é', 'Ω', 'λ', '→', '☃', '日'];
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                let r = rng.next_u64();
                if r % 8 == 0 {
                    EXTRA[(r >> 8) as usize % EXTRA.len()]
                } else {
                    // Printable ASCII 0x20..=0x7e.
                    char::from(0x20 + ((r >> 8) % 0x5f) as u8)
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// `proptest::collection` — collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` (half-open).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                // Render inputs before the body runs: the body may move them.
                let inputs = format!("{:?}", ($(&$arg,)+));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}: {}\n  inputs: {}",
                        stringify!($name),
                        case,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}
