//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendored shim covers
//! the surface the workspace's two criterion harnesses use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple calibrated loop (not criterion's bootstrap
//! statistics): each benchmark is warmed up, then timed over enough
//! iterations to fill ~200 ms, and the mean per-iteration wall time is
//! printed. That is sufficient for the relative comparisons the figure
//! harnesses make; absolute numbers carry no confidence intervals.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Id made of the parameter rendering only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    mean: Option<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall time per call.
    ///
    /// In `--test` mode (`cargo bench -- --test`, the smoke mode CI uses)
    /// the routine runs exactly once, untimed — mirroring real criterion.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and calibrate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let target = (MEASURE.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean = Some(elapsed / u32::try_from(target).unwrap_or(u32::MAX));
    }
}

fn run_one(id: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean: None,
        test_mode,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{id:<50} time: [{mean:?}/iter]"),
        None if test_mode => println!("{id:<50} test: ok"),
        None => println!("{id:<50} (no measurement recorded)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
///
/// Honours criterion's `--test` CLI flag: each benchmark routine runs
/// exactly once with no warmup or measurement, so CI can smoke-run a
/// harness in seconds.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Whether `--test` smoke mode is active (single untimed pass per
    /// benchmark). Exposed so harnesses with custom `main` functions can
    /// share this parser instead of re-reading `env::args`.
    #[must_use]
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let test_mode = self._criterion.test_mode;
        run_one(&format!("{}/{}", self.name, id.into()), test_mode, &mut f);
        self
    }

    /// Runs a parameterised benchmark within this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut g = |b: &mut Bencher| f(b, input);
        let test_mode = self._criterion.test_mode;
        run_one(&format!("{}/{}", self.name, id), test_mode, &mut g);
        self
    }

    /// Finishes the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
