//! # DEAR — Deterministic Adaptive AUTOSAR (reproduction facade)
//!
//! This crate re-exports the whole reproduction of *Achieving Determinism
//! in Adaptive AUTOSAR* (Menard et al., DATE 2020) as namespaced modules,
//! and hosts the runnable examples (`examples/`) and the workspace-level
//! integration tests (`tests/`).
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`time`] | `dear-time` | instants, durations |
//! | [`observe`] | `dear-observe` | deterministic telemetry: metrics, spans, exports |
//! | [`sim`] | `dear-sim` | seeded discrete-event platform simulator |
//! | [`reactor`] | `dear-core` | deterministic reactor runtime |
//! | [`someip`] | `dear-someip` | SOME/IP middleware + tag extension |
//! | [`ara`] | `dear-ara` | AP runtime: SWCs, proxies, skeletons |
//! | [`transactors`] | `dear-transactors` | DEAR integration layer |
//! | [`federation`] | `dear-federation` | centralized coordinator (RTI) |
//! | [`apd`] | `dear-apd` | brake-assistant case study |
//!
//! See `README.md` for the quickstart and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dear_apd as apd;
pub use dear_ara as ara;
pub use dear_core as reactor;
pub use dear_federation as federation;
pub use dear_observe as observe;
pub use dear_sim as sim;
pub use dear_someip as someip;
pub use dear_time as time;
pub use dear_transactors as transactors;
