//! The brake assistant with a **redundant Video Provider whose primary
//! is killed mid-run** — failure itself as a deterministic, testable
//! scenario.
//!
//! A warm standby replicates the primary's frame stream and offers the
//! same service at a lower priority; the adapter binds through a
//! `FailoverBinding`. The primary crashes right after frame 249. Three
//! detection paths are exercised: a graceful StopOffer, a silent crash
//! caught by SD TTL expiry (the SOME/IP-SD heartbeat), and a silent
//! crash caught earlier by the event-silence watchdog.
//!
//! The headline, printed and asserted below:
//!
//! * the **deterministic** build produces the *identical* decision
//!   sequence on every seed — every frame id decided exactly once, no
//!   losses, no duplicates, despite the crash — and replaying a seed
//!   reproduces **byte-identical per-stage event traces**, fault
//!   sequence and re-binding tags included;
//! * the **stock AP** build under the same kill scenario hands over at a
//!   scheduling-luck instant and its decision sequences diverge across
//!   seeds.
//!
//! ```sh
//! cargo run --release --example brake_assistant_failover
//! ```

use dear::apd::{run_det, run_nondet, DetParams, NondetParams, RedundancyParams};
use dear::observe::ObservabilityReport;
use dear::time::Duration;

const KILL_AFTER: u64 = 249;

fn det_params(mode: &str) -> DetParams {
    let redundancy = RedundancyParams {
        primary_dies_after: KILL_AFTER,
        graceful: mode == "stop-offer",
        heartbeat_timeout: (mode == "heartbeat").then(|| Duration::from_millis(150)),
        ..RedundancyParams::default()
    };
    DetParams {
        frames: 500,
        redundancy: Some(redundancy),
        record_traces: true,
        ..DetParams::default()
    }
}

fn main() {
    println!("brake assistant with a redundant provider, primary killed after frame {KILL_AFTER}");
    println!("(500 frames; deterministic build vs stock AP build)\n");

    println!("deterministic build:");
    println!("mode        | seed | decisions | failovers | rebind tag     | failover latency | fingerprint");
    println!("------------+------+-----------+-----------+----------------+------------------+-----------------");

    let mut all_identical = true;
    let mut det_failovers = 0u64;
    for mode in ["stop-offer", "ttl-expiry", "heartbeat"] {
        let params = det_params(mode);
        let mut fingerprints = Vec::new();
        for seed in 0..4 {
            let r = run_det(seed, &params);
            let fo = r.failover.expect("failover report");
            assert_eq!(
                r.decisions.iter().map(|d| d.frame_id).collect::<Vec<_>>(),
                (0..500).collect::<Vec<u64>>(),
                "{mode} seed {seed}: every frame decided exactly once"
            );
            assert_eq!(fo.failovers, 1, "{mode} seed {seed}");
            assert_eq!(r.stp_violations, 0, "{mode} seed {seed}");
            println!(
                "{mode:11} | {seed:4} | {:9} | {:9} | {:>14} | {:>16} | {:016x}",
                r.decisions.len(),
                fo.failovers,
                fo.rebound_at.map_or("n/a".into(), |t| t.to_string()),
                fo.failover_latency.map_or("n/a".into(), |l| l.to_string()),
                r.decision_fingerprint(),
            );
            det_failovers += fo.failovers;
            fingerprints.push(r.decision_fingerprint());
        }
        all_identical &= fingerprints.iter().all(|f| *f == fingerprints[0]);

        // Replay determinism: the same seed reproduces the whole run —
        // crash, SD churn, re-binding — byte-for-byte.
        let a = run_det(0, &params);
        let b = run_det(0, &params);
        assert_eq!(
            a.stage_traces, b.stage_traces,
            "{mode}: replays must be byte-identical"
        );
        assert_eq!(a.failover, b.failover);
    }
    println!();
    println!(
        "decision sequences identical across all seeds and detection modes: {}",
        if all_identical { "YES" } else { "NO" }
    );
    assert!(all_identical);

    println!("\nstock AP build, same kill scenario:");
    println!("seed | decisions | takeover at      | fingerprint");
    println!("-----+-----------+------------------+-----------------");
    let nondet_params = NondetParams {
        frames: 500,
        redundancy: Some(RedundancyParams {
            primary_dies_after: KILL_AFTER,
            ..RedundancyParams::default()
        }),
        ..NondetParams::default()
    };
    let mut fingerprints = Vec::new();
    for seed in 0..4 {
        let r = run_nondet(seed, &nondet_params);
        println!(
            "{seed:4} | {:9} | {:>16} | {:016x}",
            r.decisions.len(),
            r.backup_takeover_at.map_or("n/a".into(), |t| t.to_string()),
            r.decision_fingerprint(),
        );
        fingerprints.push(r.decision_fingerprint());
    }
    let distinct = fingerprints
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len();
    println!();
    println!(
        "stock build: {distinct}/4 distinct decision sequences — the handover instant is \
         scheduling luck,"
    );
    println!("and which frames are lost or duplicated around it differs run to run.");
    assert!(distinct > 1, "stock failover should diverge across seeds");
    println!();
    let mut report = ObservabilityReport::new("brake_assistant_failover");
    report.line("det_runs", "3 modes x 4 seeds");
    report.line("det_failovers", det_failovers);
    report.line(
        "det_sequences_identical",
        if all_identical { "YES" } else { "NO" },
    );
    report.line("stock_distinct_sequences", format!("{distinct}/4"));
    print!("{report}");
}
