//! The deterministic DEAR brake assistant (paper §IV.B).
//!
//! Same pipeline and logic as `brake_assistant_nondet`, coordinated by
//! reactors and tagged SOME/IP messages instead of one-slot buffers and
//! periodic callbacks.
//!
//! ```sh
//! cargo run --release --example brake_assistant_det
//! ```

use dear::apd::{run_det, DetParams};
use dear::observe::ObservabilityReport;

fn main() {
    let params = DetParams {
        frames: 2_000,
        ..DetParams::default()
    };
    println!("deterministic brake assistant (DEAR): reactors + transactors + tagged SOME/IP");
    println!(
        "deadlines 5/25/25/5 ms, L = {}, E = {}, {} frames per instance\n",
        params.latency_bound, params.clock_error, params.frames
    );
    println!("seed | decisions | mismatches | stp | deadline misses | e2e latency | fingerprint");
    println!(
        "-----+-----------+------------+-----+-----------------+-------------+-----------------"
    );
    let mut totals = (0usize, 0u64, 0u64, 0u64);
    let mut fingerprint = 0u64;
    for seed in 0..8 {
        let r = run_det(seed, &params);
        let e2e = r
            .end_to_end
            .first()
            .map_or("n/a".to_string(), |l| l.to_string());
        println!(
            "{seed:4} | {:9} | {:10} | {:3} | {:15} | {:>11} | {:016x}",
            r.decisions.len(),
            r.mismatches_cv,
            r.stp_violations,
            r.deadline_misses,
            e2e,
            r.decision_fingerprint()
        );
        totals.0 += r.decisions.len();
        totals.1 += r.mismatches_cv;
        totals.2 += r.stp_violations;
        totals.3 += r.deadline_misses;
        fingerprint = r.decision_fingerprint();
    }
    println!();
    println!("every instance processes every frame, in order, with zero errors and an");
    println!("identical decision sequence (same fingerprint) — determinism at the cost of");
    println!("a fixed 70 ms logical end-to-end latency that accounts for worst-case");
    println!("compute and communication delays.");
    println!();
    let mut report = ObservabilityReport::new("brake_assistant_det");
    report.line("instances", 8);
    report.line("decisions", totals.0);
    report.line(
        "errors",
        format!(
            "mismatches={} stp_violations={} deadline_misses={}",
            totals.1, totals.2, totals.3
        ),
    );
    report.line("fingerprint", format!("{fingerprint:016x}"));
    print!("{report}");
}
