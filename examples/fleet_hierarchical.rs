//! A three-vehicle platoon under the **hierarchical** coordinator.
//!
//! Each vehicle is a coordination *zone* with its own zone coordinator;
//! a root coordinator runs the same LBTS fixpoint over zone summaries
//! that each zone runs over its members. The lead vehicle's brake sensor
//! fans out to its own controller (intra-zone) and to both followers'
//! controllers (cross-zone), so floors genuinely have to cross the root:
//!
//! ```text
//!                     root
//!                   /  |   \            floors up, relays down
//!             zone 0  zone 1  zone 2    (batched Floor frames)
//!               |        |       |
//!   sensor ─► ctrl0    ctrl1   ctrl2    (ctrl1/ctrl2 fed cross-zone)
//! ```
//!
//! Three observations:
//!
//! 1. the logical schedule is byte-identical to the same scenario under
//!    the flat single-RTI coordinator — sharding is observably free;
//! 2. the zone protocol batches its control frames (LTC+NET up, grant
//!    fan-out down, floor relays between levels), where the flat
//!    protocol sends one record per frame;
//! 3. with per-shard liveness enabled, severing one follower's *uplink*
//!    kills only that zone's floor at the root: the zone is declared
//!    dead, its bound is released, and the other follower keeps braking.
//!
//! ```sh
//! cargo run --release --example fleet_hierarchical
//! ```

use dear::federation::{CoordinatedPlatform, HierarchicalRti, Rti, ZoneId};
use dear::observe::{is_valid_json, ObservabilityReport, Observe};
use dear::reactor::{ProgramBuilder, Runtime, Tag};
use dear::sim::{FaultPlan, LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear::someip::{Binding, SdRegistry, ServiceInstance};
use dear::time::{Duration, Instant};
use dear::transactors::{
    ClientEventTransactor, DearConfig, EventSpec, Outbox, ServerEventTransactor,
};
use std::sync::{Arc, Mutex};

const BRAKE: u16 = 0x0B0B;
const SPEC: EventSpec = EventSpec {
    service: BRAKE,
    instance: 1,
    eventgroup: 1,
    event: 0x8001,
};
const VEHICLES: usize = 3;

struct Outcome {
    /// Per-controller (tag, brake level) schedules.
    schedules: Vec<Vec<(Tag, u8)>>,
    batches: u64,
    zone_deaths: u64,
    floor_records: u64,
    /// The run's telemetry handle (metrics + timeline, outlives the sim).
    observe: Observe,
    report: ObservabilityReport,
}

/// Builds and drives the platoon. `hierarchical` picks the coordinator;
/// `sever_uplink` cuts follower 1's zone-to-root link mid-run (only
/// meaningful with the hierarchy + liveness).
fn run(hierarchical: bool, sever_uplink: bool) -> Outcome {
    let deadline = Duration::from_millis(2);
    let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
    let edge = deadline + cfg.stp_offset();

    let mut sim = Simulation::new(7);
    sim.enable_tracing();
    // Before any coordinator exists, so the lanes get their names.
    let observe = sim.enable_observability();
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    // Nodes: 0 root/RTI, 1..=3 zone coordinators, 4.. ECUs.
    let (flat, hier) = if hierarchical {
        let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
        for v in 0..VEHICLES {
            h.add_zone(&mut sim, &net, &sd, NodeId(1 + v as u16));
        }
        (None, Some(h))
    } else {
        (Some(Rti::new(&mut sim, &net, &sd, NodeId(0))), None)
    };
    let platform = |sim: &mut Simulation,
                    name: &str,
                    vehicle: usize,
                    runtime: Runtime,
                    outbox: Outbox,
                    binding: &Binding| {
        let rng = sim.fork_rng(name);
        match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                rti,
                binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                h,
                ZoneId(vehicle as u16),
                binding,
                false,
            )
            .expect("zone registration"),
            _ => unreachable!(),
        }
    };

    // Lead vehicle's brake sensor: five escalating brake levels, 10 ms
    // apart, published as SOME/IP events.
    let sensor = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let publish = ServerEventTransactor::declare(&mut b, &outbox, "brake", deadline);
        {
            let mut logic = b.reactor("sensor", 0u8);
            let out = logic.output::<dear::someip::FrameBuf>("out");
            let t = logic.timer(
                "sample",
                Duration::from_millis(10),
                Some(Duration::from_millis(10)),
            );
            logic.reaction("sample").triggered_by(t).effects(out).body(
                move |level: &mut u8, ctx| {
                    *level += 1;
                    if *level <= 5 {
                        ctx.set(out, vec![*level * 20].into());
                    }
                },
            );
            logic.finish();
            b.connect(out, publish.event).unwrap();
        }
        let binding = Binding::new(&net, &sd, NodeId(4), 0x40);
        binding.offer(
            &mut sim,
            ServiceInstance::new(BRAKE, 1),
            Duration::from_secs(1 << 20),
        );
        let p = platform(
            &mut sim,
            "lead-sensor",
            0,
            Runtime::new(b.build().unwrap()),
            outbox,
            &binding,
        );
        publish.bind(&p, &binding, SPEC);
        p
    };

    // One brake controller per vehicle, all subscribed to the sensor.
    let mut controllers = Vec::new();
    let mut schedules = Vec::new();
    for v in 0..VEHICLES {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, "brake");
        let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let mut logic = b.reactor("controller", ());
            let sink = seen.clone();
            logic
                .reaction("apply")
                .triggered_by(input.event)
                .body(move |_, ctx| {
                    let level = ctx.get(input.event).unwrap()[0];
                    sink.lock().unwrap().push((ctx.tag(), level));
                });
            logic.finish();
        }
        let binding = Binding::new(&net, &sd, NodeId(5 + v as u16), 0x50 + v as u16);
        let p = platform(
            &mut sim,
            &format!("ctrl{v}"),
            v,
            Runtime::new(b.build().unwrap()),
            outbox,
            &binding,
        );
        input.bind(&p, &binding, SPEC, cfg);
        controllers.push(p);
        schedules.push(seen);
    }
    for ctrl in &controllers {
        match (&flat, &hier) {
            (Some(rti), None) => rti.connect(sensor.federate_id(), ctrl.federate_id(), edge),
            (None, Some(h)) => h.connect(sensor.federate_id(), ctrl.federate_id(), edge),
            _ => unreachable!(),
        }
    }

    sensor.start(&mut sim);
    for ctrl in &controllers {
        ctrl.start(&mut sim);
    }
    if sever_uplink {
        let h = hier.as_ref().expect("partition needs the hierarchy");
        h.enable_liveness(&mut sim, Duration::from_millis(50));
        sensor.enable_heartbeat(&mut sim, Duration::from_millis(10));
        for ctrl in &controllers {
            ctrl.enable_heartbeat(&mut sim, Duration::from_millis(10));
        }
        // Follower 1's zone coordinator (node 2) loses its root uplink
        // after the third brake event; its data plane stays up.
        let mut faults = FaultPlan::new();
        faults.kill_link(Instant::from_millis(35), NodeId(2), NodeId(0));
        faults.apply(&mut sim, &net);
    }
    sim.run_until(Instant::from_secs(1));

    let mut batches = 0;
    for p in controllers.iter().chain([&sensor]) {
        let cs = p.coordination_stats();
        assert_eq!(cs.bound_breaches(), 0, "{} breached its bound", p.name());
        batches += cs.coord_batches_sent() + cs.coord_batches_received();
    }
    let (zone_deaths, floor_records) = match (&flat, &hier) {
        (None, Some(h)) => (h.root_stats().deaths, h.root_stats().floor_records),
        _ => (0, 0),
    };
    for event in sim.trace_log().events_in("rti") {
        println!("  [trace] {event}");
    }
    let mut report = ObservabilityReport::new(if hierarchical {
        "fleet_hierarchical"
    } else {
        "fleet_flat"
    });
    report.line("sim", sim.stats());
    report.line("net", net.stats());
    for p in controllers.iter().chain([&sensor]) {
        report.line(format!("runtime[{}]", p.name()), p.stats());
        report.line(format!("coord[{}]", p.name()), p.coordination_stats());
    }
    match (&flat, &hier) {
        (Some(rti), None) => report.line("rti", rti.stats()),
        (None, Some(h)) => {
            report.line("rti[root]", h.root_stats());
            for v in 0..VEHICLES {
                report.line(format!("rti[zone{v}]"), h.zone_stats(ZoneId(v as u16)));
            }
        }
        _ => unreachable!(),
    }
    report.attach(&observe);
    Outcome {
        schedules: schedules
            .iter()
            .map(|s| s.lock().unwrap().clone())
            .collect(),
        batches,
        zone_deaths,
        floor_records,
        observe,
        report,
    }
}

fn main() {
    println!("three-vehicle platoon: lead brake sensor fanning out to all controllers\n");

    let hier = run(true, false);
    println!("hierarchical run (3 zones under one root):");
    for (v, schedule) in hier.schedules.iter().enumerate() {
        let levels: Vec<u8> = schedule.iter().map(|(_, l)| *l).collect();
        println!(
            "  vehicle {v}: {} brake events {:?}, first at {}",
            schedule.len(),
            levels,
            schedule
                .first()
                .map_or_else(String::new, |(t, _)| t.to_string()),
        );
    }
    println!(
        "  batched control frames: {}, floors across the root: {}",
        hier.batches, hier.floor_records
    );

    // Export the run's timeline as Chrome trace_event JSON — loadable in
    // Perfetto / chrome://tracing, one lane per federate plus the
    // coordination lanes carrying the zone/root fixpoint marks.
    let trace_json = hier.observe.chrome_trace();
    assert!(
        is_valid_json(&trace_json),
        "exported trace must be valid JSON"
    );
    for lane in ["lead-sensor", "ctrl0", "ctrl1", "ctrl2", "root", "zone1"] {
        assert!(trace_json.contains(lane), "trace must name the {lane} lane");
    }
    assert!(
        trace_json.contains("fixpoint"),
        "trace must carry the fixpoint marks"
    );
    let trace_path = std::path::Path::new("target").join("fleet_hierarchical.trace.json");
    match std::fs::write(&trace_path, &trace_json) {
        Ok(()) => println!(
            "  timeline exported: {} ({} bytes, open in ui.perfetto.dev)",
            trace_path.display(),
            trace_json.len()
        ),
        Err(e) => println!("  timeline export skipped ({e})"),
    }

    let flat = run(false, false);
    println!();
    println!("flat single-RTI run of the identical topology:");
    println!(
        "  identical logical schedules: {}",
        yn(flat.schedules == hier.schedules)
    );
    println!(
        "  batched control frames: {} (flat protocol is one record per frame)",
        flat.batches
    );
    assert_eq!(
        flat.schedules, hier.schedules,
        "sharding must be observably free"
    );
    assert_eq!(flat.batches, 0);
    assert!(hier.batches > 0);

    println!();
    println!("partition: follower 1's zone loses its root uplink at t = 35 ms");
    let cut = run(true, true);
    for (v, schedule) in cut.schedules.iter().enumerate() {
        println!("  vehicle {v}: {} brake events", schedule.len());
    }
    println!(
        "  zones declared dead at the root: {} (follower 1's floor released)",
        cut.zone_deaths
    );
    assert_eq!(cut.zone_deaths, 1);
    assert_eq!(
        cut.schedules[2].len(),
        5,
        "the sibling zone must keep braking"
    );
    println!();
    println!("the hierarchy is observably identical to the flat RTI, batches its");
    println!("coordination traffic, and contains an uplink partition to the zone");
    println!("that lost it — exactly the sharding story the fleet_scale bench");
    println!("quantifies at 100/400/1000 federates.");
    println!();
    print!("{}", hier.report);
}

fn yn(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}
