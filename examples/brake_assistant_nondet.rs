//! The nondeterministic brake assistant (paper §IV.A, Figures 4 and 5).
//!
//! Runs a few seeded instances of the APD-style pipeline and reports the
//! four instrumented error types.
//!
//! ```sh
//! cargo run --release --example brake_assistant_nondet
//! ```

use dear::apd::{run_nondet, NondetParams};
use dear::observe::ObservabilityReport;

fn main() {
    let params = NondetParams {
        frames: 2_000,
        ..NondetParams::default()
    };
    println!(
        "nondeterministic brake assistant: 5 SWCs, one-slot buffers, 50 ms periodic callbacks"
    );
    println!("{} frames per instance\n", params.frames);
    println!("seed | decisions | dropped@pre | dropped@cv | mismatches | dropped@eba | total %");
    println!("-----+-----------+-------------+------------+------------+-------------+--------");
    let mut decisions = 0usize;
    let mut errors = 0u64;
    for seed in 0..8 {
        let r = run_nondet(seed, &params);
        println!(
            "{seed:4} | {:9} | {:11} | {:10} | {:10} | {:11} | {:6.2}",
            r.decisions.len(),
            r.dropped_preprocessing,
            r.dropped_cv,
            r.mismatches_cv,
            r.dropped_eba,
            r.prevalence_pct()
        );
        decisions += r.decisions.len();
        errors += r.dropped_preprocessing + r.dropped_cv + r.mismatches_cv + r.dropped_eba;
    }
    println!();
    println!("the error rate and the dominant error type vary from instance to instance —");
    println!("the same application, deployed identically, behaves differently depending on");
    println!("uncontrollable callback phases (paper Figure 5).");
    println!();
    let mut report = ObservabilityReport::new("brake_assistant_nondet");
    report.line("instances", 8);
    report.line("decisions", decisions);
    report.line("errors", errors);
    print!("{report}");
}
