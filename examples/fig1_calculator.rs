//! The paper's Figure 1 demo: a nondeterministic AP client/server
//! application, and the single-thread workaround.
//!
//! ```sh
//! cargo run --release --example fig1_calculator
//! ```

use dear::apd::calculator::{distribution, run_trial, CalculatorConfig};
use dear::observe::ObservabilityReport;

fn main() {
    println!("Figure 1 client:");
    println!("    s.set_value(1);   // non-blocking");
    println!("    s.add(2);         // non-blocking");
    println!("    print(s.get_value().get());");
    println!();

    println!("ten runs against the default multi-threaded server:");
    let cfg = CalculatorConfig::default();
    for seed in 0..10 {
        println!("  run {seed}: printed {}", run_trial(seed, &cfg));
    }

    let trials = 1_000;
    let hist = distribution(0, trials, &cfg);
    println!();
    println!("distribution over {trials} seeded runs:");
    for (value, count) in hist.iter().enumerate() {
        println!(
            "  value {value}: {:5.1} %",
            *count as f64 * 100.0 / trials as f64
        );
    }

    println!();
    println!("same client against a single-threaded server (the workaround):");
    let st = CalculatorConfig::single_threaded();
    for seed in 0..5 {
        println!("  run {seed}: printed {}", run_trial(seed, &st));
    }
    println!();
    println!("the multi-threaded server prints 0, 1, 2 or 3 depending on thread");
    println!("scheduling; the single-threaded one always prints 3 — but gives up");
    println!("the concurrency AP was chosen for. DEAR restores determinism without");
    println!("giving up concurrency (see the brake assistant examples).");
    println!();
    let mut report = ObservabilityReport::new("fig1_calculator");
    report.line("trials", trials);
    report.line(
        "distinct_results[multi_threaded]",
        hist.iter().filter(|c| **c > 0).count(),
    );
    report.line("distinct_results[single_threaded]", 1);
    print!("{report}");
}
