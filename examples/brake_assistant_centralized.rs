//! The deterministic brake assistant under **centralized** coordination:
//! an RTI grants every stage its tag advances over a dedicated SOME/IP
//! coordination channel, instead of each stage gating locally via the
//! `t + D + L + E` offset alone.
//!
//! The headline: both coordination strategies produce **byte-identical
//! per-stage event traces** — the coordination layer is pluggable without
//! observable consequences — while the centralized build additionally
//! reports its NET/TAG/LTC traffic and grant-wait time.
//!
//! ```sh
//! cargo run --release --example brake_assistant_centralized
//! ```

use dear::apd::{run_det, DetParams};
use dear::observe::ObservabilityReport;
use dear::transactors::Coordination;

fn params(coordination: Coordination) -> DetParams {
    DetParams {
        frames: 500,
        coordination,
        record_traces: true,
        ..DetParams::default()
    }
}

fn main() {
    println!("brake assistant, decentralized vs centralized coordination, 500 frames\n");
    println!(
        "seed | strategy      | decisions | stp | misses | fingerprint      | grants | NETs | LTCs | grant wait"
    );
    println!(
        "-----+---------------+-----------+-----+--------+------------------+--------+------+------+-----------"
    );

    let mut all_identical = true;
    let mut footer = ObservabilityReport::new("brake_assistant_centralized");
    for seed in 0..4 {
        let dec = run_det(seed, &params(Coordination::Decentralized));
        let cen = run_det(seed, &params(Coordination::Centralized));
        if seed == 0 {
            let c = &cen.coordination;
            footer.line("decisions", cen.decisions.len());
            footer.line(
                "coord[centralized]",
                format!(
                    "nets={} ltcs={} grants={} ptags={} bound_breaches={} grant_wait={}",
                    c.nets_sent,
                    c.ltcs_sent,
                    c.grants_received,
                    c.ptags_received,
                    c.bound_breaches,
                    c.grant_wait
                ),
            );
            footer.line(
                "fingerprint",
                format!("{:016x}", cen.decision_fingerprint()),
            );
        }
        for (label, r) in [("decentralized", &dec), ("centralized", &cen)] {
            let c = &r.coordination;
            println!(
                "{seed:4} | {label:13} | {:9} | {:3} | {:6} | {:016x} | {:6} | {:4} | {:4} | {}",
                r.decisions.len(),
                r.stp_violations,
                r.deadline_misses,
                r.decision_fingerprint(),
                c.grants_received,
                c.nets_sent,
                c.ltcs_sent,
                c.grant_wait,
            );
        }
        let identical = dec.stage_traces == cen.stage_traces
            && dec.decision_fingerprint() == cen.decision_fingerprint();
        all_identical &= identical;
        assert!(
            cen.coordination.within_bound && cen.coordination.bound_breaches == 0,
            "centralized run processed a tag beyond its granted bound"
        );
    }

    println!();
    println!(
        "per-stage event traces byte-identical across strategies: {}",
        if all_identical { "YES" } else { "NO" }
    );
    println!("the RTI's grants gate every stage (zero bound breaches), yet the");
    println!("observable execution — every reaction, tag and decision — is exactly");
    println!("the one the decentralized PTIDES-style driver produces.");
    assert!(all_identical);
    println!();
    print!("{footer}");
}
