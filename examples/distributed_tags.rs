//! Distributed deterministic coordination with skewed clocks.
//!
//! Two platforms with different clock offsets (within the sync bound `E`)
//! exchange tagged method calls. The demo shows that logical results are
//! bit-identical across runs with different network jitter and clock
//! skew — and that understating `L` turns silent reordering into an
//! *observable* safe-to-process violation instead.
//!
//! ```sh
//! cargo run --release --example distributed_tags
//! ```

use dear::observe::ObservabilityReport;
use dear::reactor::{ProgramBuilder, Runtime, Tag};
use dear::sim::{ClockModel, LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation};
use dear::someip::{Binding, SdRegistry, ServiceInstance};
use dear::time::{Duration, Instant};
use dear::transactors::{
    ClientMethodTransactor, DearConfig, FederatedPlatform, MethodSpec, Outbox,
    ServerMethodTransactor,
};
use std::sync::{Arc, Mutex};

const SERVICE: u16 = 0x2001;

/// Returns the response sequence as (delta from first release tag, value),
/// the absolute first release tag, the observed STP violation count, and
/// the run's observability footer. Absolute tags legitimately differ per
/// seed (the start anchor is a physical input); the *relative* schedule
/// and the values must not.
fn run(
    seed: u64,
    latency_bound: Duration,
) -> (Vec<(Duration, u8)>, Option<Tag>, u64, ObservabilityReport) {
    let mut sim = Simulation::new(seed);
    sim.enable_observability();
    let net = NetworkHandle::new(
        LinkConfig::with_latency(LatencyModel::uniform(
            Duration::from_micros(200),
            Duration::from_millis(3),
        )),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    // Clocks sampled within E = 1 ms of true time.
    let clock_model = ClockModel::new(Duration::from_micros(500), 0);
    let mut clock_rng = sim.fork_rng("clocks");
    let cfg = DearConfig::new(latency_bound, Duration::from_millis(1));
    let spec = MethodSpec {
        service: SERVICE,
        instance: 1,
        method: 1,
    };

    // Client: calls the remote square service every 20 ms, five times.
    let results: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
    let outbox_c = Outbox::new();
    let mut bc = ProgramBuilder::new();
    let cmt =
        ClientMethodTransactor::declare(&mut bc, &outbox_c, "square", Duration::from_millis(1));
    {
        let mut logic = bc.reactor("client", 0u8);
        let req = logic.output::<dear::someip::FrameBuf>("req");
        // A 1 ms tick keeps the client's logical clock moving — that is
        // what makes a late message's release tag land in the logical
        // past when `L` is understated.
        let t = logic.timer(
            "fire",
            Duration::from_millis(10),
            Some(Duration::from_millis(1)),
        );
        logic
            .reaction("call")
            .triggered_by(t)
            .effects(req)
            .body(move |n: &mut u8, ctx| {
                *n = n.saturating_add(1);
                if *n <= 5 {
                    ctx.set(req, vec![*n].into());
                }
            });
        let sink = results.clone();
        logic
            .reaction("collect")
            .triggered_by(cmt.response)
            .body(move |_, ctx| {
                let v = ctx.get(cmt.response).expect("present")[0];
                sink.lock().unwrap().push((ctx.tag(), v));
            });
        logic.finish();
        bc.connect(req, cmt.request).unwrap();
    }
    let client = FederatedPlatform::new(
        "client",
        Runtime::new(bc.build().expect("client program")),
        clock_model.sample(&mut clock_rng),
        outbox_c,
        sim.fork_rng("client-costs"),
    );
    let client_binding = Binding::new(&net, &sd, NodeId(1), 0x11);
    let client_stats = cmt.bind(&client, &client_binding, spec, cfg);

    // Server: squares the input.
    let outbox_s = Outbox::new();
    let mut bs = ProgramBuilder::new();
    let smt =
        ServerMethodTransactor::declare(&mut bs, &outbox_s, "square", Duration::from_millis(1));
    {
        let mut logic = bs.reactor("server", ());
        let resp = logic.output::<dear::someip::FrameBuf>("resp");
        logic
            .reaction("square")
            .triggered_by(smt.request)
            .effects(resp)
            .body(move |_, ctx| {
                let v = ctx.get(smt.request).expect("present")[0];
                ctx.set(resp, vec![v.wrapping_mul(v)].into());
            });
        logic.finish();
        bs.connect(resp, smt.response).unwrap();
    }
    let server = FederatedPlatform::new(
        "server",
        Runtime::new(bs.build().expect("server program")),
        clock_model.sample(&mut clock_rng),
        outbox_s,
        sim.fork_rng("server-costs"),
    );
    let server_binding = Binding::new(&net, &sd, NodeId(2), 0x22);
    server_binding.offer(
        &mut sim,
        ServiceInstance::new(SERVICE, 1),
        Duration::from_secs(3600),
    );
    let server_stats = smt.bind(&server, &server_binding, spec, cfg);

    // Start after the worst-case clock offset so every local clock is
    // past its epoch.
    let c = client.clone();
    sim.schedule_at(Instant::from_millis(1), move |sim| c.start(sim));
    let s = server.clone();
    sim.schedule_at(Instant::from_millis(1), move |sim| s.start(sim));
    sim.run_until(Instant::from_secs(2));

    let violations = client.stats().stp_violations
        + server.stats().stp_violations
        + client_stats.stp_violations()
        + server_stats.stp_violations();
    let mut report = ObservabilityReport::new("distributed_tags");
    report.line("sim", sim.stats());
    report.line("net", net.stats());
    report.line("runtime[client]", client.stats());
    report.line("runtime[server]", server.stats());
    report.line("transactor[client]", &client_stats);
    report.line("transactor[server]", &server_stats);
    report.attach(sim.observe());
    let raw = results.lock().unwrap().clone();
    let first = raw.first().map(|(t, _)| *t);
    let out = raw
        .iter()
        .map(|(t, v)| (t.time - first.expect("nonempty").time, *v))
        .collect();
    (out, first, violations, report)
}

fn main() {
    println!("five tagged square() calls across two platforms with skewed clocks\n");
    println!("with a correct latency bound L = 5 ms:");
    let baseline = run(0, Duration::from_millis(5));
    println!(
        "  first release at {} (anchor depends on the sampled clock skew)",
        baseline.1.expect("responses")
    );
    for (delta, v) in &baseline.0 {
        println!("  response {v:3} released at first + {delta}");
    }
    let mut identical = true;
    for seed in 1..6 {
        let r = run(seed, Duration::from_millis(5));
        identical &= r.0 == baseline.0;
    }
    println!(
        "  identical logical results across 6 seeds (different jitter + skew): {}",
        if identical { "YES" } else { "NO" }
    );

    println!();
    println!("with an understated bound L = 0.3 ms (actual latency up to 3 ms):");
    let mut total_violations = 0;
    for seed in 0..6 {
        let (_, _, v, _) = run(seed, Duration::from_micros(300));
        total_violations += v;
    }
    println!("  safe-to-process violations observed across 6 seeds: {total_violations}");
    println!("  — the broken assumption is *detected*, not silently reordered.");
    println!();
    print!("{}", baseline.3);
}
