//! Distributed tagged method calls under **centralized** coordination.
//!
//! Same two-platform square-service scenario as `distributed_tags`
//! (skewed clocks, jittery network), but an RTI grants every tag advance.
//! Two things to observe:
//!
//! 1. with a correct latency bound, the centralized run produces exactly
//!    the logical schedule of the decentralized run, for every seed —
//!    the coordination layer is pluggable without observable effect;
//! 2. with an **understated** bound (`L = 0.3 ms` against up to 3 ms of
//!    actual latency) both drivers turn the broken assumption into
//!    *observable* safe-to-process violations rather than silent
//!    reordering. (The RTI bounds what federates may process, but — like
//!    any coordinator that does not route the data plane through itself —
//!    it cannot recall a message already in flight; DEAR's answer is the
//!    same under both strategies: fail loudly.)
//!
//! ```sh
//! cargo run --release --example distributed_tags_centralized
//! ```

use dear::federation::{CoordinatedPlatform, Rti};
use dear::observe::ObservabilityReport;
use dear::reactor::{ProgramBuilder, Runtime, Tag};
use dear::sim::{ClockModel, LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation};
use dear::someip::{Binding, SdRegistry, ServiceInstance};
use dear::time::{Duration, Instant};
use dear::transactors::{
    ClientMethodTransactor, DearConfig, FederatedPlatform, MethodSpec, Outbox, PlatformDriver,
    ServerMethodTransactor,
};
use std::sync::{Arc, Mutex};

const SERVICE: u16 = 0x2001;

struct Outcome {
    /// (delta from first release tag, value) — the logical schedule.
    schedule: Vec<(Duration, u8)>,
    stp_violations: u64,
    grants: u64,
    grant_wait: Duration,
    report: ObservabilityReport,
}

/// Drives a prepared client/server pair to completion (shared tail of
/// both coordination strategies).
#[allow(clippy::too_many_arguments)]
fn drive<D: PlatformDriver>(
    mut sim: Simulation,
    client: D,
    server: D,
    cmt: ClientMethodTransactor,
    smt: ServerMethodTransactor,
    client_binding: &Binding,
    server_binding: &Binding,
    spec: MethodSpec,
    cfg: DearConfig,
    results: Arc<Mutex<Vec<(Tag, u8)>>>,
    grants: impl Fn() -> (u64, Duration),
) -> Outcome {
    let client_stats = cmt.bind(&client, client_binding, spec, cfg);
    let server_stats = smt.bind(&server, server_binding, spec, cfg);

    let c = client.clone();
    sim.schedule_at(Instant::from_millis(1), move |sim| c.start(sim));
    let s = server.clone();
    sim.schedule_at(Instant::from_millis(1), move |sim| s.start(sim));
    sim.run_until(Instant::from_secs(2));

    let stp = client.runtime_stats().stp_violations
        + server.runtime_stats().stp_violations
        + client_stats.stp_violations()
        + server_stats.stp_violations();
    let mut report = ObservabilityReport::new("distributed_tags_centralized");
    report.line("sim", sim.stats());
    report.line("runtime[client]", client.runtime_stats());
    report.line("runtime[server]", server.runtime_stats());
    report.line("transactor[client]", &client_stats);
    report.line("transactor[server]", &server_stats);
    report.attach(sim.observe());
    let raw = results.lock().unwrap().clone();
    let first = raw.first().map(|(t, _)| *t);
    let schedule = raw
        .iter()
        .map(|(t, v)| (t.time - first.expect("nonempty").time, *v))
        .collect();
    let (grants, grant_wait) = grants();
    Outcome {
        schedule,
        stp_violations: stp,
        grants,
        grant_wait,
        report,
    }
}

fn run(seed: u64, latency_bound: Duration, centralized: bool) -> Outcome {
    let mut sim = Simulation::new(seed);
    sim.enable_observability();
    let net = NetworkHandle::new(
        LinkConfig::with_latency(LatencyModel::uniform(
            Duration::from_micros(200),
            Duration::from_millis(3),
        )),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let clock_model = ClockModel::new(Duration::from_micros(500), 0);
    let mut clock_rng = sim.fork_rng("clocks");
    let cfg = DearConfig::new(latency_bound, Duration::from_millis(1));
    let deadline = Duration::from_millis(1);
    let spec = MethodSpec {
        service: SERVICE,
        instance: 1,
        method: 1,
    };

    // Client program: calls square() five times off a 1 ms tick.
    let results: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
    let outbox_c = Outbox::new();
    let mut bc = ProgramBuilder::new();
    let cmt = ClientMethodTransactor::declare(&mut bc, &outbox_c, "square", deadline);
    {
        let mut logic = bc.reactor("client", 0u8);
        let req = logic.output::<dear::someip::FrameBuf>("req");
        let t = logic.timer(
            "fire",
            Duration::from_millis(10),
            Some(Duration::from_millis(1)),
        );
        logic
            .reaction("call")
            .triggered_by(t)
            .effects(req)
            .body(move |n: &mut u8, ctx| {
                *n = n.saturating_add(1);
                if *n <= 5 {
                    ctx.set(req, vec![*n].into());
                }
            });
        let sink = results.clone();
        logic
            .reaction("collect")
            .triggered_by(cmt.response)
            .body(move |_, ctx| {
                let v = ctx.get(cmt.response).expect("present")[0];
                sink.lock().unwrap().push((ctx.tag(), v));
            });
        logic.finish();
        bc.connect(req, cmt.request).unwrap();
    }
    let client_runtime = Runtime::new(bc.build().expect("client program"));
    let client_clock = clock_model.sample(&mut clock_rng);
    let client_binding = Binding::new(&net, &sd, NodeId(1), 0x11);

    // Server program: squares the input.
    let outbox_s = Outbox::new();
    let mut bs = ProgramBuilder::new();
    let smt = ServerMethodTransactor::declare(&mut bs, &outbox_s, "square", deadline);
    {
        let mut logic = bs.reactor("server", ());
        let resp = logic.output::<dear::someip::FrameBuf>("resp");
        logic
            .reaction("square")
            .triggered_by(smt.request)
            .effects(resp)
            .body(move |_, ctx| {
                let v = ctx.get(smt.request).expect("present")[0];
                ctx.set(resp, vec![v.wrapping_mul(v)].into());
            });
        logic.finish();
        bs.connect(resp, smt.response).unwrap();
    }
    let server_runtime = Runtime::new(bs.build().expect("server program"));
    let server_clock = clock_model.sample(&mut clock_rng);
    let server_binding = Binding::new(&net, &sd, NodeId(2), 0x22);
    server_binding.offer(
        &mut sim,
        ServiceInstance::new(SERVICE, 1),
        Duration::from_secs(3600),
    );

    if centralized {
        let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
        let client = CoordinatedPlatform::new(
            "client",
            client_runtime,
            client_clock,
            outbox_c,
            sim.fork_rng("client-costs"),
            &rti,
            &client_binding,
            false,
        );
        let server = CoordinatedPlatform::new(
            "server",
            server_runtime,
            server_clock,
            outbox_s,
            sim.fork_rng("server-costs"),
            &rti,
            &server_binding,
            false,
        );
        // Both directions of the method call carry tags at least
        // D + L + E ahead of the sending tag.
        let edge = deadline + cfg.stp_offset();
        rti.connect(client.federate_id(), server.federate_id(), edge);
        rti.connect(server.federate_id(), client.federate_id(), edge);
        let (cs, ss) = (client.coordination_stats(), server.coordination_stats());
        drive(
            sim,
            client,
            server,
            cmt,
            smt,
            &client_binding,
            &server_binding,
            spec,
            cfg,
            results,
            move || {
                (
                    cs.grants_received() + ss.grants_received(),
                    cs.grant_wait() + ss.grant_wait(),
                )
            },
        )
    } else {
        let client = FederatedPlatform::new(
            "client",
            client_runtime,
            client_clock,
            outbox_c,
            sim.fork_rng("client-costs"),
        );
        let server = FederatedPlatform::new(
            "server",
            server_runtime,
            server_clock,
            outbox_s,
            sim.fork_rng("server-costs"),
        );
        drive(
            sim,
            client,
            server,
            cmt,
            smt,
            &client_binding,
            &server_binding,
            spec,
            cfg,
            results,
            || (0, Duration::ZERO),
        )
    }
}

fn main() {
    println!("five tagged square() calls, centralized (RTI) coordination\n");

    println!("with a correct latency bound L = 5 ms:");
    let l_ok = Duration::from_millis(5);
    let baseline = run(0, l_ok, true);
    for (delta, v) in &baseline.schedule {
        println!("  response {v:3} released at first + {delta}");
    }
    let mut identical = true;
    let mut matches_decentralized = true;
    for seed in 0..6 {
        let cen = run(seed, l_ok, true);
        let dec = run(seed, l_ok, false);
        identical &= cen.schedule == baseline.schedule;
        matches_decentralized &= cen.schedule == dec.schedule;
        assert_eq!(cen.stp_violations, 0, "seed {seed}");
    }
    println!(
        "  identical logical schedule across 6 seeds:          {}",
        yn(identical)
    );
    println!(
        "  identical to the decentralized driver, every seed:  {}",
        yn(matches_decentralized)
    );
    println!(
        "  RTI grants per run: {} (total grant wait {})",
        baseline.grants, baseline.grant_wait
    );

    println!();
    println!("with an understated bound L = 0.3 ms (actual latency up to 3 ms):");
    let l_bad = Duration::from_micros(300);
    let mut dec_violations = 0;
    let mut cen_violations = 0;
    for seed in 0..6 {
        dec_violations += run(seed, l_bad, false).stp_violations;
        cen_violations += run(seed, l_bad, true).stp_violations;
    }
    println!("  decentralized safe-to-process violations (6 seeds): {dec_violations}");
    println!("  centralized safe-to-process violations (6 seeds):   {cen_violations}");
    println!();
    println!("under correct bounds the two strategies are observably identical; under");
    println!("a broken bound both make the fault *observable* instead of silently");
    println!("reordering events — the centralized ledger (NET/TAG/LTC counters) just");
    println!("adds a second, per-grant audit trail.");
    assert!(identical && matches_decentralized);
    println!();
    print!("{}", baseline.report);
}

fn yn(b: bool) -> &'static str {
    if b {
        "YES"
    } else {
        "NO"
    }
}
