//! Quickstart: build and run a small deterministic reactor program.
//!
//! A periodic sensor reactor emits readings; a monitor reactor filters
//! them and raises an alarm event through a logical action; a logger
//! collects everything. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dear::observe::{Lane, ObservabilityReport, Observe};
use dear::reactor::{ProgramBuilder, Runtime, Startup};
use dear::time::{Duration, Instant};
use std::sync::{Arc, Mutex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();

    // A sensor producing a sawtooth reading every 10 ms.
    let mut sensor = b.reactor("sensor", 0i64);
    let tick = sensor.timer("tick", Duration::ZERO, Some(Duration::from_millis(10)));
    let reading = sensor.output::<i64>("reading");
    sensor
        .reaction("sample")
        .triggered_by(tick)
        .effects(reading)
        .body(move |state: &mut i64, ctx| {
            *state = (*state + 7) % 20;
            ctx.set(reading, *state);
        });
    drop(sensor);

    // A monitor that raises an alarm (via a logical action with a 1 ms
    // delay) whenever the reading exceeds a threshold.
    let mut monitor = b.reactor("monitor", ());
    let m_in = monitor.input::<i64>("reading");
    let alarm = monitor.logical_action::<i64>("alarm", Duration::from_millis(1));
    let alarm_out = monitor.output::<String>("alarm_msg");
    monitor
        .reaction("check")
        .triggered_by(m_in)
        .schedules(alarm)
        .body(move |_, ctx| {
            let v = *ctx.get(m_in).expect("triggered by reading");
            if v > 15 {
                ctx.schedule(alarm, Duration::ZERO, v);
            }
        });
    monitor
        .reaction("raise")
        .triggered_by(alarm)
        .effects(alarm_out)
        .body(move |_, ctx| {
            let v = ctx.get_action(&alarm).expect("alarm payload");
            ctx.set(alarm_out, format!("reading {v} exceeded threshold"));
        });
    drop(monitor);

    // A logger collecting readings and alarms.
    let mut logger = b.reactor("logger", ());
    let l_reading = logger.input::<i64>("reading");
    let l_alarm = logger.input::<String>("alarm");
    let log1 = log.clone();
    logger
        .reaction("log_reading")
        .triggered_by(l_reading)
        .body(move |_, ctx| {
            log1.lock().unwrap().push(format!(
                "[{}] reading = {}",
                ctx.logical_time(),
                ctx.get(l_reading).expect("present")
            ));
        });
    let log2 = log.clone();
    logger
        .reaction("log_alarm")
        .triggered_by(l_alarm)
        .body(move |_, ctx| {
            log2.lock().unwrap().push(format!(
                "[{}] ALARM: {}",
                ctx.logical_time(),
                ctx.get(l_alarm).expect("present")
            ));
        });
    let log3 = log.clone();
    logger
        .reaction("hello")
        .triggered_by(Startup)
        .body(move |_, _| log3.lock().unwrap().push("logger up".into()));
    drop(logger);

    b.connect(reading, m_in)?;
    b.connect(reading, l_reading)?;
    b.connect(alarm_out, l_alarm)?;

    let mut rt = Runtime::new(b.build()?);
    // Telemetry: counters plus one span per processed tag on the
    // standalone lane.
    let observe = Observe::enabled();
    rt.set_observe(observe.clone(), Lane::Sim);
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_millis(60))?;
    rt.run_fast(u64::MAX);

    for line in log.lock().unwrap().iter() {
        println!("{line}");
    }
    println!();
    let mut report = ObservabilityReport::new("quickstart");
    report.line("runtime", rt.stats());
    report.attach(&observe);
    print!("{report}");
    Ok(())
}
