//! Quickstart: build and run a small deterministic reactor program.
//!
//! A periodic sensor reactor emits readings; a monitor reactor filters
//! them and raises an alarm event through a logical action; a logger
//! collects everything. The reactors are written in the `#[derive(Reactor)]`
//! authoring DSL — see `examples/fig1_calculator.rs` for the same DSL over
//! foreign transactor ports, and the `dear::reactor::ProgramBuilder` docs
//! for the underlying builder calls the derive expands to. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dear::observe::{Lane, ObservabilityReport, Observe};
use dear::reactor::{
    LogicalAction, Port, ProgramBuilder, Reaction, ReactionCtx, Reactor, Runtime, Timer,
};
use dear::time::{Duration, Instant};
use std::sync::{Arc, Mutex};

/// A sensor producing a sawtooth reading every 10 ms.
#[derive(Reactor)]
#[reactor(state = i64)]
struct Sensor {
    #[timer(period = "Duration::from_millis(10)")]
    tick: Timer,
    #[output]
    reading: Port<i64>,
    #[reaction(triggers(tick), effects(reading))]
    sample: Reaction,
}

impl Sensor {
    fn sample(state: &mut i64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *state = (*state + 7) % 20;
        ctx.set(this.reading, *state);
    }
}

/// A monitor that raises an alarm (via a logical action with a 1 ms
/// delay) whenever the reading exceeds a threshold.
#[derive(Reactor)]
struct Monitor {
    #[input]
    reading: Port<i64>,
    #[action(min_delay = "Duration::from_millis(1)")]
    alarm: LogicalAction<i64>,
    #[output]
    alarm_msg: Port<String>,
    #[reaction(triggers(reading), schedules(alarm))]
    check: Reaction,
    #[reaction(triggers(alarm), effects(alarm_msg))]
    raise: Reaction,
}

impl Monitor {
    fn check(_: &mut (), this: &Self, ctx: &mut ReactionCtx<'_>) {
        let v = *ctx.get(this.reading).expect("triggered by reading");
        if v > 15 {
            ctx.schedule(this.alarm, Duration::ZERO, v);
        }
    }

    fn raise(_: &mut (), this: &Self, ctx: &mut ReactionCtx<'_>) {
        let v = ctx.get_action(&this.alarm).expect("alarm payload");
        ctx.set(this.alarm_msg, format!("reading {v} exceeded threshold"));
    }
}

/// A logger collecting readings and alarms.
#[derive(Reactor)]
#[reactor(state = Arc<Mutex<Vec<String>>>)]
struct Logger {
    #[input]
    reading: Port<i64>,
    #[input]
    alarm: Port<String>,
    #[reaction(triggers(reading))]
    log_reading: Reaction,
    #[reaction(triggers(alarm))]
    log_alarm: Reaction,
    #[reaction(triggers(startup))]
    hello: Reaction,
}

impl Logger {
    fn log_reading(log: &mut Arc<Mutex<Vec<String>>>, this: &Self, ctx: &mut ReactionCtx<'_>) {
        log.lock().unwrap().push(format!(
            "[{}] reading = {}",
            ctx.logical_time(),
            ctx.get(this.reading).expect("present")
        ));
    }

    fn log_alarm(log: &mut Arc<Mutex<Vec<String>>>, this: &Self, ctx: &mut ReactionCtx<'_>) {
        log.lock().unwrap().push(format!(
            "[{}] ALARM: {}",
            ctx.logical_time(),
            ctx.get(this.alarm).expect("present")
        ));
    }

    fn hello(log: &mut Arc<Mutex<Vec<String>>>, _: &Self, _: &mut ReactionCtx<'_>) {
        log.lock().unwrap().push("logger up".into());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();

    let sensor: Sensor = b.declare("sensor", 0);
    let monitor: Monitor = b.declare("monitor", ());
    let logger: Logger = b.declare("logger", log.clone());

    b.connect(sensor.reading, monitor.reading)?;
    b.connect(sensor.reading, logger.reading)?;
    b.connect(monitor.alarm_msg, logger.alarm)?;

    let mut rt = Runtime::new(b.build()?);
    // Telemetry: counters plus one span per processed tag on the
    // standalone lane.
    let observe = Observe::enabled();
    rt.set_observe(observe.clone(), Lane::Sim);
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_millis(60))?;
    rt.run_fast(u64::MAX);

    for line in log.lock().unwrap().iter() {
        println!("{line}");
    }
    println!();
    let mut report = ObservabilityReport::new("quickstart");
    report.line("runtime", rt.stats());
    report.attach(&observe);
    print!("{report}");
    Ok(())
}
