//! The brake assistant with a **federate killed mid-run and restarted
//! from its durable event log** — crash-recovery as a deterministic,
//! testable scenario.
//!
//! The Computer Vision federate runs with a durable log attached: every
//! started tag, granted bound and injected input is appended before it
//! takes effect. Mid-run the CV node is killed by a `FaultPlan`; while
//! it is down, inbound frames and RTI grants keep landing in the log.
//! 10 ms later the recovery driver rebuilds the identical reactor
//! program, replays the log — re-processing every logged tag at its
//! logged physical time, suppressing outbound messages the dead
//! incarnation already put on the wire — and rejoins the RTI with a
//! `Rejoin` frame carrying its new incarnation number.
//!
//! The headline, printed and asserted below: the post-rejoin run is
//! **byte-identical to a run that never crashed** — same decision
//! sequence, same per-stage event-trace fingerprints — on every seed,
//! with the control-plane diet off and on.
//!
//! ```sh
//! cargo run --release --example brake_assistant_rejoin
//! ```

use dear::apd::{run_det, DetParams, RecoveryParams};
use dear::observe::ObservabilityReport;
use dear::time::Duration;
use dear::transactors::Coordination;

const FRAMES: u64 = 300;
const KILL_AFTER: u64 = 150;

fn params(diet: bool, recovery: bool) -> DetParams {
    DetParams {
        frames: FRAMES,
        coordination: Coordination::Centralized,
        control_diet: diet,
        record_traces: true,
        recovery: recovery.then(|| RecoveryParams {
            crash_after_frame: KILL_AFTER,
            dead_for: Duration::from_millis(10),
            snapshot_every: 16,
        }),
        ..DetParams::default()
    }
}

fn main() {
    println!("brake assistant with the CV federate killed after frame {KILL_AFTER},");
    println!("restarted from snapshot + durable log, rejoining the RTI");
    println!("({FRAMES} frames; crashed run vs never-crashed baseline)\n");

    println!("diet | seed | decisions | outage  | replayed tags/inputs | suppressed | resent | fingerprint      | == baseline");
    println!("-----+------+-----------+---------+----------------------+------------+--------+------------------+------------");

    let mut all_identical = true;
    let mut total_replayed = 0u64;
    for diet in [false, true] {
        let baseline = run_det(0, &params(diet, false));
        for seed in 0..4 {
            let baseline = if seed == 0 {
                baseline.clone()
            } else {
                run_det(seed, &params(diet, false))
            };
            let r = run_det(seed, &params(diet, true));
            let rec = r.recovery.expect("recovery report");

            // Completeness: every frame decided exactly once, despite
            // the crash — nothing lost, nothing duplicated.
            assert_eq!(
                r.decisions.iter().map(|d| d.frame_id).collect::<Vec<_>>(),
                (0..FRAMES).collect::<Vec<u64>>(),
                "diet={diet} seed {seed}: every frame decided exactly once"
            );
            // Replay fidelity: the log and the rebuilt program agreed
            // on every single replayed step.
            assert_eq!(rec.replay_mismatches, 0, "diet={diet} seed {seed}");
            assert!(rec.replayed_tags > 0, "diet={diet} seed {seed}");
            assert_eq!(r.stp_violations, 0, "diet={diet} seed {seed}");
            assert_eq!(r.mismatches_cv, 0, "diet={diet} seed {seed}");

            // The claim: decisions AND per-stage event traces are
            // byte-identical to the never-crashed run.
            let identical = r.decision_fingerprint() == baseline.decision_fingerprint()
                && r.stage_traces == baseline.stage_traces;
            all_identical &= identical;
            total_replayed += rec.replayed_tags;

            println!(
                " {:3} | {seed:4} | {:9} | {:>7} | {:10} / {:7} | {:10} | {:6} | {:016x} | {}",
                if diet { "on" } else { "off" },
                r.decisions.len(),
                rec.outage.to_string(),
                rec.replayed_tags,
                rec.replayed_inputs,
                rec.suppressed_sends,
                rec.resent_sends,
                r.decision_fingerprint(),
                if identical { "YES" } else { "NO" },
            );
        }
    }
    println!();
    println!(
        "crashed runs byte-identical to never-crashed baselines: {}",
        if all_identical { "YES" } else { "NO" }
    );
    assert!(all_identical);

    // Replay determinism: the same seed reproduces the whole run —
    // crash, log replay, rejoin — byte-for-byte.
    let a = run_det(0, &params(false, true));
    let b = run_det(0, &params(false, true));
    assert_eq!(a.stage_traces, b.stage_traces, "replays must be identical");
    assert_eq!(a.recovery, b.recovery);

    println!();
    let mut report = ObservabilityReport::new("brake_assistant_rejoin");
    report.line("runs", "2 diet modes x 4 seeds");
    report.line("replayed_tags_total", total_replayed);
    report.line(
        "sequences_identical",
        if all_identical { "YES" } else { "NO" },
    );
    print!("{report}");
}
