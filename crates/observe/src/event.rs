//! Structured trace events: the typed replacement for free-form detail
//! strings on the recording hot path.
//!
//! A [`EventKind`] carries the *data* of a trace record — the logical tag
//! and interned component names — instead of a pre-formatted `String`.
//! Recording one therefore costs an `Arc` clone and a copy of two
//! integers; the human-readable line (and the fingerprint bytes) are
//! produced on demand by [`EventKind::render`], whose output is
//! byte-identical to the `format!` strings the stack recorded before the
//! typed model existed. That canonical rendering is what keeps every
//! pre-existing `Trace::fingerprint` value stable.

use dear_time::Instant;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// A logical tag `(time, microstep)` as used by the reactor runtime.
///
/// This is a structural twin of the runtime's `Tag` type (which lives
/// above this crate in the dependency graph); its `Display` output is
/// identical, e.g. `(1.000000000s, 2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalTag {
    /// The time component.
    pub time: Instant,
    /// The microstep component.
    pub microstep: u32,
}

impl LogicalTag {
    /// A tag at the given time, microstep 0.
    #[must_use]
    pub fn at(time: Instant) -> Self {
        LogicalTag { time, microstep: 0 }
    }
}

impl fmt::Display for LogicalTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.time, self.microstep)
    }
}

/// A typed trace record.
///
/// Each variant corresponds to one of the free-form detail lines the
/// stack used to `format!` on the recording path; [`EventKind::render`]
/// reproduces those lines byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A reaction body executed at a tag (`"{name} at {tag}"`).
    Reaction {
        /// Interned reaction name, e.g. `"sensor/sample"`.
        name: Arc<str>,
        /// The tag it executed at.
        tag: LogicalTag,
    },
    /// A deadline handler ran instead of the body (`"{name} at {tag}"`).
    DeadlineMiss {
        /// Interned reaction name.
        name: Arc<str>,
        /// The tag it executed at.
        tag: LogicalTag,
    },
    /// A safe-to-process violation was rejected at injection
    /// (`"action {name} requested {tag} but current is {last}"`).
    StpViolation {
        /// Interned action name.
        name: Arc<str>,
        /// The tag the injection asked for.
        requested: LogicalTag,
        /// The runtime's current tag at rejection time.
        current: LogicalTag,
    },
}

impl EventKind {
    /// Appends the canonical detail line to `out`.
    ///
    /// The output is byte-identical to the legacy `format!` strings, so
    /// fingerprints over rendered details are stable across the
    /// string→typed migration.
    pub fn render(&self, out: &mut String) {
        match self {
            EventKind::Reaction { name, tag } | EventKind::DeadlineMiss { name, tag } => {
                out.push_str(name);
                out.push_str(" at ");
                let _ = write!(out, "{tag}");
            }
            EventKind::StpViolation {
                name,
                requested,
                current,
            } => {
                out.push_str("action ");
                out.push_str(name);
                let _ = write!(out, " requested {requested} but current is {current}");
            }
        }
    }

    /// The component name this record is about.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            EventKind::Reaction { name, .. }
            | EventKind::DeadlineMiss { name, .. }
            | EventKind::StpViolation { name, .. } => name,
        }
    }

    /// The logical tag this record is anchored at.
    #[must_use]
    pub fn tag(&self) -> LogicalTag {
        match self {
            EventKind::Reaction { tag, .. } | EventKind::DeadlineMiss { tag, .. } => *tag,
            EventKind::StpViolation { requested, .. } => *requested,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_tag_display_matches_runtime_tag_format() {
        let t = LogicalTag {
            time: Instant::from_secs(1),
            microstep: 2,
        };
        assert_eq!(t.to_string(), "(1.000000000s, 2)");
        assert_eq!(
            LogicalTag::at(Instant::EPOCH).to_string(),
            "(0.000000000s, 0)"
        );
    }

    #[test]
    fn render_matches_legacy_format_strings() {
        let tag = LogicalTag {
            time: Instant::from_millis(10),
            microstep: 0,
        };
        let name: Arc<str> = Arc::from("ctrl/apply");
        let k = EventKind::Reaction {
            name: name.clone(),
            tag,
        };
        assert_eq!(k.to_string(), format!("{name} at {tag}"));

        let k = EventKind::DeadlineMiss {
            name: name.clone(),
            tag,
        };
        assert_eq!(k.to_string(), format!("{name} at {tag}"));

        let last = LogicalTag {
            time: Instant::from_millis(12),
            microstep: 1,
        };
        let k = EventKind::StpViolation {
            name: name.clone(),
            requested: tag,
            current: last,
        };
        assert_eq!(
            k.to_string(),
            format!("action {name} requested {tag} but current is {last}")
        );
    }

    #[test]
    fn accessors() {
        let tag = LogicalTag::at(Instant::from_secs(3));
        let k = EventKind::Reaction {
            name: Arc::from("r"),
            tag,
        };
        assert_eq!(k.name(), "r");
        assert_eq!(k.tag(), tag);
    }
}
