//! The metrics registry: counters, gauges, and fixed-bucket log-2
//! latency histograms with deterministic snapshots.
//!
//! Everything here is integer arithmetic over `BTreeMap`s, so a
//! [`Registry::snapshot`] is a pure function of the recorded values:
//! two runs that record the same values in any order produce
//! byte-identical snapshot text. That property is what the
//! snapshot-determinism property tests assert across executor back-ends.

use dear_time::Duration;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log-2 buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`. 64 value buckets + the zero bucket
/// cover the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log-2 histogram over `u64` samples (typically
/// nanoseconds of latency).
///
/// # Examples
///
/// ```
/// use dear_observe::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [1u64, 2, 3, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 1000);
/// assert!(h.percentile_bound(50) <= h.percentile_bound(99));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// The bucket index a value falls into.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket.
fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, rounded down (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the `q`-th percentile (0–100): the inclusive
    /// top of the first bucket at which the cumulative count reaches
    /// `q%` of all samples. Deterministic by construction.
    #[must_use]
    pub fn percentile_bound(&self, q: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * u64::from(q.min(100))).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Renders the canonical one-line form used in snapshots.
    fn render(&self, out: &mut String) {
        let _ = write!(
            out,
            "count={} sum={} mean={} p50={} p90={} p99={} max={}",
            self.count,
            self.sum,
            self.mean(),
            self.percentile_bound(50),
            self.percentile_bound(90),
            self.percentile_bound(99),
            self.max
        );
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Metric {
    Counter(u64),
    Gauge(i64),
    // Boxed: a histogram's bucket array dwarfs the scalar variants.
    Histogram(Box<Histogram>),
}

/// A keyed collection of metrics with deterministic, key-ordered
/// snapshots.
///
/// Keys are flat strings with `/`-separated scopes by convention
/// (`"coord/grant_wait_ns"`); [`Registry::snapshot_filtered`] selects a
/// scope by prefix.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// Adds `by` to the counter `key` (creating it at zero).
    pub fn counter_add(&mut self, key: &str, by: u64) {
        match self.metrics.get_mut(key) {
            Some(Metric::Counter(v)) => *v += by,
            Some(other) => *other = Metric::Counter(by),
            None => {
                self.metrics.insert(key.to_owned(), Metric::Counter(by));
            }
        }
    }

    /// Sets the counter `key` to an absolute value (for absorbing
    /// externally accumulated stats counters).
    pub fn counter_set(&mut self, key: &str, value: u64) {
        self.insert(key, Metric::Counter(value));
    }

    /// Sets the gauge `key`.
    pub fn gauge_set(&mut self, key: &str, value: i64) {
        self.insert(key, Metric::Gauge(value));
    }

    /// Records a sample into the histogram `key` (creating it empty).
    pub fn histogram_record(&mut self, key: &str, value: u64) {
        match self.metrics.get_mut(key) {
            Some(Metric::Histogram(h)) => h.record(value),
            _ => {
                let mut h = Histogram::default();
                h.record(value);
                self.metrics
                    .insert(key.to_owned(), Metric::Histogram(Box::new(h)));
            }
        }
    }

    fn insert(&mut self, key: &str, metric: Metric) {
        match self.metrics.get_mut(key) {
            Some(slot) => *slot = metric,
            None => {
                self.metrics.insert(key.to_owned(), metric);
            }
        }
    }

    /// The current value of a counter, if `key` names one.
    #[must_use]
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The current value of a gauge, if `key` names one.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Option<i64> {
        match self.metrics.get(key) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A clone of the histogram at `key`, if one exists.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<Histogram> {
        match self.metrics.get(key) {
            Some(Metric::Histogram(h)) => Some((**h).clone()),
            _ => None,
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders every metric, one line per key, in key order.
    ///
    /// The output is a pure function of the recorded values — the
    /// deterministic serialized form the property tests compare.
    #[must_use]
    pub fn snapshot(&self) -> String {
        self.snapshot_filtered("")
    }

    /// Like [`Registry::snapshot`], restricted to keys starting with
    /// `prefix` (per-subsystem views, e.g. `"runtime/"`).
    #[must_use]
    pub fn snapshot_filtered(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (key, metric) in &self.metrics {
            if !key.starts_with(prefix) {
                continue;
            }
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "counter {key} = {v}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "gauge {key} = {v}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(out, "hist {key}: ");
                    h.render(&mut out);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Converts a (possibly negative) duration to histogram nanoseconds,
/// clamping below zero.
#[must_use]
pub fn duration_nanos(d: Duration) -> u64 {
    d.as_nanos().max(0).unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile_bound(99), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), 50);
        assert_eq!(h.max(), 100);
        // p50 of 1..=100 lands in the bucket [32, 64).
        assert_eq!(h.percentile_bound(50), 63);
        // The top percentile never exceeds the recorded max.
        assert_eq!(h.percentile_bound(100), 100);
    }

    #[test]
    fn snapshot_is_key_ordered_and_deterministic() {
        let mut a = Registry::default();
        a.counter_add("z/last", 1);
        a.gauge_set("a/first", -3);
        a.histogram_record("m/mid", 7);

        let mut b = Registry::default();
        b.histogram_record("m/mid", 7);
        b.counter_add("z/last", 1);
        b.gauge_set("a/first", -3);

        assert_eq!(a.snapshot(), b.snapshot());
        let snap = a.snapshot();
        let keys: Vec<&str> = snap.lines().collect();
        assert!(keys[0].starts_with("gauge a/first"));
        assert!(keys[1].starts_with("hist m/mid"));
        assert!(keys[2].starts_with("counter z/last"));
    }

    #[test]
    fn filtered_snapshot_selects_scope() {
        let mut r = Registry::default();
        r.counter_add("runtime/tags", 5);
        r.counter_add("coord/nets", 2);
        let s = r.snapshot_filtered("runtime/");
        assert!(s.contains("runtime/tags"));
        assert!(!s.contains("coord/nets"));
    }

    #[test]
    fn counter_accessors() {
        let mut r = Registry::default();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.counter_set("c2", 9);
        r.gauge_set("g", -1);
        r.histogram_record("h", 4);
        assert_eq!(r.counter("c"), Some(5));
        assert_eq!(r.counter("c2"), Some(9));
        assert_eq!(r.gauge("g"), Some(-1));
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        assert_eq!(r.counter("g"), None);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn duration_clamp() {
        assert_eq!(duration_nanos(Duration::from_nanos(-5)), 0);
        assert_eq!(duration_nanos(Duration::from_micros(2)), 2000);
    }
}
