//! Chrome `trace_event` JSON export.
//!
//! Serializes a [`Timeline`] into the Trace Event Format understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: one
//! *process* per subsystem (simulation / federates / coordination), one
//! *thread* per [`Lane`], complete (`"X"`) events for spans and instant
//! (`"i"`) events for markers. Timestamps are microseconds derived from
//! virtual-time nanoseconds with integer arithmetic only, so the export
//! is byte-deterministic like everything else in this crate.

use crate::span::{Lane, SpanKind, Timeline};
use std::fmt::Write as _;

/// The (pid, tid) a lane maps to in the exported trace.
fn lane_track(lane: Lane) -> (u32, u32) {
    match lane {
        Lane::Sim => (1, 0),
        Lane::Federate(i) => (2, u32::from(i)),
        Lane::Root => (3, 0),
        Lane::Zone(z) => (3, 1 + u32::from(z)),
    }
}

fn process_name(pid: u32) -> &'static str {
    match pid {
        1 => "simulation",
        2 => "federates",
        _ => "coordination",
    }
}

fn default_lane_label(lane: Lane) -> String {
    match lane {
        Lane::Sim => "sim".to_owned(),
        Lane::Federate(i) => format!("federate {i}"),
        Lane::Zone(z) => format!("zone {z}"),
        Lane::Root => "root".to_owned(),
    }
}

/// Appends `ns` nanoseconds as a microsecond decimal (`123.456`) using
/// integer arithmetic only.
fn push_micros(out: &mut String, ns: i128) {
    let (sign, abs) = if ns < 0 {
        ("-", ns.unsigned_abs())
    } else {
        ("", ns.unsigned_abs())
    };
    let _ = write!(out, "{sign}{}.{:03}", abs / 1_000, abs % 1_000);
}

/// Appends `s` as a JSON string literal (with escaping).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a timeline to Chrome `trace_event` JSON.
///
/// Load the result in Perfetto: each federate is a thread in the
/// "federates" process, each zone coordinator (and the root) a thread in
/// "coordination". Spans carry their logical tag as an argument.
#[must_use]
pub fn chrome_trace_json(timeline: &Timeline) -> String {
    let mut out = String::with_capacity(256 + timeline.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
    };

    // Metadata: name every process and lane that appears anywhere.
    let mut lanes: Vec<Lane> = timeline.records().iter().map(|r| r.lane).collect();
    lanes.extend(timeline.lane_names().keys().copied());
    lanes.sort_unstable();
    lanes.dedup();
    let mut pids: Vec<u32> = lanes.iter().map(|&l| lane_track(l).0).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            process_name(pid)
        );
    }
    for &lane in &lanes {
        let (pid, tid) = lane_track(lane);
        let label = timeline
            .lane_name(lane)
            .map_or_else(|| default_lane_label(lane), str::to_owned);
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        push_json_str(&mut out, &label);
        out.push_str("}}");
    }

    for r in timeline.records() {
        let (pid, tid) = lane_track(r.lane);
        sep(&mut out, &mut first);
        out.push('{');
        match r.kind {
            SpanKind::Complete => {
                out.push_str("\"ph\":\"X\",\"ts\":");
                push_micros(&mut out, i128::from(r.start.as_nanos()));
                out.push_str(",\"dur\":");
                push_micros(&mut out, i128::from((r.end - r.start).as_nanos()));
            }
            SpanKind::Instant => {
                out.push_str("\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                push_micros(&mut out, i128::from(r.start.as_nanos()));
            }
        }
        let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid},\"name\":");
        push_json_str(&mut out, &r.name);
        if let Some(tag) = r.tag {
            out.push_str(",\"args\":{\"tag\":");
            push_json_str(&mut out, &tag.to_string());
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// A minimal structural JSON validity check (objects, arrays, strings,
/// numbers, booleans, null). Used by tests and example smoke runs to
/// assert an export is loadable without an external JSON dependency.
#[must_use]
pub fn is_valid_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    if !parse_value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        _ => false,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}

fn parse_string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 2;
            }
            _ => *pos += 1,
        }
    }
    false
}

fn parse_object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !parse_string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !parse_value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogicalTag;
    use dear_time::Instant;

    #[test]
    fn micros_formatting_is_integer_exact() {
        let mut s = String::new();
        push_micros(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        push_micros(&mut s, 42);
        assert_eq!(s, "0.042");
        s.clear();
        push_micros(&mut s, -1_500);
        assert_eq!(s, "-1.500");
    }

    #[test]
    fn exports_valid_json_with_lanes_and_tags() {
        let mut t = Timeline::default();
        t.set_lane_name(Lane::Federate(0), "lead \"sensor\"");
        t.span(
            Lane::Federate(0),
            "tag",
            Instant::from_millis(10),
            Instant::from_millis(11),
            Some(LogicalTag::at(Instant::from_millis(10))),
        );
        t.instant(Lane::Root, "fixpoint", Instant::from_millis(10), None);
        t.instant(Lane::Zone(1), "fixpoint", Instant::from_millis(10), None);
        let json = chrome_trace_json(&t);
        assert!(is_valid_json(&json), "export must be valid JSON: {json}");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("federates"));
        assert!(json.contains("coordination"));
        assert!(json.contains("\\\"sensor\\\""));
        assert!(json.contains("(0.010000000s, 0)"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(is_valid_json("{\"a\":[1,2.5,-3e4,\"x\",true,null]}"));
        assert!(is_valid_json("[]"));
        assert!(!is_valid_json("{\"a\":}"));
        assert!(!is_valid_json("[1,2"));
        assert!(!is_valid_json("{\"a\":1} trailing"));
        assert!(!is_valid_json(""));
    }

    #[test]
    fn empty_timeline_still_valid() {
        let json = chrome_trace_json(&Timeline::default());
        assert!(is_valid_json(&json));
        assert!(json.starts_with("{\"traceEvents\":["));
    }
}
