//! # dear-observe — unified deterministic telemetry
//!
//! The observability spine of the DEAR reproduction: one [`Observe`]
//! handle threaded through every layer of the stack (simulator, reactor
//! runtime, SOME/IP middleware, federation) that collects
//!
//! * **metrics** — counters, gauges and fixed-bucket log-2 latency
//!   histograms in a [`Registry`] whose [`snapshot`](Registry::snapshot)
//!   is byte-deterministic (key-ordered, integer-only),
//! * **spans** — logical-time [`Timeline`] records placed on per-federate
//!   / per-zone [`Lane`]s, exportable as Chrome `trace_event` JSON via
//!   [`chrome_trace_json`] (loadable in Perfetto), and
//! * **structured trace events** — the typed [`EventKind`] model the
//!   `Trace` fingerprint path records instead of pre-formatted strings,
//!   with a canonical rendering that keeps every fingerprint stable.
//!
//! Everything runs on virtual time from the deterministic simulation:
//! two runs with the same seed produce byte-identical snapshots, span
//! timelines, and exports. There is deliberately no wall-clock anywhere
//! in this crate.
//!
//! ## Cost model
//!
//! A **disabled** handle (the default everywhere) is an `Option::None`
//! behind the API: every recording call is one branch, no locks, no
//! allocation — the `observe_overhead` bench asserts the instrumented
//! runtime hot path stays zero-alloc per reaction with observability
//! off. An **enabled** handle takes a `Mutex` per call and may allocate
//! for new keys; that is the explicitly opted-into tracing mode.
//!
//! # Examples
//!
//! ```
//! use dear_observe::{chrome_trace_json, Lane, Observe};
//! use dear_time::{Duration, Instant};
//!
//! let obs = Observe::enabled();
//! obs.count("runtime/tags", 1);
//! obs.record_duration("coord/grant_wait_ns", Duration::from_micros(120));
//! obs.span(Lane::Federate(0), "tag", Instant::EPOCH, Instant::from_micros(5));
//! assert!(obs.snapshot().contains("coord/grant_wait_ns"));
//! assert!(chrome_trace_json(&obs.timeline_clone()).contains("federate 0"));
//!
//! let off = Observe::disabled();
//! off.count("runtime/tags", 1); // one branch, nothing recorded
//! assert_eq!(off.snapshot(), "");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod event;
mod metrics;
mod report;
mod span;

pub use chrome::{chrome_trace_json, is_valid_json};
pub use event::{EventKind, LogicalTag};
pub use metrics::{duration_nanos, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use report::ObservabilityReport;
pub use span::{Lane, SpanId, SpanKind, SpanRecord, Timeline};

use dear_time::{Duration, Instant};
use std::borrow::Cow;
use std::sync::{Arc, Mutex};

struct Inner {
    metrics: Mutex<Registry>,
    timeline: Mutex<Timeline>,
}

/// The shared telemetry handle.
///
/// Cheap to clone (an `Arc`); all clones record into the same registry
/// and timeline. A *disabled* handle ([`Observe::disabled`], also the
/// `Default`) drops every record after a single branch.
#[derive(Clone, Default)]
pub struct Observe {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Observe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observe")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Observe {
    /// A disabled handle: every recording call is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Observe { inner: None }
    }

    /// A fresh enabled handle with an empty registry and timeline.
    #[must_use]
    pub fn enabled() -> Self {
        Observe {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(Registry::default()),
                timeline: Mutex::new(Timeline::default()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `by` to a counter.
    pub fn count(&self, key: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .counter_add(key, by);
        }
    }

    /// Sets a counter to an absolute value (absorbing an externally
    /// accumulated stats counter).
    pub fn counter_set(&self, key: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .counter_set(key, value);
        }
    }

    /// Sets a gauge.
    pub fn gauge(&self, key: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .gauge_set(key, value);
        }
    }

    /// Records a raw sample into a histogram.
    pub fn record_value(&self, key: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .histogram_record(key, value);
        }
    }

    /// Records a duration (clamped below at zero) into a nanosecond
    /// histogram.
    pub fn record_duration(&self, key: &str, d: Duration) {
        self.record_value(key, duration_nanos(d));
    }

    /// Records a complete span on a lane.
    pub fn span(
        &self,
        lane: Lane,
        name: impl Into<Cow<'static, str>>,
        start: Instant,
        end: Instant,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .timeline
                .lock()
                .expect("timeline lock")
                .span(lane, name, start, end, None);
        }
    }

    /// Records a complete span carrying its logical tag.
    pub fn span_tagged(
        &self,
        lane: Lane,
        name: impl Into<Cow<'static, str>>,
        start: Instant,
        end: Instant,
        tag: LogicalTag,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .timeline
                .lock()
                .expect("timeline lock")
                .span(lane, name, start, end, Some(tag));
        }
    }

    /// Records an instant marker on a lane.
    pub fn instant(&self, lane: Lane, name: impl Into<Cow<'static, str>>, at: Instant) {
        if let Some(inner) = &self.inner {
            inner
                .timeline
                .lock()
                .expect("timeline lock")
                .instant(lane, name, at, None);
        }
    }

    /// Records an instant marker carrying its logical tag.
    pub fn instant_tagged(
        &self,
        lane: Lane,
        name: impl Into<Cow<'static, str>>,
        at: Instant,
        tag: LogicalTag,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .timeline
                .lock()
                .expect("timeline lock")
                .instant(lane, name, at, Some(tag));
        }
    }

    /// Allocates the next unused federate lane and labels it — for
    /// drivers whose platforms carry no externally assigned federate id
    /// (the decentralized driver). Allocation order follows platform
    /// start order, which is deterministic. Returns `Lane::Federate(0)`
    /// without recording anything on a disabled handle.
    #[must_use]
    pub fn register_federate_lane(&self, name: &str) -> Lane {
        let Some(inner) = &self.inner else {
            return Lane::Federate(0);
        };
        let mut timeline = inner.timeline.lock().expect("timeline lock");
        let next = timeline
            .lane_names()
            .keys()
            .filter_map(|lane| match lane {
                Lane::Federate(i) => Some(i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let lane = Lane::Federate(next);
        timeline.set_lane_name(lane, name);
        lane
    }

    /// Labels a lane for exports (e.g. with the platform name).
    pub fn set_lane_name(&self, lane: Lane, name: &str) {
        if let Some(inner) = &self.inner {
            inner
                .timeline
                .lock()
                .expect("timeline lock")
                .set_lane_name(lane, name);
        }
    }

    /// The deterministic metrics snapshot (empty string when disabled).
    #[must_use]
    pub fn snapshot(&self) -> String {
        self.inner.as_ref().map_or_else(String::new, |inner| {
            inner.metrics.lock().expect("metrics lock").snapshot()
        })
    }

    /// The snapshot restricted to keys starting with `prefix`.
    #[must_use]
    pub fn snapshot_filtered(&self, prefix: &str) -> String {
        self.inner.as_ref().map_or_else(String::new, |inner| {
            inner
                .metrics
                .lock()
                .expect("metrics lock")
                .snapshot_filtered(prefix)
        })
    }

    /// Reads the current value of a counter.
    #[must_use]
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.metrics.lock().expect("metrics lock").counter(key))
    }

    /// A clone of the histogram at `key`, if recorded.
    #[must_use]
    pub fn histogram_of(&self, key: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.metrics.lock().expect("metrics lock").histogram(key))
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| {
            inner.timeline.lock().expect("timeline lock").len()
        })
    }

    /// A clone of the span timeline (empty when disabled) — the input to
    /// [`chrome_trace_json`].
    #[must_use]
    pub fn timeline_clone(&self) -> Timeline {
        self.inner.as_ref().map_or_else(Timeline::default, |inner| {
            inner.timeline.lock().expect("timeline lock").clone()
        })
    }

    /// Exports the recorded timeline as Chrome `trace_event` JSON.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        self.inner.as_ref().map_or_else(
            || chrome_trace_json(&Timeline::default()),
            |inner| chrome_trace_json(&inner.timeline.lock().expect("timeline lock")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Observe::disabled();
        obs.count("a", 1);
        obs.gauge("b", 2);
        obs.record_value("c", 3);
        obs.record_duration("d", Duration::from_micros(1));
        obs.span(Lane::Sim, "s", Instant::EPOCH, Instant::from_secs(1));
        obs.instant(Lane::Root, "i", Instant::EPOCH);
        obs.set_lane_name(Lane::Sim, "x");
        assert!(!obs.is_enabled());
        assert_eq!(obs.snapshot(), "");
        assert_eq!(obs.span_count(), 0);
        assert_eq!(obs.counter_value("a"), None);
        assert!(is_valid_json(&obs.chrome_trace()));
    }

    #[test]
    fn clones_share_state() {
        let obs = Observe::enabled();
        let clone = obs.clone();
        clone.count("runtime/tags", 2);
        clone.span_tagged(
            Lane::Federate(1),
            "tag",
            Instant::EPOCH,
            Instant::from_micros(3),
            LogicalTag::at(Instant::EPOCH),
        );
        assert_eq!(obs.counter_value("runtime/tags"), Some(2));
        assert_eq!(obs.span_count(), 1);
        assert!(obs.snapshot().contains("runtime/tags"));
        assert!(obs.snapshot_filtered("coord/").is_empty());
        assert!(is_valid_json(&obs.chrome_trace()));
    }

    #[test]
    fn histograms_via_handle() {
        let obs = Observe::enabled();
        obs.record_duration("h", Duration::from_nanos(-1));
        obs.record_duration("h", Duration::from_micros(2));
        let h = obs.histogram_of("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 2000);
    }
}
