//! The human-readable observability dashboard.
//!
//! [`ObservabilityReport`] collects the one-line `Display` forms of the
//! per-subsystem stats structs plus a metrics snapshot and renders one
//! consistent text footer — the thing every example prints so a run's
//! health is readable at a glance without grepping trace strings.

use crate::Observe;
use std::fmt;

/// A composable text dashboard.
///
/// # Examples
///
/// ```
/// use dear_observe::{Observe, ObservabilityReport};
///
/// let obs = Observe::enabled();
/// obs.count("runtime/tags", 3);
/// let mut report = ObservabilityReport::new("demo");
/// report.line("runtime[ctrl0]", "tags=3 reactions=7");
/// report.attach(&obs);
/// let text = report.to_string();
/// assert!(text.contains("runtime[ctrl0]"));
/// assert!(text.contains("counter runtime/tags = 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObservabilityReport {
    title: String,
    lines: Vec<(String, String)>,
    metrics: Option<String>,
    spans: usize,
}

impl ObservabilityReport {
    /// Creates an empty report with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        ObservabilityReport {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Adds a labelled stats line (any `Display` value — typically one
    /// of the subsystem stats structs).
    pub fn line(&mut self, label: impl Into<String>, value: impl fmt::Display) {
        self.lines.push((label.into(), value.to_string()));
    }

    /// Captures the metrics snapshot and span count of an [`Observe`]
    /// handle (no-op for a disabled handle).
    pub fn attach(&mut self, observe: &Observe) {
        if observe.is_enabled() {
            self.metrics = Some(observe.snapshot());
            self.spans = observe.span_count();
        }
    }

    /// Number of stats lines added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when no line was added and no snapshot attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty() && self.metrics.is_none()
    }
}

impl fmt::Display for ObservabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "── observability: {} ──", self.title)?;
        let width = self
            .lines
            .iter()
            .map(|(label, _)| label.len())
            .max()
            .unwrap_or(0);
        for (label, value) in &self.lines {
            writeln!(f, "  {label:width$}  {value}")?;
        }
        if let Some(metrics) = &self.metrics {
            if metrics.is_empty() {
                writeln!(f, "  metrics: (none recorded)")?;
            } else {
                writeln!(f, "  metrics:")?;
                for line in metrics.lines() {
                    writeln!(f, "    {line}")?;
                }
            }
            writeln!(f, "  spans recorded: {}", self.spans)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_lines_and_snapshot() {
        let obs = Observe::enabled();
        obs.count("a/x", 1);
        obs.gauge("b/y", 2);
        let mut r = ObservabilityReport::new("unit");
        assert!(r.is_empty());
        r.line("first", 123);
        r.line("second-longer", "abc");
        r.attach(&obs);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let text = r.to_string();
        assert!(text.contains("observability: unit"));
        assert!(text.contains("counter a/x = 1"));
        assert!(text.contains("gauge b/y = 2"));
        assert!(text.contains("spans recorded: 0"));
    }

    #[test]
    fn disabled_observe_attaches_nothing() {
        let mut r = ObservabilityReport::new("unit");
        r.attach(&Observe::disabled());
        assert!(r.is_empty());
        assert!(!r.to_string().contains("metrics"));
    }
}
