//! Span timelines: who did what, when, on which lane.
//!
//! A [`Timeline`] is an append-only list of [`SpanRecord`]s, each placed
//! on a [`Lane`] (one per federate, zone, the root coordinator, or the
//! simulator itself). Durations are *logical*: start and end are virtual
//! instants from the deterministic simulation, so two runs with the same
//! seed produce identical timelines — a trace you can diff, not just
//! look at. The Chrome `trace_event` exporter in [`crate::chrome`] maps
//! lanes to Perfetto process/thread tracks.

use crate::event::LogicalTag;
use dear_time::Instant;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// The track a span is drawn on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// The simulator / miscellaneous platform events.
    Sim,
    /// A federate (one reactor runtime under coordination).
    Federate(u16),
    /// A zone coordinator in the hierarchical RTI.
    Zone(u16),
    /// The root coordinator (or the flat RTI).
    Root,
}

/// Identifier of a recorded span within its timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// How a record is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A complete span with a duration.
    Complete,
    /// A zero-duration marker (Chrome "instant" event).
    Instant,
}

/// One recorded span or instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Identifier (index order = recording order).
    pub id: SpanId,
    /// The lane it belongs to.
    pub lane: Lane,
    /// Short name, e.g. `"tag"`, `"grant-wait"`, `"fixpoint"`.
    pub name: Cow<'static, str>,
    /// Start instant (virtual time).
    pub start: Instant,
    /// End instant; equals `start` for instants.
    pub end: Instant,
    /// Complete span or instant marker.
    pub kind: SpanKind,
    /// The logical tag the span is about, if any.
    pub tag: Option<LogicalTag>,
}

/// An append-only span log plus lane labels.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    records: Vec<SpanRecord>,
    lane_names: BTreeMap<Lane, String>,
}

impl Timeline {
    /// Records a complete span; returns its id.
    pub fn span(
        &mut self,
        lane: Lane,
        name: impl Into<Cow<'static, str>>,
        start: Instant,
        end: Instant,
        tag: Option<LogicalTag>,
    ) -> SpanId {
        self.push(
            lane,
            name.into(),
            start,
            end.max(start),
            SpanKind::Complete,
            tag,
        )
    }

    /// Records an instant marker; returns its id.
    pub fn instant(
        &mut self,
        lane: Lane,
        name: impl Into<Cow<'static, str>>,
        at: Instant,
        tag: Option<LogicalTag>,
    ) -> SpanId {
        self.push(lane, name.into(), at, at, SpanKind::Instant, tag)
    }

    fn push(
        &mut self,
        lane: Lane,
        name: Cow<'static, str>,
        start: Instant,
        end: Instant,
        kind: SpanKind,
        tag: Option<LogicalTag>,
    ) -> SpanId {
        let id = SpanId(self.records.len() as u64);
        self.records.push(SpanRecord {
            id,
            lane,
            name,
            start,
            end,
            kind,
            tag,
        });
        id
    }

    /// Labels a lane for exporters (e.g. the federate's platform name).
    pub fn set_lane_name(&mut self, lane: Lane, name: impl Into<String>) {
        self.lane_names.insert(lane, name.into());
    }

    /// The label of a lane, if one was set.
    #[must_use]
    pub fn lane_name(&self, lane: Lane) -> Option<&str> {
        self.lane_names.get(&lane).map(String::as_str)
    }

    /// All lane labels, in lane order.
    #[must_use]
    pub fn lane_names(&self) -> &BTreeMap<Lane, String> {
        &self.lane_names
    }

    /// The recorded spans, in recording order.
    #[must_use]
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_keep_recording_order_and_clamp_end() {
        let mut t = Timeline::default();
        let a = t.span(
            Lane::Federate(1),
            "tag",
            Instant::from_millis(2),
            Instant::from_millis(1),
            None,
        );
        let b = t.instant(Lane::Root, "fixpoint", Instant::from_millis(3), None);
        assert_eq!(a, SpanId(0));
        assert_eq!(b, SpanId(1));
        // End is clamped to start rather than going backwards.
        assert_eq!(t.records()[0].end, Instant::from_millis(2));
        assert_eq!(t.records()[1].kind, SpanKind::Instant);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lane_names() {
        let mut t = Timeline::default();
        t.set_lane_name(Lane::Federate(3), "ctrl0");
        assert_eq!(t.lane_name(Lane::Federate(3)), Some("ctrl0"));
        assert_eq!(t.lane_name(Lane::Root), None);
        assert_eq!(t.lane_names().len(), 1);
    }
}
