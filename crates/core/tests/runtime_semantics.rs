//! Behavioural tests of the reactor runtime: tag order, actions, timers,
//! deadlines, shutdown, physical actions, and STP violations.

use dear_core::{ProgramBuilder, Runtime, RuntimeError, Shutdown, Startup, StepOutcome, Tag};
use dear_time::{Duration, Instant};
use std::sync::{Arc, Mutex};

type Log = Arc<Mutex<Vec<String>>>;

fn log() -> Log {
    Arc::new(Mutex::new(Vec::new()))
}

fn push(log: &Log, s: impl Into<String>) {
    log.lock().unwrap().push(s.into());
}

#[test]
fn startup_then_shutdown_order() {
    let events = log();
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let l = events.clone();
    r.reaction("up").triggered_by(Startup).body(move |_, ctx| {
        push(&l, format!("startup@{}", ctx.tag()));
        ctx.request_shutdown();
    });
    let l = events.clone();
    r.reaction("down")
        .triggered_by(Shutdown)
        .body(move |_, ctx| push(&l, format!("shutdown@{}", ctx.tag())));
    r.finish();

    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let got = events.lock().unwrap().clone();
    // Shutdown happens one microstep after the request.
    assert_eq!(
        got,
        vec![
            "startup@(0.000000000s, 0)".to_string(),
            "shutdown@(0.000000000s, 1)".to_string()
        ]
    );
    assert!(!rt.is_running());
}

#[test]
fn logical_action_ping_pong_advances_tags() {
    // A reactor schedules an action with 1 ms delay, 5 times.
    let events = log();
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("pinger", 0u32);
    let act = r.logical_action::<u32>("ping", Duration::from_millis(1));
    let l = events.clone();
    let a2 = act;
    r.reaction("kick")
        .triggered_by(Startup)
        .schedules(act)
        .body(move |_, ctx| ctx.schedule(a2, Duration::ZERO, 0));
    let l2 = l;
    r.reaction("pong")
        .triggered_by(act)
        .schedules(act)
        .body(move |count: &mut u32, ctx| {
            let v = *ctx.get_action(&act).unwrap();
            push(&l2, format!("{v}@{}", ctx.logical_time().as_millis_f64()));
            *count += 1;
            if *count < 5 {
                ctx.schedule(act, Duration::ZERO, v + 1);
            } else {
                ctx.request_shutdown();
            }
        });
    r.finish();

    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let got = events.lock().unwrap().clone();
    assert_eq!(got, vec!["0@1", "1@2", "2@3", "3@4", "4@5"]);
}

#[test]
fn zero_delay_action_bumps_microstep() {
    let tags = Arc::new(Mutex::new(Vec::<Tag>::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", 0u32);
    let act = r.logical_action::<()>("a", Duration::ZERO);
    r.reaction("kick")
        .triggered_by(Startup)
        .schedules(act)
        .body(move |_, ctx| ctx.schedule(act, Duration::ZERO, ()));
    let t = tags.clone();
    r.reaction("observe")
        .triggered_by(act)
        .schedules(act)
        .body(move |count: &mut u32, ctx| {
            t.lock().unwrap().push(ctx.tag());
            *count += 1;
            if *count < 3 {
                ctx.schedule(act, Duration::ZERO, ());
            }
        });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let got = tags.lock().unwrap().clone();
    assert_eq!(
        got,
        vec![
            Tag::new(Instant::EPOCH, 1),
            Tag::new(Instant::EPOCH, 2),
            Tag::new(Instant::EPOCH, 3),
        ]
    );
}

#[test]
fn periodic_timer_fires_on_schedule() {
    let times = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer(
        "t",
        Duration::from_millis(5),
        Some(Duration::from_millis(10)),
    );
    let sink = times.clone();
    r.reaction("tick").triggered_by(t).body(move |_, ctx| {
        sink.lock().unwrap().push(ctx.logical_time());
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_millis(40)).unwrap();
    rt.run_fast(u64::MAX);
    assert_eq!(
        *times.lock().unwrap(),
        vec![
            Instant::from_millis(5),
            Instant::from_millis(15),
            Instant::from_millis(25),
            Instant::from_millis(35),
        ]
    );
}

#[test]
fn stop_tag_is_final_later_events_are_dropped() {
    let count = Arc::new(Mutex::new(0u32));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(10)));
    let c = count.clone();
    r.reaction("tick").triggered_by(t).body(move |_, _| {
        *c.lock().unwrap() += 1;
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_millis(25)).unwrap();
    rt.run_fast(u64::MAX);
    // Fires at 0, 10, 20 — then stop at 25 discards everything else.
    assert_eq!(*count.lock().unwrap(), 3);
    assert_eq!(rt.step_fast(), StepOutcome::Stopped);
}

#[test]
fn deadline_handler_runs_instead_of_body_on_late_launch() {
    let events = log();
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer("t", Duration::from_millis(10), None);
    let l_ok = events.clone();
    let l_miss = events.clone();
    r.reaction("work")
        .triggered_by(t)
        .with_deadline(Duration::from_millis(5), move |_, ctx| {
            push(&l_miss, format!("miss lag={}", ctx.lag()));
        })
        .body(move |_, ctx| push(&l_ok, format!("ok lag={}", ctx.lag())));
    r.finish();

    // Case 1: physical time only slightly behind -> body runs.
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    // physical 12ms for tag at 10ms: lag 2ms < 5ms deadline
    rt.step(Instant::from_millis(12));
    assert_eq!(*events.lock().unwrap(), vec!["ok lag=2ms"]);
    assert_eq!(rt.stats().deadline_misses, 0);
}

#[test]
fn deadline_miss_is_counted_and_handled() {
    let events = log();
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer("t", Duration::from_millis(10), None);
    let l_ok = events.clone();
    let l_miss = events.clone();
    r.reaction("work")
        .triggered_by(t)
        .with_deadline(Duration::from_millis(5), move |_, ctx| {
            push(&l_miss, format!("miss lag={}", ctx.lag()));
        })
        .body(move |_, ctx| push(&l_ok, format!("ok lag={}", ctx.lag())));
    r.finish();

    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    // physical 20ms for tag at 10ms: lag 10ms > 5ms deadline
    rt.step(Instant::from_millis(20));
    assert_eq!(*events.lock().unwrap(), vec!["miss lag=10ms"]);
    assert_eq!(rt.stats().deadline_misses, 1);
}

#[test]
fn physical_action_tagged_with_clock_reading() {
    let tags = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("sensor", ());
    let act = r.physical_action::<u8>("reading", Duration::ZERO);
    let sink = tags.clone();
    r.reaction("observe").triggered_by(act).body(move |_, ctx| {
        let v = *ctx.get_action(&act).unwrap();
        sink.lock().unwrap().push((ctx.tag(), v));
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    let tag = rt
        .schedule_physical(&act, 42, Instant::from_millis(3))
        .unwrap();
    assert_eq!(tag, Tag::at(Instant::from_millis(3)));
    rt.run_fast(u64::MAX);
    assert_eq!(
        *tags.lock().unwrap(),
        vec![(Tag::at(Instant::from_millis(3)), 42u8)]
    );
}

#[test]
fn physical_action_in_logical_past_is_bumped_forward() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("sensor", ());
    let act = r.physical_action::<u8>("reading", Duration::ZERO);
    let t = r.timer("t", Duration::from_millis(10), None);
    r.reaction("tick").triggered_by(t).body(|_, _| {});
    r.reaction("observe").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(1); // processes the 10 ms timer tag
                    // Clock reading 5 ms is before the current tag (10 ms): bump.
    let tag = rt
        .schedule_physical(&act, 1, Instant::from_millis(5))
        .unwrap();
    assert_eq!(tag, Tag::new(Instant::from_millis(10), 1));
}

#[test]
fn schedule_physical_at_rejects_past_tags_as_stp_violation() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("net", ());
    let act = r.physical_action::<u8>("msg", Duration::ZERO);
    let t = r.timer("t", Duration::from_millis(10), None);
    r.reaction("tick").triggered_by(t).body(|_, _| {});
    r.reaction("observe").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(1);
    let err = rt
        .schedule_physical_at(&act, 9, Tag::at(Instant::from_millis(5)))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::StpViolation { .. }));
    assert_eq!(rt.stats().stp_violations, 1);
    // A future tag is accepted.
    rt.schedule_physical_at(&act, 9, Tag::at(Instant::from_millis(15)))
        .unwrap();
    rt.run_fast(u64::MAX);
    assert_eq!(rt.stats().stp_violations, 1);
}

#[test]
fn values_fan_out_to_all_connected_inputs() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", ());
    let out = src.output::<String>("o");
    src.reaction("emit")
        .triggered_by(Startup)
        .effects(out)
        .body(move |_, ctx| ctx.set(out, "hello".to_string()));
    src.finish();
    let mut inputs = Vec::new();
    for i in 0..3 {
        let mut c = b.reactor(&format!("sink{i}"), ());
        let inp = c.input::<String>("i");
        let s = seen.clone();
        c.reaction("recv").triggered_by(inp).body(move |_, ctx| {
            s.lock()
                .unwrap()
                .push(format!("{i}:{}", ctx.get(inp).unwrap()));
        });
        inputs.push(inp);
        c.finish();
    }
    for inp in inputs {
        b.connect(out, inp).unwrap();
    }
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let mut got = seen.lock().unwrap().clone();
    got.sort();
    assert_eq!(got, vec!["0:hello", "1:hello", "2:hello"]);
}

#[test]
fn ports_are_cleared_between_tags() {
    let observations = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", 0u32);
    let out = r.output::<u32>("o");
    let inp = r.input::<u32>("i");
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let obs = observations.clone();
    // Reaction 1: writes only on the first firing.
    r.reaction("maybe_write")
        .triggered_by(t)
        .effects(out)
        .body(move |n: &mut u32, ctx| {
            if *n == 0 {
                ctx.set(out, 7);
            }
            *n += 1;
        });
    // Reaction 2: observes presence of the loop-connected input.
    r.reaction("check")
        .triggered_by(t)
        .uses(inp)
        .body(move |_, ctx| {
            obs.lock().unwrap().push(ctx.get(inp).copied());
        });
    r.finish();
    b.connect(out, inp).unwrap();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_micros(2500)).unwrap();
    rt.run_fast(u64::MAX);
    assert_eq!(*observations.lock().unwrap(), vec![Some(7), None, None]);
}

#[test]
fn two_timers_same_tag_fire_together() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t1 = r.timer("t1", Duration::from_millis(5), None);
    let t2 = r.timer("t2", Duration::from_millis(5), None);
    let s = seen.clone();
    r.reaction("a").triggered_by(t1).body(move |_, ctx| {
        s.lock().unwrap().push(("a", ctx.tag()));
    });
    let s = seen.clone();
    r.reaction("b").triggered_by(t2).body(move |_, ctx| {
        s.lock().unwrap().push(("b", ctx.tag()));
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let got = seen.lock().unwrap().clone();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].1, got[1].1, "same tag");
    assert_eq!((got[0].0, got[1].0), ("a", "b"), "priority order");
    // One tag processed for both timers.
    assert_eq!(rt.stats().processed_tags, 1);
}

#[test]
fn reaction_reads_back_its_own_write() {
    let got = Arc::new(Mutex::new(None));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let out = r.output::<u32>("o");
    let g = got.clone();
    r.reaction("w")
        .triggered_by(Startup)
        .effects(out)
        .body(move |_, ctx| {
            ctx.set(out, 5);
            *g.lock().unwrap() = ctx.get(out).copied();
        });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    assert_eq!(*got.lock().unwrap(), Some(5));
}

#[test]
#[should_panic(expected = "without declaring it as an effect")]
fn undeclared_write_panics() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let out = r.output::<u32>("o");
    r.reaction("w")
        .triggered_by(Startup)
        .body(move |_, ctx| ctx.set(out, 5)); // no .effects(out)
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
}

#[test]
#[should_panic(expected = "without declaring it as a trigger or use")]
fn undeclared_read_panics() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let out = r.output::<u32>("o");
    let inp = r.input::<u32>("i");
    r.reaction("w")
        .triggered_by(Startup)
        .effects(out)
        .body(move |_, ctx| {
            ctx.set(out, 1);
            let _ = ctx.get(inp); // undeclared read
        });
    r.finish();
    b.connect(out, inp).unwrap();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
}

#[test]
fn stats_track_processed_tags_and_reactions() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    r.reaction("tick").triggered_by(t).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_micros(4500)).unwrap();
    rt.run_fast(u64::MAX);
    let stats = rt.stats();
    assert_eq!(stats.executed_reactions, 5); // ticks at 0..4 ms
    assert_eq!(stats.processed_tags, 6); // five ticks + shutdown tag
}

#[test]
fn idle_runtime_reports_idle_then_accepts_more_events() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let act = r.physical_action::<()>("a", Duration::ZERO);
    r.reaction("o").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    assert_eq!(rt.step_fast(), StepOutcome::Idle);
    rt.schedule_physical(&act, (), Instant::from_millis(1))
        .unwrap();
    assert!(matches!(rt.step_fast(), StepOutcome::Processed(_)));
}

#[test]
fn injection_before_start_is_rejected() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let act = r.physical_action::<()>("a", Duration::ZERO);
    r.reaction("o").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    let err = rt.schedule_physical(&act, (), Instant::EPOCH).unwrap_err();
    assert_eq!(err, RuntimeError::NotRunning);
}

#[test]
fn trace_fingerprint_identical_across_runs() {
    fn run() -> u64 {
        let mut b = ProgramBuilder::new();
        let mut r = b.reactor("r", 0u32);
        let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
        let act = r.logical_action::<u32>("a", Duration::from_micros(100));
        r.reaction("tick")
            .triggered_by(t)
            .schedules(act)
            .body(move |n: &mut u32, ctx| {
                *n += 1;
                ctx.schedule(act, Duration::ZERO, *n);
            });
        r.reaction("obs").triggered_by(act).body(|_, _| {});
        r.finish();
        let mut rt = Runtime::new(b.build().unwrap());
        rt.enable_tracing();
        rt.start(Instant::EPOCH);
        rt.stop_at(Instant::from_millis(10)).unwrap();
        rt.run_fast(u64::MAX);
        rt.trace_log().fingerprint()
    }
    assert_eq!(run(), run());
}

#[test]
fn tag_bound_gates_step_and_counts_deferrals() {
    let events = log();
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let sink = events.clone();
    r.reaction("tick").triggered_by(t).body(move |_, ctx| {
        push(&sink, format!("{}", ctx.logical_time().as_millis_f64()));
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);

    // Exclusive bound at 2ms: only the 0ms and 1ms tags may be processed.
    rt.set_tag_bound(Tag::at(Instant::from_millis(2)));
    assert_eq!(rt.run_fast(u64::MAX), 2);
    assert_eq!(events.lock().unwrap().len(), 2);
    assert_eq!(rt.next_releasable_tag(), None);
    assert_eq!(rt.next_tag(), Some(Tag::at(Instant::from_millis(2))));
    assert_eq!(rt.stats().bound_deferrals, 1, "run_fast deferred once");
    assert!(matches!(rt.step_fast(), StepOutcome::Idle));
    assert_eq!(rt.stats().bound_deferrals, 2);

    // Bounds are monotone: a stale (lower) grant is ignored.
    rt.set_tag_bound(Tag::at(Instant::from_millis(1)));
    assert_eq!(rt.tag_bound(), Some(Tag::at(Instant::from_millis(2))));

    // Raising the bound releases exactly the newly covered tags.
    rt.set_tag_bound(Tag::at(Instant::from_millis(4)));
    assert_eq!(rt.run_fast(u64::MAX), 2);
    assert_eq!(events.lock().unwrap().len(), 4);
    assert_eq!(rt.stats().processed_tags, 4);
}

#[test]
fn succ_bound_grants_exactly_one_tag_inclusive() {
    // A provisional grant for tag g is modelled as the exclusive bound
    // g.delay(ZERO): the runtime may process g itself and nothing later.
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    r.reaction("tick").triggered_by(t).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    let g = Tag::at(Instant::EPOCH);
    rt.set_tag_bound(g.delay(Duration::ZERO));
    assert_eq!(rt.run_fast(u64::MAX), 1);
    assert_eq!(rt.current_tag(), Some(g));
    assert_eq!(rt.stats().bound_deferrals, 1, "second tag deferred");
}

#[test]
fn runtime_stats_display_is_complete() {
    let stats = dear_core::RuntimeStats {
        processed_tags: 1,
        executed_reactions: 2,
        deadline_misses: 3,
        stp_violations: 4,
        bound_deferrals: 5,
    };
    assert_eq!(
        stats.to_string(),
        "tags=1 reactions=2 deadline_misses=3 stp_violations=4 bound_deferrals=5"
    );
}

// ---------------------------------------------------------------------------
// Regression tests: hot-path event loss + executor overhaul (PR 3).
// ---------------------------------------------------------------------------

/// Two physical injections landing *between* steps used to both bump to
/// `(last_processed, m+1)` and collide: the second silently overwrote the
/// first in the action's pending map. Every injection must be delivered at
/// its own, strictly increasing tag.
#[test]
fn two_physical_injections_between_steps_get_distinct_tags() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("sensor", ());
    let act = r.physical_action::<u8>("reading", Duration::ZERO);
    let t = r.timer("t", Duration::from_millis(10), None);
    r.reaction("tick").triggered_by(t).body(|_, _| {});
    let sink = seen.clone();
    r.reaction("observe").triggered_by(act).body(move |_, ctx| {
        let v = *ctx.get_action(&act).unwrap();
        sink.lock().unwrap().push((ctx.tag(), v));
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(1); // current tag is now (10 ms, 0)

    // Both readings lie in the logical past; both must be bumped to
    // *distinct* tags, not piled onto the same microstep.
    let early = Instant::from_millis(5);
    let t1 = rt.schedule_physical(&act, 1, early).unwrap();
    let t2 = rt.schedule_physical(&act, 2, early).unwrap();
    assert_eq!(t1, Tag::new(Instant::from_millis(10), 1));
    assert_eq!(t2, Tag::new(Instant::from_millis(10), 2));
    assert!(t2 > t1, "tags must be strictly increasing");

    rt.run_fast(u64::MAX);
    assert_eq!(
        *seen.lock().unwrap(),
        vec![(t1, 1u8), (t2, 2u8)],
        "both injected values must be observed, in injection order"
    );
}

/// The same collision exists *without* any processed tag: two injections
/// with the same clock reading map to the same `(now + min_delay, 0)` tag.
#[test]
fn same_clock_reading_injections_never_collide() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("sensor", ());
    let act = r.physical_action::<u8>("reading", Duration::ZERO);
    let sink = seen.clone();
    r.reaction("observe").triggered_by(act).body(move |_, ctx| {
        let v = *ctx.get_action(&act).unwrap();
        sink.lock().unwrap().push((ctx.tag(), v));
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);

    let now = Instant::from_millis(3);
    let mut tags = Vec::new();
    for v in 0..5u8 {
        tags.push(rt.schedule_physical(&act, v, now).unwrap());
    }
    let mut sorted = tags.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 5, "all five tags distinct: {tags:?}");
    assert_eq!(tags, sorted, "tags assigned in increasing order");

    rt.run_fast(u64::MAX);
    let observed: Vec<u8> = seen.lock().unwrap().iter().map(|&(_, v)| v).collect();
    assert_eq!(observed, vec![0, 1, 2, 3, 4], "no injection may be lost");
}

/// A disabled trace must stay empty — and report disabled — across a full
/// busy run: the lazy `record_with` path must not touch it at all.
#[test]
fn disabled_trace_stays_empty_across_busy_run() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("busy", 0u64);
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let out = r.output::<u64>("o");
    let act = r.logical_action::<u64>("a", Duration::from_micros(100));
    r.reaction("emit")
        .triggered_by(t)
        .effects(out)
        .schedules(act)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(out, *n);
            ctx.schedule(act, Duration::ZERO, *n);
            if *n >= 200 {
                ctx.request_shutdown();
            }
        });
    r.reaction("echo").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut sink = b.reactor("sink", ());
    let inp = sink.input::<u64>("i");
    sink.reaction("recv").triggered_by(inp).body(|_, _| {});
    sink.finish();
    b.connect(out, inp).unwrap();

    let mut rt = Runtime::new(b.build().unwrap());
    // Tracing intentionally NOT enabled.
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    assert!(rt.stats().executed_reactions >= 590);
    assert!(!rt.trace_log().is_enabled());
    assert!(rt.trace_log().is_empty(), "disabled trace must stay empty");
    assert_eq!(
        rt.trace_log().fingerprint(),
        dear_sim::Trace::disabled().fingerprint()
    );
    // And taking it hands back an untouched, still-disabled trace.
    let taken = rt.take_trace();
    assert!(taken.is_empty() && !taken.is_enabled());
}

/// `step_fast` with an empty queue must not fabricate a physical-clock
/// reading (it used to call `step(Instant::EPOCH)`, a reading that may lie
/// before previously observed physical time).
#[test]
fn step_fast_on_empty_queue_reports_state_without_clock_reading() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let act = r.physical_action::<()>("a", Duration::ZERO);
    let t = r.timer("t", Duration::from_millis(50), None);
    r.reaction("tick").triggered_by(t).body(|_, _| {});
    r.reaction("o").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX); // processes the 50 ms timer, queue now empty
    assert_eq!(rt.step_fast(), StepOutcome::Idle);
    assert_eq!(rt.step_fast(), StepOutcome::Idle);
    // The physical clock has been observed at 50 ms; a late injection is
    // still bumped correctly (EPOCH was never fed back as "now").
    let tag = rt
        .schedule_physical(&act, (), Instant::from_millis(1))
        .unwrap();
    assert_eq!(tag, Tag::new(Instant::from_millis(50), 1));
    rt.run_fast(u64::MAX);

    let mut rt2 = {
        let mut b = ProgramBuilder::new();
        let mut r = b.reactor("r", ());
        r.reaction("s").triggered_by(Startup).body(|_, ctx| {
            ctx.request_shutdown();
        });
        r.finish();
        Runtime::new(b.build().unwrap())
    };
    rt2.start(Instant::EPOCH);
    rt2.run_fast(u64::MAX);
    assert_eq!(rt2.step_fast(), StepOutcome::Stopped);
}

/// The pooled executor is a persistent pool now: repeated `set_workers`
/// calls with the same count must not tear it down, and switching between
/// pooled and sequential execution mid-run keeps behaviour identical.
#[test]
fn worker_pool_survives_reconfiguration_mid_run() {
    let run = |schedule: &[(u64, usize)]| -> u64 {
        let mut b = ProgramBuilder::new();
        let mut src = b.reactor("src", 0u64);
        let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
        let out = src.output::<u64>("o");
        src.reaction("emit")
            .triggered_by(t)
            .effects(out)
            .body(move |n: &mut u64, ctx| {
                *n += 1;
                ctx.set(out, *n);
                if *n >= 30 {
                    ctx.request_shutdown();
                }
            });
        src.finish();
        for i in 0..8 {
            let mut w = b.reactor(&format!("w{i}"), 0u64);
            let inp = w.input::<u64>("i");
            w.reaction("work")
                .triggered_by(inp)
                .body(move |acc: &mut u64, ctx| {
                    *acc = acc
                        .wrapping_mul(31)
                        .wrapping_add(*ctx.get(inp).unwrap() + i);
                });
            w.finish();
            b.connect(out, inp).unwrap();
        }
        let mut rt = Runtime::new(b.build().unwrap());
        rt.enable_tracing();
        rt.start(Instant::EPOCH);
        for &(tags, workers) in schedule {
            rt.set_workers(workers);
            rt.run_fast(tags);
        }
        rt.run_fast(u64::MAX);
        rt.trace_log().fingerprint()
    };

    let seq = run(&[(u64::MAX, 1)]);
    let pooled = run(&[(u64::MAX, 4)]);
    let mixed = run(&[(5, 4), (5, 1), (5, 4), (5, 2)]);
    let re_set = run(&[(5, 4), (5, 4), (5, 4)]);
    assert_eq!(seq, pooled);
    assert_eq!(seq, mixed);
    assert_eq!(seq, re_set);
}

/// An untagged physical arrival must NOT be re-tagged behind an unrelated
/// event already pending at a *future* release tag on the same action
/// (e.g. a tagged message inserted via `schedule_physical_at`): the bump
/// skips only occupied microsteps, it never jumps forward in time.
#[test]
fn untagged_injection_is_not_delayed_behind_future_pending_event() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("net", ());
    let act = r.physical_action::<u8>("msg", Duration::ZERO);
    let sink = seen.clone();
    r.reaction("observe").triggered_by(act).body(move |_, ctx| {
        let v = *ctx.get_action(&act).unwrap();
        sink.lock().unwrap().push((ctx.tag(), v));
    });
    r.finish();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);

    // A tagged message with a far-future release tag T = 100 ms.
    let future = Tag::at(Instant::from_millis(100));
    rt.schedule_physical_at(&act, 9, future).unwrap();
    // An untagged message physically arrives now, at 3 ms: it must be
    // tagged (3 ms, 0), not pushed past the pending 100 ms event.
    let tag = rt
        .schedule_physical(&act, 1, Instant::from_millis(3))
        .unwrap();
    assert_eq!(tag, Tag::at(Instant::from_millis(3)));
    assert!(tag < future);

    rt.run_fast(u64::MAX);
    assert_eq!(
        *seen.lock().unwrap(),
        vec![(tag, 1u8), (future, 9u8)],
        "physical arrival order preserved; both events delivered"
    );
}
