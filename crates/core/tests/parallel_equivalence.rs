//! The central determinism claim: the level-parallel executor produces
//! exactly the observable behaviour of the sequential executor, for every
//! topology and any number of workers.

use dear_core::{ProgramBuilder, Runtime};
use dear_time::{Duration, Instant};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Builds a layered fan-out/fan-in program:
/// one source -> `width` parallel stages (each adds its index) -> one sink
/// that sums. Driven by a periodic timer for `ticks` rounds.
fn build_fanout(width: usize, ticks: u32, workers: usize) -> (u64, u64) {
    let sums = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut b = ProgramBuilder::new();

    let mut src = b.reactor("src", 0u64);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let src_out = src.output::<u64>("o");
    src.reaction("emit")
        .triggered_by(t)
        .effects(src_out)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(src_out, *n);
        });
    src.finish();

    let mut stage_outs = Vec::new();
    for i in 0..width {
        let mut stage = b.reactor(&format!("stage{i}"), ());
        let inp = stage.input::<u64>("i");
        let out = stage.output::<u64>("o");
        stage
            .reaction("work")
            .triggered_by(inp)
            .effects(out)
            .body(move |_, ctx| {
                let v = *ctx.get(inp).unwrap();
                ctx.set(out, v * 31 + i as u64);
            });
        stage.finish();
        b.connect(src_out, inp).unwrap();
        stage_outs.push(out);
    }

    let mut sink = b.reactor("sink", 0u32);
    let mut sink_ins = Vec::new();
    for i in 0..width {
        sink_ins.push(sink.input::<u64>(&format!("i{i}")));
    }
    let ins = sink_ins.clone();
    let sums2 = sums.clone();
    let mut decl = sink.reaction("sum");
    for &i in &sink_ins {
        decl = decl.triggered_by(i);
    }
    decl.body(move |rounds: &mut u32, ctx| {
        let total: u64 = ins.iter().map(|&i| *ctx.get(i).unwrap()).sum();
        sums2.lock().unwrap().push(total);
        *rounds += 1;
        if *rounds >= ticks {
            ctx.request_shutdown();
        }
    });
    sink.finish();
    for (i, out) in stage_outs.into_iter().enumerate() {
        b.connect(out, sink_ins[i]).unwrap();
    }

    let mut rt = Runtime::new(b.build().unwrap());
    rt.set_workers(workers);
    rt.enable_tracing();
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let fp = rt.trace_log().fingerprint();
    let digest: u64 = sums.lock().unwrap().iter().fold(0u64, |acc, &v| {
        acc.wrapping_mul(1099511628211).wrapping_add(v)
    });
    (fp, digest)
}

#[test]
fn parallel_matches_sequential_small() {
    let seq = build_fanout(4, 10, 1);
    for workers in [2, 4, 8] {
        let par = build_fanout(4, 10, workers);
        assert_eq!(seq, par, "workers={workers}");
    }
}

#[test]
fn parallel_matches_sequential_wide() {
    let seq = build_fanout(16, 5, 1);
    let par = build_fanout(16, 5, 8);
    assert_eq!(seq, par);
}

/// Stateful per-stage accumulation: parallel workers mutate distinct
/// reactor states; results must still be identical.
fn build_stateful(width: usize, ticks: u32, workers: usize) -> Vec<u64> {
    let finals = Arc::new(Mutex::new(vec![0u64; width]));
    let mut b = ProgramBuilder::new();

    let mut src = b.reactor("src", 0u64);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let src_out = src.output::<u64>("o");
    src.reaction("emit")
        .triggered_by(t)
        .effects(src_out)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(src_out, *n);
            if *n >= ticks as u64 {
                ctx.request_shutdown();
            }
        });
    src.finish();

    for i in 0..width {
        let mut stage = b.reactor(&format!("acc{i}"), 0u64);
        let inp = stage.input::<u64>("i");
        let finals2 = finals.clone();
        stage
            .reaction("accumulate")
            .triggered_by(inp)
            .body(move |acc: &mut u64, ctx| {
                *acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(*ctx.get(inp).unwrap() + i as u64);
                finals2.lock().unwrap()[i] = *acc;
            });
        stage.finish();
        b.connect(src_out, inp).unwrap();
    }

    let mut rt = Runtime::new(b.build().unwrap());
    rt.set_workers(workers);
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let v = finals.lock().unwrap().clone();
    v
}

#[test]
fn stateful_parallel_matches_sequential() {
    let seq = build_stateful(8, 20, 1);
    let par = build_stateful(8, 20, 4);
    assert_eq!(seq, par);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_parallel_equivalence(width in 1usize..12, ticks in 1u32..8, workers in 2usize..6) {
        let seq = build_fanout(width, ticks, 1);
        let par = build_fanout(width, ticks, workers);
        prop_assert_eq!(seq, par);
    }
}

/// Like `build_fanout`, but additionally injects physical-action events
/// between steps (driving the runtime step by step instead of `run_fast`),
/// so the pooled executor is exercised together with the strictly
/// increasing physical-tag assignment.
fn build_fanout_with_injections(
    width: usize,
    ticks: u32,
    injections: u8,
    workers: usize,
) -> (u64, u64, u64) {
    let sums = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut b = ProgramBuilder::new();

    let mut src = b.reactor("src", 0u64);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let src_out = src.output::<u64>("o");
    let act = src.physical_action::<u64>("inject", Duration::ZERO);
    src.reaction("emit")
        .triggered_by(t)
        .effects(src_out)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(src_out, *n);
        });
    let sums_inj = sums.clone();
    src.reaction("absorb")
        .triggered_by(act)
        .body(move |_, ctx| {
            sums_inj
                .lock()
                .unwrap()
                .push(0x8000_0000_0000_0000 | *ctx.get_action(&act).unwrap());
        });
    src.finish();

    let mut stage_outs = Vec::new();
    for i in 0..width {
        let mut stage = b.reactor(&format!("stage{i}"), ());
        let inp = stage.input::<u64>("i");
        let out = stage.output::<u64>("o");
        stage
            .reaction("work")
            .triggered_by(inp)
            .effects(out)
            .body(move |_, ctx| {
                let v = *ctx.get(inp).unwrap();
                ctx.set(out, v * 31 + i as u64);
            });
        stage.finish();
        b.connect(src_out, inp).unwrap();
        stage_outs.push(out);
    }

    let mut sink = b.reactor("sink", 0u32);
    let mut sink_ins = Vec::new();
    for i in 0..width {
        sink_ins.push(sink.input::<u64>(&format!("i{i}")));
    }
    let ins = sink_ins.clone();
    let sums2 = sums.clone();
    let mut decl = sink.reaction("sum");
    for &i in &sink_ins {
        decl = decl.triggered_by(i);
    }
    decl.body(move |rounds: &mut u32, ctx| {
        let total: u64 = ins.iter().map(|&i| *ctx.get(i).unwrap()).sum();
        sums2.lock().unwrap().push(total);
        *rounds += 1;
        if *rounds >= ticks {
            ctx.request_shutdown();
        }
    });
    sink.finish();
    for (i, out) in stage_outs.into_iter().enumerate() {
        b.connect(out, sink_ins[i]).unwrap();
    }

    let mut rt = Runtime::new(b.build().unwrap());
    rt.set_workers(workers);
    rt.enable_tracing();
    rt.start(Instant::EPOCH);
    let mut step = 0u64;
    let mut injected = 0u64;
    loop {
        // Deterministic injection pattern: after every second processed
        // tag, inject a burst that collides on the same clock reading.
        if rt.is_running() && step % 2 == 1 && injected < u64::from(injections) {
            let now = Instant::from_millis(step);
            let a = rt.schedule_physical(&act, injected, now).unwrap();
            let b2 = rt.schedule_physical(&act, injected + 100, now).unwrap();
            assert!(b2 > a, "burst tags must be strictly increasing");
            injected += 1;
        }
        match rt.step_fast() {
            dear_core::StepOutcome::Processed(_) => step += 1,
            _ => break,
        }
    }
    let fp = rt.trace_log().fingerprint();
    let digest: u64 = sums.lock().unwrap().iter().fold(0u64, |acc, &v| {
        acc.wrapping_mul(1099511628211).wrapping_add(v)
    });
    (fp, digest, rt.stats().executed_reactions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The persistent pool with mid-run physical injections (including
    /// same-reading bursts) must match sequential execution bit for bit.
    #[test]
    fn prop_pooled_injections_match_sequential(
        width in 1usize..10,
        ticks in 2u32..8,
        injections in 0u8..6,
        workers in 2usize..8,
    ) {
        let seq = build_fanout_with_injections(width, ticks, injections, 1);
        let par = build_fanout_with_injections(width, ticks, injections, workers);
        prop_assert_eq!(seq, par);
    }
}
