//! Delayed connections: logical "after" delays and feedback loops.

use dear_core::{AssemblyError, ProgramBuilder, Runtime, Startup, Tag};
use dear_time::{Duration, Instant};
use std::sync::{Arc, Mutex};

#[test]
fn delayed_connection_shifts_logical_time() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", ());
    let out = src.output::<u32>("o");
    src.reaction("emit")
        .triggered_by(Startup)
        .effects(out)
        .body(move |_, ctx| ctx.set(out, 9));
    src.finish();
    let mut sink = b.reactor("sink", ());
    let inp = sink.input::<u32>("i");
    let sinklog = got.clone();
    sink.reaction("recv").triggered_by(inp).body(move |_, ctx| {
        sinklog
            .lock()
            .unwrap()
            .push((ctx.tag(), *ctx.get(inp).unwrap()));
    });
    sink.finish();
    b.connect_delayed(out, inp, Duration::from_millis(7))
        .unwrap();

    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    assert_eq!(
        *got.lock().unwrap(),
        vec![(Tag::at(Instant::from_millis(7)), 9)]
    );
}

#[test]
fn zero_delay_connection_advances_microstep() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", ());
    let out = src.output::<u32>("o");
    src.reaction("emit")
        .triggered_by(Startup)
        .effects(out)
        .body(move |_, ctx| ctx.set(out, 1));
    src.finish();
    let mut sink = b.reactor("sink", ());
    let inp = sink.input::<u32>("i");
    let sinklog = got.clone();
    sink.reaction("recv").triggered_by(inp).body(move |_, ctx| {
        sinklog.lock().unwrap().push(ctx.tag());
    });
    sink.finish();
    b.connect_delayed(out, inp, Duration::ZERO).unwrap();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    assert_eq!(*got.lock().unwrap(), vec![Tag::new(Instant::EPOCH, 1)]);
}

#[test]
fn feedback_loop_with_delay_is_legal_and_converges() {
    // An integrator feeding back into itself: illegal with a direct
    // connection, legal through a delayed one.
    let history = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut node = b.reactor("integrator", ());
    let fb_in = node.input::<u64>("state_in");
    let fb_out = node.output::<u64>("state_out");
    let log = history.clone();
    node.reaction("seed")
        .triggered_by(Startup)
        .effects(fb_out)
        .body(move |_, ctx| ctx.set(fb_out, 1));
    node.reaction("step")
        .triggered_by(fb_in)
        .effects(fb_out)
        .body(move |_, ctx| {
            let v = *ctx.get(fb_in).unwrap();
            log.lock().unwrap().push((ctx.tag(), v));
            if v < 32 {
                ctx.set(fb_out, v * 2);
            } else {
                ctx.request_shutdown();
            }
        });
    node.finish();
    b.connect_delayed(fb_out, fb_in, Duration::from_millis(1))
        .unwrap();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let values: Vec<u64> = history.lock().unwrap().iter().map(|&(_, v)| v).collect();
    assert_eq!(values, vec![1, 2, 4, 8, 16, 32]);
    let tags: Vec<Instant> = history
        .lock()
        .unwrap()
        .iter()
        .map(|&(t, _)| t.time)
        .collect();
    assert_eq!(
        tags,
        (1..=6).map(Instant::from_millis).collect::<Vec<_>>(),
        "each loop iteration advances by the connection delay"
    );
}

#[test]
fn direct_feedback_loop_is_still_rejected() {
    let mut b = ProgramBuilder::new();
    let mut node = b.reactor("loopy", ());
    let fb_in = node.input::<u64>("i");
    let fb_out = node.output::<u64>("o");
    node.reaction("step")
        .triggered_by(fb_in)
        .effects(fb_out)
        .body(|_, _| {});
    node.finish();
    b.connect(fb_out, fb_in).unwrap();
    assert!(matches!(b.build(), Err(AssemblyError::DependencyCycle(_))));
}

#[test]
fn delayed_values_preserve_per_tag_ordering() {
    // Two values sent at different tags through the same delayed
    // connection arrive in order, shifted by the same delay.
    let got = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", 0u32);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(2)));
    let out = src.output::<u32>("o");
    src.reaction("emit")
        .triggered_by(t)
        .effects(out)
        .body(move |n: &mut u32, ctx| {
            *n += 1;
            ctx.set(out, *n);
        });
    src.finish();
    let mut sink = b.reactor("sink", ());
    let inp = sink.input::<u32>("i");
    let log = got.clone();
    sink.reaction("recv").triggered_by(inp).body(move |_, ctx| {
        log.lock()
            .unwrap()
            .push((ctx.logical_time(), *ctx.get(inp).unwrap()));
    });
    sink.finish();
    b.connect_delayed(out, inp, Duration::from_millis(5))
        .unwrap();
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::from_millis(12)).unwrap();
    rt.run_fast(u64::MAX);
    assert_eq!(
        *got.lock().unwrap(),
        vec![
            (Instant::from_millis(5), 1),
            (Instant::from_millis(7), 2),
            (Instant::from_millis(9), 3),
            (Instant::from_millis(11), 4),
        ]
    );
}
