//! Tests of the real-time driver (timers against the wall clock, physical
//! action injection from other threads). Tolerances are deliberately loose
//! to stay robust on loaded CI machines.

use dear_core::{ProgramBuilder, RealTimeExecutor, Startup};
use dear_time::Duration;
use std::sync::{Arc, Mutex};

#[test]
fn timer_driven_program_runs_in_real_time() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("ticker", 0u32);
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(2)));
    r.reaction("tick").triggered_by(t).body(|n: &mut u32, ctx| {
        *n += 1;
        if *n == 5 {
            ctx.request_shutdown();
        }
    });
    r.finish();
    let started = std::time::Instant::now();
    let mut exec = RealTimeExecutor::new(b.build().unwrap());
    let stats = exec.run();
    let elapsed = started.elapsed();
    assert_eq!(stats.executed_reactions, 5);
    // Four 2 ms periods must have elapsed (>= 8 ms), with generous upper slack.
    assert!(elapsed >= std::time::Duration::from_millis(8));
    assert!(elapsed < std::time::Duration::from_secs(5));
}

#[test]
fn physical_injection_from_another_thread() {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("sensor", 0u32);
    let act = r.physical_action::<u32>("sample", Duration::ZERO);
    let s = seen.clone();
    r.reaction("observe")
        .triggered_by(act)
        .body(move |count: &mut u32, ctx| {
            s.lock().unwrap().push(*ctx.get_action(&act).unwrap());
            *count += 1;
            if *count == 3 {
                ctx.request_shutdown();
            }
        });
    r.finish();

    let mut exec = RealTimeExecutor::new(b.build().unwrap());
    let injector = exec.injector(&act);
    let producer = std::thread::spawn(move || {
        for i in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(injector.inject(i));
        }
    });
    let stats = exec.run();
    producer.join().unwrap();
    assert_eq!(stats.executed_reactions, 3);
    assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2]);
}

#[test]
fn executor_terminates_when_all_injectors_drop() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("sensor", ());
    let act = r.physical_action::<u32>("sample", Duration::ZERO);
    r.reaction("observe").triggered_by(act).body(|_, _| {});
    r.finish();
    let mut exec = RealTimeExecutor::new(b.build().unwrap());
    // No injector created; queue is empty after startup, all senders are
    // dropped at run() entry, so run() must return promptly.
    let stats = exec.run();
    assert_eq!(stats.executed_reactions, 0);
}

#[test]
fn stop_handle_interrupts_run() {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("ticker", 0u64);
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    r.reaction("tick")
        .triggered_by(t)
        .body(|n: &mut u64, _| *n += 1);
    r.finish();
    let mut exec = RealTimeExecutor::new(b.build().unwrap());
    let stop = exec.stop_handle();
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(stop.stop());
    });
    let stats = exec.run();
    stopper.join().unwrap();
    assert!(stats.executed_reactions >= 1, "ticked at least once");
    assert!(
        stats.executed_reactions < 5000,
        "stopped well before forever"
    );
}

#[test]
fn startup_reaction_observes_small_lag() {
    let lag_ns = Arc::new(Mutex::new(None));
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", ());
    let sink = lag_ns.clone();
    r.reaction("up").triggered_by(Startup).body(move |_, ctx| {
        *sink.lock().unwrap() = Some(ctx.lag().as_nanos());
        ctx.request_shutdown();
    });
    r.finish();
    let mut exec = RealTimeExecutor::new(b.build().unwrap());
    exec.run();
    let lag = lag_ns.lock().unwrap().unwrap();
    assert!(lag >= 0, "physical never behind logical at startup");
    assert!(lag < 2_000_000_000, "startup lag below 2s, got {lag}ns");
}
