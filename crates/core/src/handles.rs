//! Typed, copyable handles to the elements of a reactor program.
//!
//! A reactor program is assembled through a builder that returns small
//! `Copy` handles — [`Port`], [`LogicalAction`], [`PhysicalAction`],
//! [`Timer`] — which reaction closures capture to read inputs, write
//! outputs, and schedule events. Handles carry the element's value type as
//! a phantom parameter, so wiring mistakes (connecting ports of different
//! types, scheduling the wrong payload) are compile errors rather than
//! runtime surprises.
//!
//! The untyped ids ([`ReactorId`], [`PortId`], ...) double as
//! [`dear_arena::Key`]s: program storage is a set of
//! [`TypedArena`](dear_arena::TypedArena)s addressed by these ids, so a
//! `PortId` can never index the reaction table.

use std::fmt;
use std::marker::PhantomData;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index of this id.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl dear_arena::Key for $name {
            fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect(concat!("too many ", $prefix, "s")))
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a reactor instance within a program.
    ReactorId,
    "reactor"
);
id_newtype!(
    /// Identifies a reaction within a program.
    ReactionId,
    "reaction"
);
id_newtype!(
    /// Identifies a port within a program.
    PortId,
    "port"
);
id_newtype!(
    /// Identifies an action within a program.
    ActionId,
    "action"
);
id_newtype!(
    /// Identifies a timer within a program.
    TimerId,
    "timer"
);

/// Whether a port is an input or an output of its reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Receives values via a connection from an output port.
    Input,
    /// Written by reactions; may fan out to several input ports.
    Output,
}

/// A typed handle to a port.
///
/// Obtained from `ReactorBuilder::input` / `ReactorBuilder::output`.
/// Handles are `Copy` and can be freely captured by reaction closures.
pub struct Port<T> {
    pub(crate) id: PortId,
    pub(crate) _marker: PhantomData<fn(T) -> T>,
}

impl<T> Port<T> {
    /// The untyped id of this port.
    #[must_use]
    pub fn id(&self) -> PortId {
        self.id
    }
}

impl<T> Clone for Port<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Port<T> {}
impl<T> fmt::Debug for Port<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Port({})", self.id)
    }
}

/// A typed handle to a logical action.
///
/// Logical actions are scheduled *by reactions* with a logical delay; the
/// resulting event's tag is derived from the current tag, preserving
/// determinism.
pub struct LogicalAction<T> {
    pub(crate) id: ActionId,
    pub(crate) _marker: PhantomData<fn(T) -> T>,
}

impl<T> LogicalAction<T> {
    /// The untyped id of this action.
    #[must_use]
    pub fn id(&self) -> ActionId {
        self.id
    }
}

impl<T> Clone for LogicalAction<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for LogicalAction<T> {}
impl<T> fmt::Debug for LogicalAction<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicalAction({})", self.id)
    }
}

/// A typed handle to a physical action.
///
/// Physical actions are scheduled *from outside* the runtime (sporadic
/// sensors, network interrupts). Their tags are derived from the physical
/// clock — they are the explicit, controlled source of nondeterminism that
/// the reactor model admits (§III.A).
pub struct PhysicalAction<T> {
    pub(crate) id: ActionId,
    pub(crate) _marker: PhantomData<fn(T) -> T>,
}

impl<T> PhysicalAction<T> {
    /// The untyped id of this action.
    #[must_use]
    pub fn id(&self) -> ActionId {
        self.id
    }
}

impl<T> Clone for PhysicalAction<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PhysicalAction<T> {}
impl<T> fmt::Debug for PhysicalAction<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysicalAction({})", self.id)
    }
}

/// A handle to a periodic or one-shot timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timer {
    pub(crate) id: TimerId,
}

impl Timer {
    /// The untyped id of this timer.
    #[must_use]
    pub fn id(&self) -> TimerId {
        self.id
    }
}

/// The startup trigger: fires once at the very first tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Startup;

/// The shutdown trigger: fires once at the final tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Shutdown;

/// An untyped trigger reference used in reaction declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerId {
    /// Triggered at startup.
    Startup,
    /// Triggered at shutdown.
    Shutdown,
    /// Triggered when a port becomes present.
    Port(PortId),
    /// Triggered when an action event's tag is processed.
    Action(ActionId),
    /// Triggered when a timer fires.
    Timer(TimerId),
}

/// Anything a reaction can declare as a trigger.
///
/// This trait is sealed; it is implemented for [`Port`], [`LogicalAction`],
/// [`PhysicalAction`], [`Timer`], [`Startup`] and [`Shutdown`].
pub trait TriggerSource: sealed::Sealed {
    /// The untyped trigger this source corresponds to.
    fn trigger_id(&self) -> TriggerId;
}

mod sealed {
    pub trait Sealed {}
    impl<T> Sealed for super::Port<T> {}
    impl<T> Sealed for super::LogicalAction<T> {}
    impl<T> Sealed for super::PhysicalAction<T> {}
    impl Sealed for super::Timer {}
    impl Sealed for super::Startup {}
    impl Sealed for super::Shutdown {}
}

impl<T> TriggerSource for Port<T> {
    fn trigger_id(&self) -> TriggerId {
        TriggerId::Port(self.id)
    }
}
impl<T> TriggerSource for LogicalAction<T> {
    fn trigger_id(&self) -> TriggerId {
        TriggerId::Action(self.id)
    }
}
impl<T> TriggerSource for PhysicalAction<T> {
    fn trigger_id(&self) -> TriggerId {
        TriggerId::Action(self.id)
    }
}
impl TriggerSource for Timer {
    fn trigger_id(&self) -> TriggerId {
        TriggerId::Timer(self.id)
    }
}
impl TriggerSource for Startup {
    fn trigger_id(&self) -> TriggerId {
        TriggerId::Startup
    }
}
impl TriggerSource for Shutdown {
    fn trigger_id(&self) -> TriggerId {
        TriggerId::Shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ReactorId(3).to_string(), "reactor3");
        assert_eq!(PortId(0).to_string(), "port0");
        assert_eq!(ReactionId(1).to_string(), "reaction1");
        assert_eq!(ActionId(2).to_string(), "action2");
        assert_eq!(TimerId(4).to_string(), "timer4");
    }

    #[test]
    fn handles_are_copy_and_comparable() {
        let p = Port::<u32> {
            id: PortId(7),
            _marker: PhantomData,
        };
        let q = p; // Copy
        assert_eq!(p.id(), q.id());
        assert_eq!(format!("{p:?}"), "Port(port7)");
    }

    #[test]
    fn trigger_sources_map_to_ids() {
        let p = Port::<u32> {
            id: PortId(1),
            _marker: PhantomData,
        };
        let a = LogicalAction::<u32> {
            id: ActionId(2),
            _marker: PhantomData,
        };
        let ph = PhysicalAction::<u32> {
            id: ActionId(3),
            _marker: PhantomData,
        };
        let t = Timer { id: TimerId(4) };
        assert_eq!(p.trigger_id(), TriggerId::Port(PortId(1)));
        assert_eq!(a.trigger_id(), TriggerId::Action(ActionId(2)));
        assert_eq!(ph.trigger_id(), TriggerId::Action(ActionId(3)));
        assert_eq!(t.trigger_id(), TriggerId::Timer(TimerId(4)));
        assert_eq!(Startup.trigger_id(), TriggerId::Startup);
        assert_eq!(Shutdown.trigger_id(), TriggerId::Shutdown);
    }
}
