//! Tags: the logical timestamps of the reactor model.
//!
//! Events in a reactor program are associated with *tags* (§III.A of the
//! paper). A tag is a pair of a logical time point and a *microstep* index
//! that orders rounds of zero-delay causality at the same time point.
//! Coordination in DEAR consists of ensuring all communication between
//! reactors happens in tag order.

use dear_time::{Duration, Instant};
use std::fmt;

/// A logical timestamp `(time, microstep)`.
///
/// Tags are totally ordered lexicographically, which yields the global
/// event order that makes reactor execution deterministic.
///
/// # Examples
///
/// ```
/// use dear_core::Tag;
/// use dear_time::{Duration, Instant};
///
/// let t = Tag::new(Instant::from_millis(10), 0);
/// // A zero logical delay advances only the microstep:
/// assert_eq!(t.delay(Duration::ZERO), Tag::new(Instant::from_millis(10), 1));
/// // A positive delay advances time and resets the microstep:
/// assert_eq!(
///     t.delay(Duration::from_millis(5)),
///     Tag::new(Instant::from_millis(15), 0)
/// );
/// assert!(t < t.delay(Duration::ZERO));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    /// The logical time point.
    pub time: Instant,
    /// Microstep index within the time point.
    pub microstep: u32,
}

impl Tag {
    /// The origin tag `(0, 0)`.
    pub const ORIGIN: Tag = Tag {
        time: Instant::EPOCH,
        microstep: 0,
    };

    /// Creates a tag from a time point and microstep.
    #[must_use]
    pub const fn new(time: Instant, microstep: u32) -> Self {
        Tag { time, microstep }
    }

    /// Creates a tag at the given time with microstep zero.
    #[must_use]
    pub const fn at(time: Instant) -> Self {
        Tag { time, microstep: 0 }
    }

    /// This tag as the telemetry layer's structural twin
    /// ([`dear_observe::LogicalTag`]); both render identically.
    #[must_use]
    pub const fn as_logical(self) -> dear_observe::LogicalTag {
        dear_observe::LogicalTag {
            time: self.time,
            microstep: self.microstep,
        }
    }

    /// The tag obtained by a logical delay.
    ///
    /// A strictly positive delay advances the time point and resets the
    /// microstep; a zero delay advances only the microstep. Either way the
    /// result is strictly greater than `self`, so scheduling with `delay`
    /// always moves forward in logical time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    #[must_use]
    pub fn delay(self, delay: Duration) -> Tag {
        assert!(!delay.is_negative(), "logical delays must be non-negative");
        if delay.is_zero() {
            Tag {
                time: self.time,
                microstep: self.microstep.checked_add(1).expect("microstep overflow"),
            }
        } else {
            Tag {
                time: self.time + delay,
                microstep: 0,
            }
        }
    }

    /// Returns `true` if `self` is strictly before `other`.
    #[must_use]
    pub fn is_before(self, other: Tag) -> bool {
        self < other
    }

    /// The physical lag of this tag relative to a physical clock reading:
    /// `physical - tag.time` (positive when physical time has passed the
    /// tag; deadlines compare this lag against their bound).
    #[must_use]
    pub fn lag(self, physical: Instant) -> Duration {
        physical
            .checked_duration_since(self.time)
            .expect("lag out of range")
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.time, self.microstep)
    }
}

impl From<Instant> for Tag {
    fn from(time: Instant) -> Self {
        Tag::at(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tag::new(Instant::from_millis(1), 5);
        let b = Tag::new(Instant::from_millis(2), 0);
        let c = Tag::new(Instant::from_millis(2), 1);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn zero_delay_bumps_microstep() {
        let t = Tag::new(Instant::from_millis(3), 7);
        let d = t.delay(Duration::ZERO);
        assert_eq!(d, Tag::new(Instant::from_millis(3), 8));
        assert!(t < d);
    }

    #[test]
    fn positive_delay_resets_microstep() {
        let t = Tag::new(Instant::from_millis(3), 7);
        let d = t.delay(Duration::from_micros(1));
        assert_eq!(
            d,
            Tag::new(Instant::from_millis(3) + Duration::from_micros(1), 0)
        );
    }

    #[test]
    fn lag_measures_physical_minus_logical() {
        let t = Tag::at(Instant::from_millis(10));
        assert_eq!(t.lag(Instant::from_millis(15)), Duration::from_millis(5));
        assert_eq!(t.lag(Instant::from_millis(5)), Duration::from_millis(-5));
    }

    #[test]
    fn display_shows_both_parts() {
        let t = Tag::new(Instant::from_secs(1), 2);
        assert_eq!(t.to_string(), "(1.000000000s, 2)");
    }

    #[test]
    fn from_instant_gives_microstep_zero() {
        let t: Tag = Instant::from_secs(3).into();
        assert_eq!(t.microstep, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        let _ = Tag::ORIGIN.delay(Duration::from_nanos(-1));
    }

    proptest! {
        #[test]
        fn prop_delay_strictly_increases(
            time in 0u64..(1 << 50),
            micro in 0u32..1000,
            delay in 0i64..(1 << 40),
        ) {
            let t = Tag::new(Instant::from_nanos(time), micro);
            let d = t.delay(Duration::from_nanos(delay));
            prop_assert!(t < d);
        }

        #[test]
        fn prop_delay_monotone_in_base(
            ta in 0u64..(1 << 50),
            tb in 0u64..(1 << 50),
            delay in 1i64..(1 << 40),
        ) {
            let (a, b) = (Tag::at(Instant::from_nanos(ta)), Tag::at(Instant::from_nanos(tb)));
            let d = Duration::from_nanos(delay);
            prop_assert_eq!(a.cmp(&b), a.delay(d).cmp(&b.delay(d)));
        }

        #[test]
        fn prop_total_order(
            ta in 0u64..(1 << 40), ma in 0u32..100,
            tb in 0u64..(1 << 40), mb in 0u32..100,
        ) {
            let a = Tag::new(Instant::from_nanos(ta), ma);
            let b = Tag::new(Instant::from_nanos(tb), mb);
            // Exactly one of <, ==, > holds.
            let rels = [a < b, a == b, a > b];
            prop_assert_eq!(rels.iter().filter(|&&r| r).count(), 1);
        }
    }
}
