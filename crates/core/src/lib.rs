//! # dear-core — a deterministic reactor runtime
//!
//! This crate implements the reactor model that the paper *Achieving
//! Determinism in Adaptive AUTOSAR* (DATE 2020) proposes as the programming
//! model for software components (SWCs) on the AUTOSAR Adaptive Platform.
//! It corresponds to the reactor-runtime half of the authors' DEAR
//! framework ("a C++ implementation of the reactor model ... type-safe
//! mechanisms for the definition of reactors with ports, actions and
//! reactions ... and a runtime scheduler to coordinate the execution of
//! the reactor network", §III.B) — rebuilt from scratch in Rust.
//!
//! ## Model
//!
//! * Reactors are stateful components declaring **reactions** triggered by
//!   input **ports**, **actions**, **timers**, startup and shutdown.
//! * Every event carries a [`Tag`] (logical time + microstep); reactions
//!   are logically instantaneous, so outputs inherit the triggering tag.
//! * The port topology plus intra-reactor priorities form an **acyclic
//!   precedence graph** whose levels drive scheduling; same-level
//!   reactions are independent and may execute on parallel workers with
//!   bit-identical observable behaviour.
//! * **Logical actions** are scheduled by reactions with a logical delay;
//!   **physical actions** are scheduled from outside (sensors, network
//!   interrupts) and are the model's controlled nondeterminism inlet.
//! * **Deadlines** bound the physical lag of a reaction; a violated
//!   deadline runs the handler instead of the body — faults become
//!   observable instead of silently reordering events.
//!
//! ## Quickstart
//!
//! ```
//! use dear_core::{ProgramBuilder, Runtime, Startup};
//! use dear_time::{Duration, Instant};
//!
//! let mut b = ProgramBuilder::new();
//!
//! let mut src = b.reactor("src", ());
//! let out = src.output::<u64>("out");
//! let tick = src.timer("tick", Duration::ZERO, Some(Duration::from_millis(10)));
//! src.reaction("emit")
//!     .triggered_by(tick)
//!     .effects(out)
//!     .body(move |_, ctx| {
//!         let t = ctx.logical_time().as_nanos();
//!         ctx.set(out, t);
//!     });
//! src.finish();
//!
//! let mut sink = b.reactor("sink", Vec::<u64>::new());
//! let inp = sink.input::<u64>("in");
//! sink.reaction("collect")
//!     .triggered_by(inp)
//!     .body(move |seen: &mut Vec<u64>, ctx| {
//!         seen.push(*ctx.get(inp).unwrap());
//!         if seen.len() == 3 {
//!             ctx.request_shutdown();
//!         }
//!     });
//! sink.finish();
//!
//! b.connect(out, inp)?;
//! let mut rt = Runtime::new(b.build()?);
//! rt.start(Instant::EPOCH);
//! rt.run_fast(u64::MAX);
//! assert_eq!(rt.stats().executed_reactions, 6); // 3 emits + 3 collects
//! # Ok::<(), dear_core::AssemblyError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod context;
mod error;
mod handles;
mod pool;
mod program;
mod queue;
mod realtime;
mod runtime;
mod spec;
mod tag;

pub use clock::{FixedClock, PhysicalClock, RealClock};
pub use context::{ActionSource, ReactionCtx};
pub use error::{AssemblyError, BuildError, RuntimeError};
pub use handles::{
    ActionId, LogicalAction, PhysicalAction, Port, PortId, PortKind, ReactionId, ReactorId,
    Shutdown, Startup, Timer, TimerId, TriggerId, TriggerSource,
};
pub use program::{ActionKind, Program, ProgramBuilder, ReactionDeclaration, ReactorBuilder};
pub use realtime::{Injector, RealTimeExecutor, StopHandle};
pub use runtime::{Runtime, RuntimeStats, StepOutcome, TagSummary};
pub use spec::{Reaction, ReactorSpec};
pub use tag::Tag;

/// The `#[derive(Reactor)]` authoring DSL (see [`spec`](crate::ReactorSpec)
/// and the `dear-macros` crate for the attribute reference).
pub use dear_macros::Reactor;

/// Implementation detail of `#[derive(Reactor)]` expansions — not public
/// API. Re-exports the types generated code references by absolute path so
/// user crates need no extra dependencies.
#[doc(hidden)]
pub mod __rt {
    pub use dear_time::Duration;
}
