//! The contract between `#[derive(Reactor)]` and the program builder.
//!
//! The derive macro (re-exported as [`Reactor`](crate::Reactor)) turns a
//! plain struct of [`Port`](crate::Port) / action / [`Timer`](crate::Timer)
//! fields plus `#[reaction(...)]` markers into an implementation of
//! [`ReactorSpec`]: a function that declares the reactor through the
//! existing [`ProgramBuilder`] API, in field order, with the struct's
//! methods as reaction bodies. Nothing about the runtime changes — a
//! derived reactor produces the *same* program (same element names, ids,
//! levels and replay fingerprints) as the equivalent hand-written builder
//! calls.
//!
//! ```
//! use dear_core::{Port, ProgramBuilder, Reaction, ReactionCtx, Reactor, Runtime, Timer};
//! use dear_time::{Duration, Instant};
//!
//! #[derive(Reactor)]
//! #[reactor(state = u64)]
//! struct Counter {
//!     #[timer(period = "Duration::from_millis(10)")]
//!     tick: Timer,
//!     #[output]
//!     count: Port<u64>,
//!     #[reaction(triggers(tick), effects(count))]
//!     bump: Reaction,
//! }
//!
//! impl Counter {
//!     fn bump(state: &mut u64, this: &Self, ctx: &mut ReactionCtx<'_>) {
//!         *state += 1;
//!         ctx.set(this.count, *state);
//!         if *state == 3 {
//!             ctx.request_shutdown();
//!         }
//!     }
//! }
//!
//! let mut b = ProgramBuilder::new();
//! let counter: Counter = b.declare("counter", 0u64);
//! # let _ = counter;
//! let mut rt = Runtime::new(b.build()?);
//! rt.start(Instant::EPOCH);
//! rt.run_fast(u64::MAX);
//! assert_eq!(rt.stats().executed_reactions, 3);
//! # Ok::<(), dear_core::AssemblyError>(())
//! ```

use crate::program::ProgramBuilder;

/// A reactor class that can declare instances of itself into a
/// [`ProgramBuilder`].
///
/// Implemented by `#[derive(Reactor)]`; rarely written by hand. The
/// returned value is the *handle bundle*: a `Copy` struct holding the
/// instance's port, action and timer handles for wiring with
/// [`ProgramBuilder::connect`] and friends.
pub trait ReactorSpec: Sized {
    /// The reactor's mutable state, passed to every reaction body.
    type State: Send + 'static;

    /// Foreign handles (ports of *other* reactors, e.g. transactor event
    /// ports) the reactor's reactions reference. `()` when there are none.
    type Externals;

    /// Declares one instance named `name` into `builder` and returns its
    /// handle bundle.
    fn declare_in(
        builder: &mut ProgramBuilder,
        name: &str,
        state: Self::State,
        ext: Self::Externals,
    ) -> Self;
}

/// Marker type for `#[reaction(...)]` fields in a derived reactor struct.
///
/// The field itself carries no data — the declaration order of `Reaction`
/// fields *is* the reaction priority order, exactly like calls to
/// [`ReactorBuilder::reaction`](crate::ReactorBuilder::reaction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Reaction;

impl ProgramBuilder {
    /// Declares an instance of a derived reactor class with no external
    /// handles.
    ///
    /// See [`ReactorSpec`] for the derive contract; `examples/quickstart.rs`
    /// shows a complete derived program.
    pub fn declare<R: ReactorSpec<Externals = ()>>(&mut self, name: &str, state: R::State) -> R {
        R::declare_in(self, name, state, ())
    }

    /// Declares an instance of a derived reactor class that references
    /// foreign ports (declared with `#[external]` fields).
    pub fn declare_ext<R: ReactorSpec>(
        &mut self,
        name: &str,
        state: R::State,
        ext: R::Externals,
    ) -> R {
        R::declare_in(self, name, state, ext)
    }
}
