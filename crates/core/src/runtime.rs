//! The reactor runtime: event queue, tag processing, and level-parallel
//! reaction execution.
//!
//! [`Runtime`] consumes a validated [`Program`] and processes tags in
//! strictly increasing order. At each tag, triggered reactions execute in
//! APG level order; reactions sharing a level are independent by
//! construction and may run on parallel worker threads without affecting
//! observable behaviour (verified by the `parallel_matches_sequential`
//! tests and property tests).
//!
//! The runtime is *poll-driven*: a driver decides **when** to call
//! [`Runtime::step`], passing the physical clock reading it observed. This
//! one design choice lets the identical runtime run under
//!
//! * a real-time executor (wait until the wall clock passes the next tag —
//!   see [`RealTimeExecutor`](crate::RealTimeExecutor)),
//! * the discrete-event platform simulator (the federated driver in
//!   `dear-transactors` schedules `step` calls at the simulated instant at
//!   which the platform's local clock passes the tag), and
//! * "fast mode" for tests ([`Runtime::step_fast`], no waiting at all).

use crate::context::{ReactionCtx, ReactionOutcome};
use crate::error::RuntimeError;
use crate::handles::{ActionId, PhysicalAction, PortId, ReactionId, ReactorId};
use crate::pool::WorkerPool;
use crate::program::{ActionKind, Program, Value};
use crate::queue::{Event, EventQueue};
use crate::tag::Tag;
use dear_arena::TypedArena;
use dear_observe::{EventKind, Lane, Observe};
use dear_sim::Trace;
use dear_time::{Duration, Instant};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;

/// Counters describing a runtime's activity so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Tags fully processed.
    pub processed_tags: u64,
    /// Reaction bodies (or deadline handlers) executed.
    pub executed_reactions: u64,
    /// Deadline violations observed.
    pub deadline_misses: u64,
    /// Safe-to-process violations rejected at injection.
    pub stp_violations: u64,
    /// Steps deferred because the earliest pending tag lay at or beyond
    /// the externally granted tag bound (centralized coordination).
    pub bound_deferrals: u64,
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tags={} reactions={} deadline_misses={} stp_violations={} bound_deferrals={}",
            self.processed_tags,
            self.executed_reactions,
            self.deadline_misses,
            self.stp_violations,
            self.bound_deferrals
        )
    }
}

/// Result of one [`Runtime::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A tag was processed.
    Processed(TagSummary),
    /// No pending events; the runtime is alive and waiting.
    Idle,
    /// The runtime has shut down.
    Stopped,
}

/// Summary of one processed tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSummary {
    /// The processed tag.
    pub tag: Tag,
    /// Reactions executed at this tag.
    pub reactions: u32,
    /// Deadline misses at this tag.
    pub deadline_misses: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Created,
    Running,
    Stopped,
}

/// The reactor runtime.
///
/// # Examples
///
/// ```
/// use dear_core::{ProgramBuilder, Runtime, Startup};
/// use dear_time::Instant;
///
/// let mut b = ProgramBuilder::new();
/// let mut r = b.reactor("hello", 0u32);
/// r.reaction("greet")
///     .triggered_by(Startup)
///     .body(|count: &mut u32, _ctx| *count += 1);
/// r.finish();
///
/// let mut rt = Runtime::new(b.build()?);
/// rt.start(Instant::EPOCH);
/// rt.run_fast(u64::MAX);
/// assert_eq!(rt.stats().executed_reactions, 1);
/// # Ok::<(), dear_core::AssemblyError>(())
/// ```
pub struct Runtime {
    program: Arc<Program>,
    states: TypedArena<ReactorId, Option<Box<dyn Any + Send>>>,
    port_values: TypedArena<PortId, Option<Value>>,
    action_pending: TypedArena<ActionId, BTreeMap<Tag, Value>>,
    action_current: TypedArena<ActionId, Option<Value>>,
    queue: EventQueue,
    tag_bound: Option<Tag>,
    last_processed: Option<Tag>,
    phase: Phase,
    pool: Option<WorkerPool>,
    trace: Trace,
    /// Telemetry handle (disabled by default: every record is one branch).
    observe: Observe,
    /// The timeline lane this runtime's spans are drawn on.
    lane: Lane,
    /// Interned reaction names for typed trace records; built once when
    /// tracing is enabled so the traced hot path clones an `Arc` instead
    /// of formatting a `String` per event.
    reaction_names: TypedArena<ReactionId, Arc<str>>,
    stats: RuntimeStats,
    executed_log: Vec<ReactionId>,
    /// Reactions ready at the current tag, bucketed by APG level. Cleared
    /// (capacity retained) every tag, so triggering is allocation-free in
    /// steady state.
    ready_levels: Vec<Vec<ReactionId>>,
    /// Scratch buffer for the current same-level batch (reused).
    scratch_batch: Vec<ReactionId>,
    /// Scratch buffer for batch results (reused).
    scratch_results: Vec<(ReactionId, ReactionOutcome, bool)>,
    /// Scratch list of ports written at the current tag (reused).
    written: Vec<PortId>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("phase", &self.phase)
            .field("last_processed", &self.last_processed)
            .field("pending_events", &self.queue.pending_events())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Runtime {
    /// Creates a runtime for the given program (sequential execution).
    #[must_use]
    pub fn new(program: Program) -> Self {
        let states =
            std::mem::take(&mut *program.states.lock().expect("program states poisoned")).map(Some);
        let port_values = TypedArena::from_fn(program.ports.len(), |_| None);
        let action_pending = TypedArena::from_fn(program.actions.len(), |_| BTreeMap::new());
        let action_current = TypedArena::from_fn(program.actions.len(), |_| None);
        let num_levels = program
            .reactions
            .iter()
            .map(|r| r.level as usize + 1)
            .max()
            .unwrap_or(0);
        Runtime {
            program: Arc::new(program),
            states,
            port_values,
            action_pending,
            action_current,
            queue: EventQueue::default(),
            tag_bound: None,
            last_processed: None,
            phase: Phase::Created,
            pool: None,
            trace: Trace::disabled(),
            observe: Observe::disabled(),
            lane: Lane::Sim,
            reaction_names: TypedArena::new(),
            stats: RuntimeStats::default(),
            executed_log: Vec::new(),
            ready_levels: (0..num_levels).map(|_| Vec::new()).collect(),
            scratch_batch: Vec::new(),
            scratch_results: Vec::new(),
            written: Vec::new(),
        }
    }

    /// The reactions executed at the most recently processed tag, in
    /// execution order. Drivers use this to attribute modelled compute
    /// cost to the platform (see `dear-transactors`).
    #[must_use]
    pub fn executed_at_last_tag(&self) -> &[ReactionId] {
        &self.executed_log
    }

    /// Sets the number of worker threads used for same-level reactions.
    ///
    /// `1` (the default) executes sequentially. Any higher value enables
    /// the level-parallel executor backed by a **persistent worker pool**:
    /// the pool's threads are spawned here, once, and reused across all
    /// batches, levels, and tags until the runtime is dropped (or the
    /// worker count changes). Observable behaviour is identical to
    /// sequential execution.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn set_workers(&mut self, workers: usize) {
        assert!(workers > 0, "need at least one worker");
        match &self.pool {
            _ if workers == 1 => self.pool = None,
            Some(pool) if pool.threads() == workers => {}
            _ => self.pool = Some(WorkerPool::new(workers)),
        }
    }

    /// Enables trace recording of reaction executions, deadline misses and
    /// STP violations (for determinism fingerprinting).
    pub fn enable_tracing(&mut self) {
        self.trace.set_enabled(true);
        self.intern_names();
    }

    /// Interns reaction names as `Arc<str>` so traced records share them.
    fn intern_names(&mut self) {
        if self.reaction_names.is_empty() {
            self.reaction_names = self
                .program
                .reactions
                .iter()
                .map(|r| Arc::from(r.name.as_str()))
                .collect();
        }
    }

    /// Attaches a telemetry handle and assigns this runtime's span lane.
    ///
    /// With an enabled handle the runtime counts tags / reactions /
    /// deadline misses into the `runtime/` metric scope, records the
    /// physical-vs-logical lag histogram under `coord/tag_lag_ns`, and
    /// draws one span per processed tag on `lane`. A disabled handle (the
    /// default) keeps the hot path zero-alloc — asserted by the
    /// `observe_overhead` bench.
    pub fn set_observe(&mut self, observe: Observe, lane: Lane) {
        self.observe = observe;
        self.lane = lane;
    }

    /// The attached telemetry handle.
    #[must_use]
    pub fn observe(&self) -> &Observe {
        &self.observe
    }

    /// The recorded trace.
    #[must_use]
    pub fn trace_log(&self) -> &Trace {
        &self.trace
    }

    /// Takes the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        let enabled = self.trace.is_enabled();
        let replacement = if enabled {
            Trace::new()
        } else {
            Trace::disabled()
        };
        std::mem::replace(&mut self.trace, replacement)
    }

    /// Runtime statistics.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// The program this runtime executes.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Starts the runtime: logical time is anchored at `now` (the platform
    /// clock reading), startup reactions are enqueued at tag `(now, 0)`,
    /// and timers at their offsets relative to `now`.
    ///
    /// # Panics
    ///
    /// Panics if the runtime was already started.
    pub fn start(&mut self, now: Instant) {
        assert_eq!(self.phase, Phase::Created, "runtime already started");
        self.phase = Phase::Running;
        let start_tag = Tag::at(now);
        if !self.program.startup.is_empty() {
            self.queue.push(start_tag, Event::Startup);
        }
        for (tid, timer) in self.program.timers.iter_enumerated() {
            let tag = Tag::at(now + timer.offset);
            self.queue.push(tag, Event::Timer(tid));
        }
    }

    /// Returns `true` while the runtime can still process tags.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.phase == Phase::Running
    }

    /// The earliest pending tag, if any.
    #[must_use]
    pub fn next_tag(&self) -> Option<Tag> {
        self.queue.peek_tag()
    }

    /// The most recently processed tag.
    #[must_use]
    pub fn current_tag(&self) -> Option<Tag> {
        self.last_processed
    }

    /// Grants an *exclusive* upper bound on tag processing: [`step`] only
    /// processes tags strictly before `bound`.
    ///
    /// This is the hook through which a centralized coordinator (an RTI)
    /// gates the runtime. Bounds are monotone — a grant below the current
    /// bound is ignored, so out-of-order grant delivery is harmless. A
    /// runtime without a bound (the default, and every decentralized
    /// driver) is unrestricted.
    ///
    /// [`step`]: Runtime::step
    pub fn set_tag_bound(&mut self, bound: Tag) {
        match self.tag_bound {
            Some(current) if bound <= current => {}
            _ => self.tag_bound = Some(bound),
        }
    }

    /// The currently granted exclusive tag bound, if any.
    #[must_use]
    pub fn tag_bound(&self) -> Option<Tag> {
        self.tag_bound
    }

    /// The earliest pending tag that lies within the granted bound, if any.
    ///
    /// Equals [`next_tag`](Runtime::next_tag) when no bound is set.
    #[must_use]
    pub fn next_releasable_tag(&self) -> Option<Tag> {
        let head = self.next_tag()?;
        match self.tag_bound {
            Some(bound) if head >= bound => None,
            _ => Some(head),
        }
    }

    /// Schedules a shutdown at the given time.
    ///
    /// The shutdown tag is final: shutdown reactions run at it, and any
    /// events with later tags are discarded.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NotRunning`] if the runtime is not running,
    /// or an STP violation if `time` is not after the current tag.
    pub fn stop_at(&mut self, time: Instant) -> Result<(), RuntimeError> {
        if self.phase != Phase::Running {
            return Err(RuntimeError::NotRunning);
        }
        let tag = Tag::at(time);
        if let Some(last) = self.last_processed {
            if tag <= last {
                return Err(RuntimeError::StpViolation {
                    requested: tag,
                    current: last,
                });
            }
        }
        self.queue.push(tag, Event::Shutdown);
        Ok(())
    }

    /// Injects a physical action event with a tag derived from the given
    /// physical clock reading: `(now + min_delay, 0)`, bumped to the next
    /// microstep after the current tag if that lies in the logical past,
    /// then to the first microstep this action has no pending event at —
    /// so no two injections ever collide (a collision would silently
    /// overwrite the earlier value, the class of silent corruption §IV.B
    /// requires to be impossible).
    ///
    /// Returns the tag actually assigned.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NotRunning`] outside the running phase.
    pub fn schedule_physical<T: Send + Sync + 'static>(
        &mut self,
        action: &PhysicalAction<T>,
        value: T,
        now: Instant,
    ) -> Result<Tag, RuntimeError> {
        if self.phase != Phase::Running {
            return Err(RuntimeError::NotRunning);
        }
        let tag = self.next_physical_tag(action.id, now);
        self.insert_action_event(action.id, tag, Box::new(value));
        Ok(tag)
    }

    /// Injects a physical action event at an exact tag, as the PTIDES-style
    /// transactors do with `t + D + L + E` (paper §III.B).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::StpViolation`] — and counts it — if `tag` is
    /// not strictly after the current tag: the configured bounds were
    /// violated, and instead of silently corrupting event order the fault
    /// becomes observable ("the reactor semantics ... translates any
    /// violation of one of the assumptions directly into observable
    /// errors", §IV.B).
    pub fn schedule_physical_at<T: Send + Sync + 'static>(
        &mut self,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), RuntimeError> {
        if self.phase != Phase::Running {
            return Err(RuntimeError::NotRunning);
        }
        debug_assert_eq!(
            self.program.actions[action.id].kind,
            ActionKind::Physical,
            "schedule_physical_at requires a physical action"
        );
        if let Some(last) = self.last_processed {
            if tag <= last {
                self.stats.stp_violations += 1;
                self.observe.count("runtime/stp_violations", 1);
                let name = &self.program.actions[action.id].name;
                self.trace
                    .record_event(tag.time, "stp-violation", || EventKind::StpViolation {
                        name: Arc::from(name.as_str()),
                        requested: tag.as_logical(),
                        current: last.as_logical(),
                    });
                return Err(RuntimeError::StpViolation {
                    requested: tag,
                    current: last,
                });
            }
        }
        self.insert_action_event(action.id, tag, Box::new(value));
        Ok(())
    }

    /// Type-erased physical injection used by executors that carry values
    /// through channels (see [`RealTimeExecutor`](crate::RealTimeExecutor)).
    ///
    /// Semantics are identical to [`Runtime::schedule_physical`].
    pub(crate) fn schedule_physical_raw(
        &mut self,
        action: ActionId,
        value: Value,
        now: Instant,
    ) -> Result<Tag, RuntimeError> {
        if self.phase != Phase::Running {
            return Err(RuntimeError::NotRunning);
        }
        let tag = self.next_physical_tag(action, now);
        self.insert_action_event(action, tag, value);
        Ok(tag)
    }

    /// Computes the tag for a physical injection observed at `now`:
    /// `(now + min_delay, 0)`, bumped strictly past the current tag and
    /// then to the first microstep not already occupied by a pending
    /// event of this action.
    ///
    /// The occupancy scan is the lost-event guard: `action_pending` is
    /// keyed by tag, so two injections landing between two steps — which
    /// both used to bump to `(last, m+1)` — would have the second silently
    /// overwrite the first. Skipping exactly the occupied microsteps keeps
    /// every injection observable once *without* re-tagging it behind an
    /// unrelated event already pending at a later time (e.g. a tagged
    /// message released via [`schedule_physical_at`] in the future).
    ///
    /// [`schedule_physical_at`]: Runtime::schedule_physical_at
    fn next_physical_tag(&self, action: ActionId, now: Instant) -> Tag {
        let min_delay = self.program.actions[action].min_delay;
        let mut tag = Tag::at(now + min_delay);
        if let Some(last) = self.last_processed {
            if tag <= last {
                tag = last.delay(Duration::ZERO);
            }
        }
        let pending = &self.action_pending[action];
        while pending.contains_key(&tag) {
            tag = tag.delay(Duration::ZERO);
        }
        tag
    }

    fn insert_action_event(&mut self, action: ActionId, tag: Tag, value: Value) {
        self.action_pending[action].insert(tag, value);
        self.queue.push(tag, Event::Action(action));
    }

    /// Processes the earliest pending tag.
    ///
    /// `physical_now` is the driver's physical clock reading; it is used
    /// for deadline checks and exposed to reactions via
    /// [`ReactionCtx::physical_time`]. The runtime itself never waits —
    /// callers enforce the "no event is handled before physical time
    /// exceeds its tag" rule appropriate to their environment.
    pub fn step(&mut self, physical_now: Instant) -> StepOutcome {
        match self.phase {
            Phase::Created => panic!("Runtime::start must be called before step"),
            Phase::Stopped => return StepOutcome::Stopped,
            Phase::Running => {}
        }
        if let (Some(head), Some(bound)) = (self.next_tag(), self.tag_bound) {
            if head >= bound {
                self.stats.bound_deferrals += 1;
                self.observe.count("runtime/bound_deferrals", 1);
                return StepOutcome::Idle;
            }
        }
        let Some((tag, mut entry)) = self.queue.pop_tag() else {
            return StepOutcome::Idle;
        };
        debug_assert!(
            self.last_processed.is_none_or(|last| tag > last),
            "tags must be processed in increasing order"
        );
        self.last_processed = Some(tag);
        self.executed_log.clear();
        let stopping = entry.shutdown;

        // Collect triggered reactions into the per-level ready buckets
        // (reused across tags — no allocation in steady state).
        debug_assert!(self.ready_levels.iter().all(Vec::is_empty));
        entry.actions.sort_unstable();
        entry.actions.dedup();
        for &a in &entry.actions {
            if let Some(v) = self.action_pending[a].remove(&tag) {
                self.action_current[a] = Some(v);
            }
            for &r in &self.program.actions[a].triggered {
                self.ready_levels[self.program.reactions[r].level as usize].push(r);
            }
        }
        for &t in &entry.timers {
            for &r in &self.program.timers[t].triggered {
                self.ready_levels[self.program.reactions[r].level as usize].push(r);
            }
            if let Some(period) = self.program.timers[t].period {
                let next = Tag::at(tag.time + period);
                self.queue.push(next, Event::Timer(t));
            }
        }
        if entry.startup {
            for &r in &self.program.startup {
                self.ready_levels[self.program.reactions[r].level as usize].push(r);
            }
        }
        if stopping {
            for &r in &self.program.shutdown {
                self.ready_levels[self.program.reactions[r].level as usize].push(r);
            }
        }

        // Execute in level order; same-level batches may run in parallel.
        // Reactions can only ever enqueue work at *higher* levels (the APG
        // is acyclic), so one ascending sweep visits everything.
        let mut reactions_run = 0u32;
        let mut misses = 0u32;
        let mut shutdown_requested = false;
        for level in 0..self.ready_levels.len() {
            if self.ready_levels[level].is_empty() {
                continue;
            }
            let mut batch = std::mem::take(&mut self.scratch_batch);
            batch.append(&mut self.ready_levels[level]);
            batch.sort_unstable();
            batch.dedup();
            let mut outcomes = std::mem::take(&mut self.scratch_results);
            self.execute_batch(tag, physical_now, &batch, &mut outcomes);
            for (rid, outcome, missed) in outcomes.drain(..) {
                reactions_run += 1;
                self.stats.executed_reactions += 1;
                self.executed_log.push(rid);
                let names = &self.reaction_names;
                if missed {
                    misses += 1;
                    self.stats.deadline_misses += 1;
                    self.trace.record_event(tag.time, "deadline-miss", || {
                        EventKind::DeadlineMiss {
                            name: names[rid].clone(),
                            tag: tag.as_logical(),
                        }
                    });
                } else {
                    self.trace
                        .record_event(tag.time, "reaction", || EventKind::Reaction {
                            name: names[rid].clone(),
                            tag: tag.as_logical(),
                        });
                }
                shutdown_requested |= outcome.shutdown;
                for (port, value) in outcome.writes {
                    if self.port_values[port].is_none() {
                        self.written.push(port);
                    }
                    self.port_values[port] = Some(value);
                    for &r in &self.program.ports[port].sinks_trigger {
                        let sink_level = self.program.reactions[r].level as usize;
                        debug_assert!(sink_level > level);
                        self.ready_levels[sink_level].push(r);
                    }
                }
                for (action, atag, value) in outcome.schedules {
                    debug_assert!(atag > tag);
                    self.insert_action_event(action, atag, value);
                }
            }
            batch.clear();
            self.scratch_batch = batch;
            self.scratch_results = outcomes;
        }

        // Post-tag cleanup (scratch buffers keep their capacity; the tag
        // entry's buffers go back to the queue's free list).
        for p in self.written.drain(..) {
            self.port_values[p] = None;
        }
        for &a in &entry.actions {
            self.action_current[a] = None;
        }
        if stopping {
            self.phase = Phase::Stopped;
            self.queue.clear();
        } else if shutdown_requested {
            self.queue.push(tag.delay(Duration::ZERO), Event::Shutdown);
        }
        self.queue.recycle(entry);
        self.stats.processed_tags += 1;
        if self.observe.is_enabled() {
            self.observe.count("runtime/tags", 1);
            self.observe
                .count("runtime/reactions", u64::from(reactions_run));
            if misses > 0 {
                self.observe
                    .count("runtime/deadline_misses", u64::from(misses));
            }
            // The span covers the tag's logical instant up to the physical
            // clock reading the driver processed it at: its length *is*
            // the processing lag a coordinator imposed on this tag.
            self.observe
                .record_duration("coord/tag_lag_ns", physical_now - tag.time);
            self.observe.span_tagged(
                self.lane,
                "tag",
                tag.time,
                physical_now.max(tag.time),
                tag.as_logical(),
            );
        }
        StepOutcome::Processed(TagSummary {
            tag,
            reactions: reactions_run,
            deadline_misses: misses,
        })
    }

    /// Processes the next tag with zero physical lag ("fast mode": the
    /// physical clock is assumed to read exactly the tag's time).
    ///
    /// With an empty queue this returns [`StepOutcome::Idle`] (or
    /// [`StepOutcome::Stopped`]) directly instead of fabricating a
    /// physical-clock reading: handing [`step`](Runtime::step) an epoch
    /// reading could lie before previously observed physical time, and a
    /// runtime must never see the clock run backwards.
    ///
    /// # Panics
    ///
    /// Panics if the runtime was never started, like `step`.
    pub fn step_fast(&mut self) -> StepOutcome {
        match self.next_tag() {
            Some(tag) => self.step(tag.time),
            None => match self.phase {
                Phase::Created => panic!("Runtime::start must be called before step"),
                Phase::Stopped => StepOutcome::Stopped,
                Phase::Running => StepOutcome::Idle,
            },
        }
    }

    /// Runs in fast mode until idle, stopped, or `max_tags` processed.
    ///
    /// Returns the number of tags processed.
    pub fn run_fast(&mut self, max_tags: u64) -> u64 {
        let mut n = 0;
        while n < max_tags {
            match self.step_fast() {
                StepOutcome::Processed(_) => n += 1,
                StepOutcome::Idle | StepOutcome::Stopped => break,
            }
        }
        n
    }

    fn execute_batch(
        &mut self,
        tag: Tag,
        physical: Instant,
        batch: &[ReactionId],
        out: &mut Vec<(ReactionId, ReactionOutcome, bool)>,
    ) {
        match &self.pool {
            Some(pool) if batch.len() > 1 => {
                // Partition the batch into at most `threads` contiguous
                // chunks and hand them to the persistent pool. The
                // port/action value arenas move behind `Arc`s for the
                // duration of the batch and are reclaimed exclusively once
                // every worker has reported back. The result channel is
                // deliberately per-batch: every job holds a sender clone,
                // so if a reaction panics on a worker the senders drop and
                // `recv` fails fast — a persistent channel would deadlock
                // the runtime thread instead of surfacing the panic.
                let workers = pool.threads().min(batch.len());
                let chunk_size = batch.len().div_ceil(workers);
                let ports = Arc::new(std::mem::take(&mut self.port_values));
                let actions = Arc::new(std::mem::take(&mut self.action_current));
                let (tx, rx) = mpsc::channel();
                let mut jobs = 0usize;
                for chunk_ids in batch.chunks(chunk_size) {
                    // Take each involved reactor's state out of the arena.
                    // Two reactions of the same reactor can never share a
                    // level (they are ordered by priority), so every take
                    // succeeds.
                    let chunk: Vec<(ReactionId, Box<dyn Any + Send>)> = chunk_ids
                        .iter()
                        .map(|&rid| {
                            let reactor = self.program.reactions[rid].reactor;
                            let state = self.states[reactor]
                                .take()
                                .expect("reactor state aliased within a level");
                            (rid, state)
                        })
                        .collect();
                    let program = Arc::clone(&self.program);
                    let ports = Arc::clone(&ports);
                    let actions = Arc::clone(&actions);
                    let tx = tx.clone();
                    pool.submit(Box::new(move || {
                        let results: Vec<_> = chunk
                            .into_iter()
                            .map(|(rid, mut state)| {
                                let (outcome, missed) = run_reaction(
                                    &program,
                                    rid,
                                    state.as_mut(),
                                    tag,
                                    physical,
                                    &ports,
                                    &actions,
                                );
                                (rid, state, outcome, missed)
                            })
                            .collect();
                        // Release the arena borrows *before* reporting
                        // completion: the send happens-before the main
                        // thread's recv, so once every result has arrived
                        // the main thread holds the only Arc.
                        drop(ports);
                        drop(actions);
                        tx.send(results).expect("runtime thread waiting");
                    }));
                    jobs += 1;
                }
                drop(tx);
                let mut results = Vec::with_capacity(batch.len());
                for _ in 0..jobs {
                    results.extend(rx.recv().expect("reaction panicked on a pool worker"));
                }
                self.port_values = Arc::try_unwrap(ports)
                    .map_err(|_| "port arena still shared")
                    .expect("workers released the port arena");
                self.action_current = Arc::try_unwrap(actions)
                    .map_err(|_| "action arena still shared")
                    .expect("workers released the action arena");
                for (rid, state, outcome, missed) in results {
                    let reactor = self.program.reactions[rid].reactor;
                    self.states[reactor] = Some(state);
                    out.push((rid, outcome, missed));
                }
                // Pool results arrive in completion order; apply outcomes
                // in deterministic reaction-id order.
                out.sort_by_key(|(rid, _, _)| *rid);
            }
            _ => {
                // Sequential fast path: no intermediate collections — in
                // steady state this executes a whole batch with zero heap
                // allocations. `batch` is already sorted (and reactions
                // run in order), so `out` needs no sort.
                for &rid in batch {
                    let reactor = self.program.reactions[rid].reactor;
                    let mut state = self.states[reactor]
                        .take()
                        .expect("reactor state aliased within a level");
                    let (outcome, missed) = run_reaction(
                        &self.program,
                        rid,
                        state.as_mut(),
                        tag,
                        physical,
                        &self.port_values,
                        &self.action_current,
                    );
                    self.states[reactor] = Some(state);
                    out.push((rid, outcome, missed));
                }
            }
        }
    }
}

fn run_reaction(
    program: &Program,
    rid: ReactionId,
    state: &mut (dyn Any + Send),
    tag: Tag,
    physical: Instant,
    ports: &TypedArena<PortId, Option<Value>>,
    actions: &TypedArena<ActionId, Option<Value>>,
) -> (ReactionOutcome, bool) {
    let meta = &program.reactions[rid];
    let missed = meta.deadline.is_some_and(|d| physical > tag.time + d);
    let mut ctx = ReactionCtx {
        tag,
        physical,
        program,
        reaction: rid,
        ports,
        actions,
        outcome: ReactionOutcome::default(),
    };
    if missed {
        let handler = meta
            .deadline_handler
            .as_ref()
            .expect("deadline implies handler");
        (handler.lock().expect("deadline handler poisoned"))(state, &mut ctx);
    } else {
        (meta.body.lock().expect("reaction body poisoned"))(state, &mut ctx);
    }
    (ctx.outcome, missed)
}
