//! Physical clock abstraction.
//!
//! The runtime itself is poll-driven and clock-agnostic; drivers supply
//! physical time readings. [`PhysicalClock`] is the interface those
//! drivers use: [`RealClock`] reads the operating system's monotonic
//! clock, while the simulated drivers in `dear-transactors` derive
//! readings from a [`dear_sim::VirtualClock`] mapped over simulation time.

use dear_time::{Duration, Instant};

/// A source of physical time readings on the workspace time axis.
pub trait PhysicalClock {
    /// The current physical time.
    fn now(&self) -> Instant;
}

/// A physical clock backed by [`std::time::Instant`].
///
/// The clock is anchored at construction: the OS instant observed then is
/// defined to correspond to `origin` on the workspace time axis.
///
/// # Examples
///
/// ```
/// use dear_core::{PhysicalClock, RealClock};
/// use dear_time::Instant;
///
/// let clock = RealClock::starting_at(Instant::EPOCH);
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct RealClock {
    anchor: std::time::Instant,
    origin: Instant,
}

impl RealClock {
    /// Anchors a new clock: "now" (the OS time at this call) maps to
    /// `origin`.
    #[must_use]
    pub fn starting_at(origin: Instant) -> Self {
        RealClock {
            anchor: std::time::Instant::now(),
            origin,
        }
    }

    /// The configured origin.
    #[must_use]
    pub fn origin(&self) -> Instant {
        self.origin
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::starting_at(Instant::EPOCH)
    }
}

impl PhysicalClock for RealClock {
    fn now(&self) -> Instant {
        let elapsed = self.anchor.elapsed();
        self.origin + Duration::from_nanos(i64::try_from(elapsed.as_nanos()).unwrap_or(i64::MAX))
    }
}

/// A fixed clock for tests: always reads the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedClock(pub Instant);

impl PhysicalClock for FixedClock {
    fn now(&self) -> Instant {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone_and_advances() {
        let clock = RealClock::starting_at(Instant::from_secs(100));
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a);
        assert!(a >= Instant::from_secs(100));
    }

    #[test]
    fn real_clock_origin_offsets_readings() {
        let clock = RealClock::starting_at(Instant::from_secs(7));
        assert_eq!(clock.origin(), Instant::from_secs(7));
        assert!(clock.now() >= Instant::from_secs(7));
        assert!(
            clock.now() < Instant::from_secs(8),
            "reading far from origin"
        );
    }

    #[test]
    fn fixed_clock_never_moves() {
        let clock = FixedClock(Instant::from_millis(5));
        assert_eq!(clock.now(), Instant::from_millis(5));
        assert_eq!(clock.now(), Instant::from_millis(5));
    }
}
