//! Error types for program assembly and runtime operation.

use crate::handles::PortId;
use crate::tag::Tag;
use std::error::Error;
use std::fmt;

/// Errors detected while assembling a reactor program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssemblyError {
    /// A connection was attempted from a non-output port.
    SourceNotOutput {
        /// The offending port.
        port: PortId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// A connection was attempted to a non-input port.
    TargetNotInput {
        /// The offending port.
        port: PortId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// An input port was connected to more than one source.
    MultipleSources {
        /// The over-connected input port.
        port: PortId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// The program's dependency graph has a zero-delay cycle.
    ///
    /// The reactor model requires an *acyclic* precedence graph; a cycle
    /// means some reactions can never be ordered. The payload lists the
    /// names of the reactions on the cycle.
    DependencyCycle(Vec<String>),
    /// A connection would link a port to itself.
    SelfLoop {
        /// The port connected to itself.
        port: PortId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// Two reactors were declared with the same name.
    ///
    /// Element names are qualified as `reactor.element`; duplicate reactor
    /// names would alias those qualified names (and the replay traces
    /// built from them), so `build()` rejects them.
    DuplicateReactor {
        /// The name declared twice.
        name: String,
    },
    /// Two elements of the same kind share a qualified name.
    DuplicateElement {
        /// What was duplicated (`"port"`, `"action"`, `"timer"`, `"reaction"`).
        kind: &'static str,
        /// The qualified name (`reactor.element`) declared twice.
        name: String,
    },
    /// A connection referenced a port handle this builder never minted
    /// (e.g. a handle from a different `ProgramBuilder`).
    UnknownPort {
        /// The foreign handle's id.
        port: PortId,
    },
    /// A reaction referenced a trigger / use / effect / schedule handle
    /// this builder never minted.
    UnknownHandle {
        /// The qualified name of the offending reaction.
        reaction: String,
        /// A rendering of the foreign handle (e.g. `port7`).
        handle: String,
    },
}

/// Errors returned by [`ProgramBuilder::build`](crate::ProgramBuilder::build)
/// and the connection methods.
///
/// Alias of [`AssemblyError`]; the builder reports *all* wiring mistakes —
/// bad endpoints, duplicate names, foreign handles, zero-delay cycles —
/// through this one type instead of panicking. The derive DSL
/// (`#[derive(Reactor)]`) maps most of these to compile errors.
pub type BuildError = AssemblyError;

impl fmt::Display for AssemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssemblyError::SourceNotOutput { name, .. } => {
                write!(f, "connection source `{name}` is not an output port")
            }
            AssemblyError::TargetNotInput { name, .. } => {
                write!(f, "connection target `{name}` is not an input port")
            }
            AssemblyError::MultipleSources { name, .. } => {
                write!(f, "input port `{name}` already has a source connection")
            }
            AssemblyError::DependencyCycle(names) => {
                write!(
                    f,
                    "zero-delay dependency cycle through: {}",
                    names.join(" -> ")
                )
            }
            AssemblyError::SelfLoop { name, .. } => {
                write!(f, "port `{name}` cannot be connected to itself")
            }
            AssemblyError::DuplicateReactor { name } => {
                write!(f, "reactor `{name}` is declared more than once")
            }
            AssemblyError::DuplicateElement { kind, name } => {
                write!(f, "{kind} `{name}` is declared more than once")
            }
            AssemblyError::UnknownPort { port } => {
                write!(f, "port handle `{port}` was not created by this builder")
            }
            AssemblyError::UnknownHandle { reaction, handle } => {
                write!(
                    f,
                    "reaction `{reaction}` references handle `{handle}` not created by this builder"
                )
            }
        }
    }
}

impl Error for AssemblyError {}

/// Errors raised by runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The runtime was used before `start` or after it stopped.
    NotRunning,
    /// A physical action event was injected with a tag that is not
    /// strictly greater than the last processed tag.
    ///
    /// This is the *observable* safe-to-process (STP) violation of the
    /// paper's §IV.B: when the configured bounds `D + L + E` were too
    /// optimistic, the violation surfaces as an error instead of silently
    /// corrupting the event order.
    StpViolation {
        /// The tag that was requested.
        requested: Tag,
        /// The runtime's current logical tag.
        current: Tag,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NotRunning => write!(f, "runtime is not running"),
            RuntimeError::StpViolation { requested, current } => write!(
                f,
                "safe-to-process violation: requested tag {requested} is not after current tag {current}"
            ),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = AssemblyError::DependencyCycle(vec!["a.r0".into(), "b.r1".into()]);
        assert_eq!(
            e.to_string(),
            "zero-delay dependency cycle through: a.r0 -> b.r1"
        );
        let e = RuntimeError::StpViolation {
            requested: Tag::ORIGIN,
            current: Tag::ORIGIN,
        };
        assert!(e.to_string().contains("safe-to-process violation"));
        assert_eq!(
            RuntimeError::NotRunning.to_string(),
            "runtime is not running"
        );
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AssemblyError>();
        assert_err::<RuntimeError>();
    }
}
