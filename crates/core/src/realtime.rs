//! Real-time driver: runs a [`Runtime`] against the wall clock.
//!
//! The executor waits until the physical clock passes the next tag before
//! processing it ("no events are handled before physical time exceeds
//! their tag", §III.A), and accepts physical-action injections from other
//! threads through cheap clonable [`Injector`] handles — the runtime's
//! door for sporadic sensors and network interrupts.

use crate::clock::{PhysicalClock, RealClock};
use crate::handles::{ActionId, PhysicalAction};
use crate::program::Value;
use crate::runtime::{Runtime, RuntimeStats, StepOutcome};
use dear_time::{Duration, Instant};
use std::sync::mpsc;

enum Command {
    Inject(ActionId, Value),
    Stop,
}

/// Injects values into one physical action of a running executor.
///
/// Clonable and sendable across threads.
pub struct Injector<T> {
    tx: mpsc::Sender<Command>,
    action: ActionId,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T> Clone for Injector<T> {
    fn clone(&self) -> Self {
        Injector {
            tx: self.tx.clone(),
            action: self.action,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Injector({})", self.action)
    }
}

impl<T: Send + Sync + 'static> Injector<T> {
    /// Sends a value; it will be tagged with the physical time at which
    /// the executor drains it. Returns `false` if the executor is gone.
    pub fn inject(&self, value: T) -> bool {
        self.tx
            .send(Command::Inject(self.action, Box::new(value)))
            .is_ok()
    }
}

/// A handle to request an executor stop from another thread.
#[derive(Debug, Clone)]
pub struct StopHandle {
    tx: mpsc::Sender<Command>,
}

impl StopHandle {
    /// Requests a graceful stop. Returns `false` if the executor is gone.
    pub fn stop(&self) -> bool {
        self.tx.send(Command::Stop).is_ok()
    }
}

/// Drives a [`Runtime`] in real time.
///
/// # Examples
///
/// ```
/// use dear_core::{ProgramBuilder, RealTimeExecutor, Startup};
/// use dear_time::Duration;
///
/// let mut b = ProgramBuilder::new();
/// let mut r = b.reactor("ticker", 0u32);
/// let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
/// r.reaction("tick").triggered_by(t).body(|n: &mut u32, ctx| {
///     *n += 1;
///     if *n == 3 {
///         ctx.request_shutdown();
///     }
/// });
/// r.finish();
///
/// let mut exec = RealTimeExecutor::new(b.build()?);
/// let stats = exec.run();
/// assert_eq!(stats.executed_reactions, 3);
/// # Ok::<(), dear_core::AssemblyError>(())
/// ```
pub struct RealTimeExecutor {
    runtime: Runtime,
    clock: RealClock,
    tx: Option<mpsc::Sender<Command>>,
    rx: mpsc::Receiver<Command>,
}

impl std::fmt::Debug for RealTimeExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTimeExecutor")
            .field("runtime", &self.runtime)
            .finish()
    }
}

impl RealTimeExecutor {
    /// Creates an executor for the given program.
    #[must_use]
    pub fn new(program: crate::program::Program) -> Self {
        let (tx, rx) = mpsc::channel();
        RealTimeExecutor {
            runtime: Runtime::new(program),
            clock: RealClock::starting_at(Instant::EPOCH),
            tx: Some(tx),
            rx,
        }
    }

    /// Mutable access to the runtime (e.g. to enable tracing or workers)
    /// before running.
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Creates an injector for a physical action, usable from any thread.
    ///
    /// # Panics
    ///
    /// Panics if called after [`run`](Self::run) has returned.
    #[must_use]
    pub fn injector<T: Send + Sync + 'static>(&self, action: &PhysicalAction<T>) -> Injector<T> {
        Injector {
            tx: self.tx.as_ref().expect("executor already ran").clone(),
            action: action.id(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates a handle that can stop the executor from another thread.
    ///
    /// # Panics
    ///
    /// Panics if called after [`run`](Self::run) has returned.
    #[must_use]
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            tx: self.tx.as_ref().expect("executor already ran").clone(),
        }
    }

    fn drain(&mut self) -> bool {
        let mut stop = false;
        while let Ok(cmd) = self.rx.try_recv() {
            match cmd {
                Command::Inject(action, value) => {
                    let now = self.clock.now();
                    self.runtime.schedule_physical_raw(action, value, now).ok();
                }
                Command::Stop => stop = true,
            }
        }
        stop
    }

    /// Runs to completion: until the runtime shuts down, or until the
    /// event queue is empty and no injector can ever fire again.
    ///
    /// Waiting honours the reactor rule that no event is processed before
    /// physical time reaches its tag.
    pub fn run(&mut self) -> RuntimeStats {
        // Drop our own sender so that `recv` disconnects once every
        // injector and stop handle is gone.
        drop(self.tx.take());
        self.runtime.start(self.clock.now());
        loop {
            if self.drain() {
                let _ = self
                    .runtime
                    .stop_at(self.clock.now() + Duration::from_nanos(1));
            }
            match self.runtime.next_tag() {
                Some(tag) => {
                    let now = self.clock.now();
                    if now < tag.time {
                        // Wait for the tag's time, but wake early for
                        // injections.
                        let wait = tag.time - now;
                        let wait = std::time::Duration::from_nanos(wait.as_nanos() as u64);
                        match self.rx.recv_timeout(wait) {
                            Ok(cmd) => {
                                self.apply(cmd);
                                continue;
                            }
                            Err(mpsc::RecvTimeoutError::Timeout) => {}
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                // No injector can ever fire; plain sleep.
                                std::thread::sleep(wait);
                            }
                        }
                    }
                    match self.runtime.step(self.clock.now()) {
                        StepOutcome::Stopped => break,
                        StepOutcome::Processed(_) | StepOutcome::Idle => {}
                    }
                }
                None => {
                    if !self.runtime.is_running() {
                        break;
                    }
                    // Idle: block until an injection arrives or all
                    // senders are gone.
                    match self.rx.recv() {
                        Ok(cmd) => self.apply(cmd),
                        Err(mpsc::RecvError) => break,
                    }
                }
            }
        }
        self.runtime.stats()
    }

    fn apply(&mut self, cmd: Command) {
        match cmd {
            Command::Inject(action, value) => {
                let now = self.clock.now();
                self.runtime.schedule_physical_raw(action, value, now).ok();
            }
            Command::Stop => {
                let _ = self
                    .runtime
                    .stop_at(self.clock.now() + Duration::from_nanos(1));
            }
        }
    }

    /// Consumes the executor, returning the runtime (e.g. for trace
    /// inspection after `run`).
    #[must_use]
    pub fn into_runtime(self) -> Runtime {
        self.runtime
    }
}
