//! The context handed to reaction bodies.
//!
//! A [`ReactionCtx`] is the only way a reaction interacts with the rest of
//! the program: reading input ports, writing output ports, reading action
//! payloads, scheduling logical actions, and requesting shutdown. All
//! writes and schedules are *buffered* in a [`ReactionOutcome`] and applied
//! by the runtime in deterministic (reaction-id) order after the reaction
//! returns, which is what allows same-level reactions to execute on
//! parallel workers without changing observable behaviour.

use crate::handles::{ActionId, LogicalAction, PhysicalAction, Port, PortId};
use crate::program::{Program, Value};
use crate::tag::Tag;
use dear_arena::TypedArena;
use dear_time::{Duration, Instant};

/// The buffered effects of one reaction execution.
#[derive(Default)]
pub(crate) struct ReactionOutcome {
    /// Port writes `(port, value)` in write order (later wins per port).
    pub writes: Vec<(PortId, Value)>,
    /// Scheduled action events `(action, tag, value)`.
    pub schedules: Vec<(ActionId, Tag, Value)>,
    /// Whether the reaction requested shutdown.
    pub shutdown: bool,
}

/// Read access to an action's payload; implemented by both
/// [`LogicalAction`] and [`PhysicalAction`].
///
/// This trait is sealed.
pub trait ActionSource<T>: sealed::Sealed {
    /// The untyped action id.
    fn action_id(&self) -> ActionId;
}

mod sealed {
    pub trait Sealed {}
    impl<T> Sealed for super::LogicalAction<T> {}
    impl<T> Sealed for super::PhysicalAction<T> {}
}

impl<T> ActionSource<T> for LogicalAction<T> {
    fn action_id(&self) -> ActionId {
        self.id
    }
}
impl<T> ActionSource<T> for PhysicalAction<T> {
    fn action_id(&self) -> ActionId {
        self.id
    }
}

/// Execution context passed to reaction bodies and deadline handlers.
///
/// See the [`ProgramBuilder`](crate::ProgramBuilder) example for typical
/// usage inside a reaction closure.
pub struct ReactionCtx<'a> {
    pub(crate) tag: Tag,
    pub(crate) physical: Instant,
    pub(crate) program: &'a Program,
    pub(crate) reaction: crate::handles::ReactionId,
    pub(crate) ports: &'a TypedArena<PortId, Option<Value>>,
    pub(crate) actions: &'a TypedArena<ActionId, Option<Value>>,
    pub(crate) outcome: ReactionOutcome,
}

impl std::fmt::Debug for ReactionCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactionCtx")
            .field("tag", &self.tag)
            .field("physical", &self.physical)
            .field("reaction", &self.reaction)
            .finish()
    }
}

impl<'a> ReactionCtx<'a> {
    /// The tag currently being processed.
    #[must_use]
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// The logical time of the current tag.
    #[must_use]
    pub fn logical_time(&self) -> Instant {
        self.tag.time
    }

    /// The physical clock reading the runtime observed when it began
    /// processing the current tag.
    #[must_use]
    pub fn physical_time(&self) -> Instant {
        self.physical
    }

    /// How far physical time is ahead of logical time at this tag.
    #[must_use]
    pub fn lag(&self) -> Duration {
        self.tag.lag(self.physical)
    }

    fn meta(&self) -> &crate::program::ReactionMeta {
        &self.program.reactions[self.reaction]
    }

    fn assert_readable(&self, port: PortId, what: &str) {
        assert!(
            self.meta().readable.binary_search(&port).is_ok(),
            "reaction `{}` reads port `{}` without declaring it as a trigger or use ({what})",
            self.meta().name,
            self.program.ports[port].name,
        );
    }

    /// Reads an input or output port. Returns `None` if the port is absent
    /// at the current tag.
    ///
    /// # Panics
    ///
    /// Panics if the port was not declared as a trigger, use or effect of
    /// this reaction — undeclared reads would invalidate the dependency
    /// analysis that determinism rests on.
    #[must_use]
    pub fn get<T: 'static>(&self, port: Port<T>) -> Option<&T> {
        self.assert_readable(port.id, "get");
        let root = self.program.ports[port.id].root;
        // A reaction may read back what it wrote itself this tag.
        if let Some((_, v)) = self.outcome.writes.iter().rev().find(|(p, _)| *p == root) {
            return Some(v.downcast_ref::<T>().expect("port value type mismatch"));
        }
        self.ports[root]
            .as_ref()
            .map(|v| v.downcast_ref::<T>().expect("port value type mismatch"))
    }

    /// Reads and clones a port value.
    #[must_use]
    pub fn get_cloned<T: Clone + 'static>(&self, port: Port<T>) -> Option<T> {
        self.get(port).cloned()
    }

    /// Returns `true` if the port carries a value at the current tag.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ReactionCtx::get`].
    #[must_use]
    pub fn is_present<T: 'static>(&self, port: Port<T>) -> bool {
        self.get(port).is_some()
    }

    /// Writes a value to an output port.
    ///
    /// The value becomes visible to downstream reactions at the current
    /// tag. Writing the same port twice in one reaction keeps the last
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if the port was not declared as an effect of this reaction.
    pub fn set<T: Send + Sync + 'static>(&mut self, port: Port<T>, value: T) {
        assert!(
            self.meta().effects.binary_search(&port.id).is_ok(),
            "reaction `{}` writes port `{}` without declaring it as an effect",
            self.meta().name,
            self.program.ports[port.id].name,
        );
        self.outcome.writes.push((port.id, Box::new(value)));
    }

    /// Reads the payload of an action that triggered at the current tag.
    ///
    /// Returns `None` if the action is not present at this tag.
    #[must_use]
    pub fn get_action<T: 'static>(&self, action: &impl ActionSource<T>) -> Option<&T> {
        self.actions[action.action_id()]
            .as_ref()
            .map(|v| v.downcast_ref::<T>().expect("action value type mismatch"))
    }

    /// Returns `true` if the action is present at the current tag.
    #[must_use]
    pub fn is_action_present<T: 'static>(&self, action: &impl ActionSource<T>) -> bool {
        self.actions[action.action_id()].is_some()
    }

    /// Schedules a logical action with an additional delay on top of the
    /// action's minimum delay.
    ///
    /// The resulting event's tag is `current_tag.delay(min_delay + delay)`:
    /// a total delay of zero advances the microstep, a positive delay
    /// advances logical time. Determinism is preserved because the new tag
    /// is derived from the current tag, not from any clock.
    ///
    /// # Panics
    ///
    /// Panics if the action was not declared via
    /// [`schedules`](crate::ReactionDeclaration::schedules), or if `delay`
    /// is negative.
    pub fn schedule<T: Send + Sync + 'static>(
        &mut self,
        action: LogicalAction<T>,
        delay: Duration,
        value: T,
    ) {
        assert!(!delay.is_negative(), "schedule delay must be non-negative");
        assert!(
            self.meta().schedules.binary_search(&action.id).is_ok(),
            "reaction `{}` schedules action `{}` without declaring it",
            self.meta().name,
            self.program.actions[action.id].name,
        );
        let min_delay = self.program.actions[action.id].min_delay;
        let tag = self.tag.delay(min_delay + delay);
        self.outcome
            .schedules
            .push((action.id, tag, Box::new(value)));
    }

    /// Requests a graceful shutdown: shutdown reactions run at the next
    /// microstep and the runtime stops afterwards.
    pub fn request_shutdown(&mut self) {
        self.outcome.shutdown = true;
    }

    /// The qualified name of the currently executing reaction.
    #[must_use]
    pub fn reaction_name(&self) -> &str {
        &self.meta().name
    }
}
