//! Program assembly: reactors, reactions, ports, actions, timers, and the
//! acyclic precedence graph (APG).
//!
//! A reactor program is declared through [`ProgramBuilder`] and validated
//! by [`ProgramBuilder::build`], which computes the APG described in
//! §III.A of the paper: port connections and intra-reactor reaction
//! priorities induce a dependency graph over reactions; the graph must be
//! acyclic, and its longest-path *levels* drive scheduling. Reactions on
//! the same level are guaranteed independent, which is what lets the
//! runtime "transparently exploit concurrency in the APG by mapping
//! independent reactions to separate worker threads".
//!
//! All program tables are [`TypedArena`]s keyed by the id newtypes from
//! [`crate::handles`], so a `PortId` can never index the reaction table
//! and a handle minted by a *different* builder is caught as a checked
//! [`BuildError`](crate::BuildError) instead of silently aliasing an
//! unrelated element.

use crate::context::ReactionCtx;
use crate::error::AssemblyError;
use crate::handles::{
    ActionId, LogicalAction, PhysicalAction, Port, PortId, PortKind, ReactionId, ReactorId, Timer,
    TimerId, TriggerId, TriggerSource,
};
use dear_arena::TypedArena;
use dear_time::Duration;
use std::any::{Any, TypeId};
use std::collections::{HashSet, VecDeque};
use std::marker::PhantomData;
use std::sync::Mutex;

/// A boxed value travelling through ports and actions.
pub(crate) type Value = Box<dyn Any + Send + Sync>;
/// A type-erased reaction body.
pub(crate) type BodyFn = Box<dyn FnMut(&mut (dyn Any + Send), &mut ReactionCtx<'_>) + Send>;

/// Whether an action is logical or physical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Scheduled by reactions with a logical delay.
    Logical,
    /// Scheduled from outside the runtime, tagged with physical time.
    Physical,
}

pub(crate) struct ReactorMeta {
    pub name: String,
}

pub(crate) struct PortMeta {
    pub name: String,
    #[allow(dead_code)]
    pub reactor: ReactorId,
    #[allow(dead_code)]
    pub kind: PortKind,
    #[allow(dead_code)]
    pub type_id: TypeId,
    /// The port whose value slot this port reads (itself for outputs and
    /// unconnected inputs; the source output for connected inputs).
    pub root: PortId,
    /// Reactions triggered when this (root) port becomes present.
    pub sinks_trigger: Vec<ReactionId>,
}

pub(crate) struct ActionMeta {
    pub name: String,
    #[allow(dead_code)]
    pub reactor: ReactorId,
    pub kind: ActionKind,
    pub min_delay: Duration,
    pub triggered: Vec<ReactionId>,
}

pub(crate) struct TimerMeta {
    #[allow(dead_code)]
    pub name: String,
    #[allow(dead_code)]
    pub reactor: ReactorId,
    pub offset: Duration,
    pub period: Option<Duration>,
    pub triggered: Vec<ReactionId>,
}

pub(crate) struct ReactionMeta {
    pub name: String,
    pub reactor: ReactorId,
    pub level: u32,
    pub body: Mutex<BodyFn>,
    pub deadline: Option<Duration>,
    pub deadline_handler: Option<Mutex<BodyFn>>,
    /// Ports this reaction may read (triggers + uses + effects), sorted.
    pub readable: Vec<PortId>,
    /// Ports this reaction may write, sorted.
    pub effects: Vec<PortId>,
    /// Actions this reaction may schedule, sorted.
    pub schedules: Vec<ActionId>,
}

/// A fully assembled, validated reactor program.
///
/// Produced by [`ProgramBuilder::build`]; consumed by
/// [`Runtime::new`](crate::Runtime::new).
pub struct Program {
    pub(crate) reactors: TypedArena<ReactorId, ReactorMeta>,
    pub(crate) ports: TypedArena<PortId, PortMeta>,
    pub(crate) actions: TypedArena<ActionId, ActionMeta>,
    pub(crate) timers: TypedArena<TimerId, TimerMeta>,
    pub(crate) reactions: TypedArena<ReactionId, ReactionMeta>,
    pub(crate) startup: Vec<ReactionId>,
    pub(crate) shutdown: Vec<ReactionId>,
    /// Initial reactor states, taken by `Runtime::new`. Wrapped in a
    /// `Mutex` solely so that `&Program` is `Sync` for the level-parallel
    /// executor (`Box<dyn Any + Send>` alone is not).
    pub(crate) states: Mutex<TypedArena<ReactorId, Box<dyn Any + Send>>>,
    pub(crate) num_levels: u32,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("reactors", &self.reactors.len())
            .field("ports", &self.ports.len())
            .field("actions", &self.actions.len())
            .field("timers", &self.timers.len())
            .field("reactions", &self.reactions.len())
            .field("num_levels", &self.num_levels)
            .finish()
    }
}

impl Program {
    /// Number of reactors in the program.
    #[must_use]
    pub fn reactor_count(&self) -> usize {
        self.reactors.len()
    }

    /// Number of reactions in the program.
    #[must_use]
    pub fn reaction_count(&self) -> usize {
        self.reactions.len()
    }

    /// Number of APG levels (the critical-path length of the graph).
    #[must_use]
    pub fn level_count(&self) -> u32 {
        self.num_levels
    }

    /// The qualified name of a reaction, e.g. `"Preprocessing.on_frame"`.
    #[must_use]
    pub fn reaction_name(&self, id: ReactionId) -> &str {
        &self.reactions[id].name
    }

    /// The APG level of a reaction.
    #[must_use]
    pub fn reaction_level(&self, id: ReactionId) -> u32 {
        self.reactions[id].level
    }

    /// Looks up a reaction by qualified name, e.g. `"monitor.check"`.
    ///
    /// The derive DSL (`#[derive(Reactor)]`) does not expose the
    /// [`ReactionId`]s returned by the builder's
    /// [`body`](ReactionDeclaration::body); use this to recover one for
    /// APIs that take an id (e.g. simulated cost models).
    #[must_use]
    pub fn find_reaction(&self, name: &str) -> Option<ReactionId> {
        self.reactions
            .iter_enumerated()
            .find(|(_, r)| r.name == name)
            .map(|(id, _)| id)
    }

    /// The program's **periodic lattice**, if it has one: a duration `g`
    /// such that every locally originated event tag is a whole multiple
    /// of `g` at microstep zero.
    ///
    /// Returns `Some(g)` — the gcd of every timer offset and period —
    /// only when the program's sole event sources are timers: any action
    /// (logical actions schedule arbitrary delays and mint microsteps;
    /// physical actions carry injection tags) makes the claim unsound,
    /// so programs with actions return `None`, as do programs with no
    /// timers or with all-zero offsets and no periods (gcd zero).
    ///
    /// A centrally coordinated federate declares this lattice to its
    /// coordinator so the coordinator can leap a stale next-event tag
    /// whole periods ahead on its own instead of waiting for a report.
    #[must_use]
    pub fn periodic_lattice(&self) -> Option<Duration> {
        if !self.actions.is_empty() || self.timers.is_empty() {
            return None;
        }
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut g: u64 = 0;
        for timer in self.timers.iter() {
            g = gcd(
                g,
                u64::try_from(timer.offset.as_nanos().max(0)).unwrap_or(0),
            );
            if let Some(period) = timer.period {
                g = gcd(g, u64::try_from(period.as_nanos().max(0)).unwrap_or(0));
            }
        }
        (g > 0).then(|| Duration::from_nanos(i64::try_from(g).unwrap_or(i64::MAX)))
    }
}

struct ReactionBuild {
    name: String,
    reactor: ReactorId,
    triggers: Vec<TriggerId>,
    uses: Vec<PortId>,
    effects: Vec<PortId>,
    schedules: Vec<ActionId>,
    body: BodyFn,
    deadline: Option<Duration>,
    deadline_handler: Option<BodyFn>,
}

struct PortBuild {
    name: String,
    reactor: ReactorId,
    kind: PortKind,
    type_id: TypeId,
    source: Option<PortId>,
}

/// Builder for a reactor program.
///
/// # Examples
///
/// ```
/// use dear_core::{ProgramBuilder, Runtime, Startup};
///
/// let mut b = ProgramBuilder::new();
/// let mut producer = b.reactor("producer", ());
/// let out = producer.output::<u32>("value");
/// producer
///     .reaction("emit")
///     .triggered_by(Startup)
///     .effects(out)
///     .body(move |_, ctx| ctx.set(out, 17));
/// producer.finish();
///
/// let mut consumer = b.reactor("consumer", Vec::<u32>::new());
/// let inp = consumer.input::<u32>("value");
/// consumer
///     .reaction("collect")
///     .triggered_by(inp)
///     .body(move |seen: &mut Vec<u32>, ctx| {
///         seen.push(*ctx.get(inp).unwrap());
///     });
/// consumer.finish();
///
/// b.connect(out, inp)?;
/// let program = b.build()?;
/// assert_eq!(program.reaction_count(), 2);
/// # Ok::<(), dear_core::AssemblyError>(())
/// ```
///
/// The closure-scoped form avoids juggling the reactor borrow entirely:
///
/// ```
/// use dear_core::{ProgramBuilder, Startup};
///
/// let mut b = ProgramBuilder::new();
/// let out = b.with_reactor("producer", (), |r| {
///     let out = r.output::<u32>("value");
///     r.reaction("emit")
///         .triggered_by(Startup)
///         .effects(out)
///         .body(move |_, ctx| ctx.set(out, 17));
///     out
/// });
/// # let _ = out;
/// # let _ = b.build().unwrap();
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    reactors: TypedArena<ReactorId, ReactorMeta>,
    states: TypedArena<ReactorId, Box<dyn Any + Send>>,
    ports: TypedArena<PortId, PortBuild>,
    actions: TypedArena<ActionId, ActionMeta>,
    timers: TypedArena<TimerId, TimerMeta>,
    reactions: TypedArena<ReactionId, ReactionBuild>,
}

impl std::fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("reactors", &self.reactors.len())
            .field("ports", &self.ports.len())
            .field("reactions", &self.reactions.len())
            .finish()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a reactor with the given name and initial state.
    ///
    /// The returned [`ReactorBuilder`] borrows this builder; declare the
    /// reactor's ports, actions, timers and reactions through it, then
    /// call [`finish`](ReactorBuilder::finish) (or let it go out of scope)
    /// before declaring the next reactor.
    pub fn reactor<S: Send + 'static>(&mut self, name: &str, state: S) -> ReactorBuilder<'_, S> {
        let id = self.reactors.push(ReactorMeta { name: name.into() });
        self.states.push(Box::new(state));
        ReactorBuilder {
            builder: self,
            id,
            _marker: PhantomData,
        }
    }

    /// Declares a reactor and populates it inside a closure.
    ///
    /// Equivalent to [`reactor`](ProgramBuilder::reactor) followed by
    /// [`finish`](ReactorBuilder::finish), but the reactor borrow ends with
    /// the closure, so the builder is immediately usable again — no scoping
    /// gymnastics. Returns whatever the closure returns (typically the
    /// port/action handles needed for wiring).
    pub fn with_reactor<S: Send + 'static, R>(
        &mut self,
        name: &str,
        state: S,
        f: impl FnOnce(&mut ReactorBuilder<'_, S>) -> R,
    ) -> R {
        let mut r = self.reactor(name, state);
        f(&mut r)
    }

    /// Connects an output port to an input port of the same value type.
    ///
    /// Fan-out (one output to many inputs) is allowed; fan-in (an input
    /// with several sources) is rejected.
    ///
    /// # Errors
    ///
    /// Returns an [`AssemblyError`] if either handle was not minted by this
    /// builder, the source is not an output, the target is not an input,
    /// the target already has a source, or the ports are identical.
    pub fn connect<T: 'static>(&mut self, from: Port<T>, to: Port<T>) -> Result<(), AssemblyError> {
        let Some(from_port) = self.ports.get(from.id) else {
            return Err(AssemblyError::UnknownPort { port: from.id });
        };
        if self.ports.get(to.id).is_none() {
            return Err(AssemblyError::UnknownPort { port: to.id });
        }
        if from.id == to.id {
            return Err(AssemblyError::SelfLoop {
                port: from.id,
                name: from_port.name.clone(),
            });
        }
        if from_port.kind != PortKind::Output {
            return Err(AssemblyError::SourceNotOutput {
                port: from.id,
                name: from_port.name.clone(),
            });
        }
        if self.ports[to.id].kind != PortKind::Input {
            return Err(AssemblyError::TargetNotInput {
                port: to.id,
                name: self.ports[to.id].name.clone(),
            });
        }
        if self.ports[to.id].source.is_some() {
            return Err(AssemblyError::MultipleSources {
                port: to.id,
                name: self.ports[to.id].name.clone(),
            });
        }
        self.ports[to.id].source = Some(from.id);
        Ok(())
    }

    /// Connects an output port to an input port through a logical delay.
    ///
    /// Values written to `from` appear on `to` at `tag.delay(delay)` — a
    /// strictly later tag. Because the value travels through a logical
    /// action, a delayed connection contributes **no** dependency edge to
    /// the precedence graph: it is the standard reactor idiom for
    /// breaking feedback loops.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProgramBuilder::connect`].
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn connect_delayed<T: Clone + Send + Sync + 'static>(
        &mut self,
        from: Port<T>,
        to: Port<T>,
        delay: Duration,
    ) -> Result<(), AssemblyError> {
        assert!(
            !delay.is_negative(),
            "connection delay must be non-negative"
        );
        let name = format!("__delay_{}_{}", from.id, to.id);
        let mut r = self.reactor(&name, ());
        let din = r.input::<T>("in");
        let dout = r.output::<T>("out");
        let act = r.logical_action::<T>("value", delay);
        // `release` is declared *before* `capture` so the intra-reactor
        // priority edge points release -> capture; the reverse order would
        // close a zero-delay cycle when the connection is used as a
        // feedback path.
        r.reaction("release").triggered_by(act).effects(dout).body(
            move |_, ctx: &mut ReactionCtx<'_>| {
                let v = ctx.get_action(&act).cloned().expect("action present");
                ctx.set(dout, v);
            },
        );
        r.reaction("capture").triggered_by(din).schedules(act).body(
            move |_, ctx: &mut ReactionCtx<'_>| {
                let v = ctx.get(din).cloned().expect("triggering port present");
                ctx.schedule(act, Duration::ZERO, v);
            },
        );
        r.finish();
        self.connect(from, din)?;
        self.connect(dout, to)
    }

    /// Checks that every handle captured by the declared reactions was
    /// minted by this builder, and that no two reactors / same-kind
    /// elements share a (qualified) name.
    fn validate_names_and_handles(&self) -> Result<(), AssemblyError> {
        let mut reactor_names: HashSet<&str> = HashSet::with_capacity(self.reactors.len());
        for r in &self.reactors {
            if !reactor_names.insert(r.name.as_str()) {
                return Err(AssemblyError::DuplicateReactor {
                    name: r.name.clone(),
                });
            }
        }
        let categories: [(&'static str, Box<dyn Iterator<Item = &str> + '_>); 4] = [
            ("port", Box::new(self.ports.iter().map(|p| p.name.as_str()))),
            (
                "action",
                Box::new(self.actions.iter().map(|a| a.name.as_str())),
            ),
            (
                "timer",
                Box::new(self.timers.iter().map(|t| t.name.as_str())),
            ),
            (
                "reaction",
                Box::new(self.reactions.iter().map(|r| r.name.as_str())),
            ),
        ];
        for (kind, names) in categories {
            let mut seen: HashSet<&str> = HashSet::new();
            for name in names {
                if !seen.insert(name) {
                    return Err(AssemblyError::DuplicateElement {
                        kind,
                        name: name.to_string(),
                    });
                }
            }
        }
        for r in &self.reactions {
            let unknown = |handle: String| AssemblyError::UnknownHandle {
                reaction: r.name.clone(),
                handle,
            };
            for t in &r.triggers {
                match t {
                    TriggerId::Port(p) if !self.ports.contains_key(*p) => {
                        return Err(unknown(p.to_string()));
                    }
                    TriggerId::Action(a) if !self.actions.contains_key(*a) => {
                        return Err(unknown(a.to_string()));
                    }
                    TriggerId::Timer(t) if !self.timers.contains_key(*t) => {
                        return Err(unknown(t.to_string()));
                    }
                    _ => {}
                }
            }
            for p in r.uses.iter().chain(&r.effects) {
                if !self.ports.contains_key(*p) {
                    return Err(unknown(p.to_string()));
                }
            }
            for a in &r.schedules {
                if !self.actions.contains_key(*a) {
                    return Err(unknown(a.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Validates the program and computes the APG levels.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`](crate::BuildError) if the reaction graph
    /// has a zero-delay cycle ([`AssemblyError::DependencyCycle`]), two
    /// reactors or same-kind elements share a name, or a reaction captured
    /// a handle from a different builder.
    pub fn build(self) -> Result<Program, AssemblyError> {
        self.validate_names_and_handles()?;
        let n = self.reactions.len();

        // Resolve port roots (one hop: inputs read their source output).
        let roots: TypedArena<PortId, PortId> =
            TypedArena::from_fn(self.ports.len(), |k| self.ports[k].source.unwrap_or(k));

        // Readers of each root port, split into triggered vs. all readers.
        let mut sinks_trigger: TypedArena<PortId, Vec<ReactionId>> =
            TypedArena::from_fn(self.ports.len(), |_| Vec::new());
        let mut sinks_all: TypedArena<PortId, Vec<ReactionId>> =
            TypedArena::from_fn(self.ports.len(), |_| Vec::new());
        for (rid, r) in self.reactions.iter_enumerated() {
            for t in &r.triggers {
                if let TriggerId::Port(p) = t {
                    let root = roots[*p];
                    sinks_trigger[root].push(rid);
                    sinks_all[root].push(rid);
                }
            }
            for p in &r.uses {
                sinks_all[roots[*p]].push(rid);
            }
        }
        for v in sinks_trigger.iter_mut().chain(sinks_all.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }

        // Dependency edges: writer -> reader through ports, plus the
        // intra-reactor priority chain (declaration order).
        let mut succs: TypedArena<ReactionId, Vec<ReactionId>> =
            TypedArena::from_fn(n, |_| Vec::new());
        let mut indegree: TypedArena<ReactionId, usize> = TypedArena::from_fn(n, |_| 0);
        let add_edge = |succs: &mut TypedArena<ReactionId, Vec<ReactionId>>,
                        indegree: &mut TypedArena<ReactionId, usize>,
                        a: ReactionId,
                        b: ReactionId| {
            succs[a].push(b);
            indegree[b] += 1;
        };
        for (rid, r) in self.reactions.iter_enumerated() {
            for p in &r.effects {
                let root = roots[*p];
                debug_assert_eq!(root, *p, "effects are outputs, thus their own root");
                for reader in &sinks_all[root] {
                    // A self-edge (a reaction triggered by a port its own
                    // effect feeds) is a genuine zero-delay cycle and is
                    // reported as such by Kahn's algorithm.
                    add_edge(&mut succs, &mut indegree, rid, *reader);
                }
            }
        }
        // Priority chain per reactor.
        let mut last_of_reactor: TypedArena<ReactorId, Option<ReactionId>> =
            TypedArena::from_fn(self.reactors.len(), |_| None);
        for (rid, r) in self.reactions.iter_enumerated() {
            if let Some(prev) = last_of_reactor[r.reactor] {
                add_edge(&mut succs, &mut indegree, prev, rid);
            }
            last_of_reactor[r.reactor] = Some(rid);
        }

        // Kahn's algorithm computing longest-path levels.
        let mut level: TypedArena<ReactionId, u32> = TypedArena::from_fn(n, |_| 0);
        let mut queue: VecDeque<ReactionId> = indegree
            .iter_enumerated()
            .filter(|(_, &d)| d == 0)
            .map(|(k, _)| k)
            .collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop_front() {
            visited += 1;
            for &s in &succs[i] {
                level[s] = level[s].max(level[i] + 1);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if visited != n {
            let cycle: Vec<String> = indegree
                .iter_enumerated()
                .filter(|(_, &d)| d > 0)
                .map(|(k, _)| self.reactions[k].name.clone())
                .collect();
            return Err(AssemblyError::DependencyCycle(cycle));
        }
        let num_levels = level.iter().max().map_or(0, |&m| m + 1);

        // Trigger lists for actions, timers, startup and shutdown.
        let mut actions = self.actions;
        let mut timers = self.timers;
        let mut startup = Vec::new();
        let mut shutdown = Vec::new();
        for (rid, r) in self.reactions.iter_enumerated() {
            for t in &r.triggers {
                match t {
                    TriggerId::Startup => startup.push(rid),
                    TriggerId::Shutdown => shutdown.push(rid),
                    TriggerId::Action(a) => actions[*a].triggered.push(rid),
                    TriggerId::Timer(t) => timers[*t].triggered.push(rid),
                    TriggerId::Port(_) => {}
                }
            }
        }
        for list in actions
            .iter_mut()
            .map(|a| &mut a.triggered)
            .chain(timers.iter_mut().map(|t| &mut t.triggered))
        {
            list.sort_unstable();
            list.dedup();
        }
        startup.sort_unstable();
        shutdown.sort_unstable();

        let ports: TypedArena<PortId, PortMeta> = self.ports.map_enumerated(|id, p| PortMeta {
            name: p.name,
            reactor: p.reactor,
            kind: p.kind,
            type_id: p.type_id,
            root: roots[id],
            sinks_trigger: std::mem::take(&mut sinks_trigger[id]),
        });

        let reactions: TypedArena<ReactionId, ReactionMeta> =
            self.reactions.map_enumerated(|id, r| {
                let mut readable: Vec<PortId> = r
                    .triggers
                    .iter()
                    .filter_map(|t| match t {
                        TriggerId::Port(p) => Some(*p),
                        _ => None,
                    })
                    .chain(r.uses.iter().copied())
                    .chain(r.effects.iter().copied())
                    .collect();
                readable.sort_unstable();
                readable.dedup();
                let mut effects = r.effects;
                effects.sort_unstable();
                effects.dedup();
                let mut schedules = r.schedules;
                schedules.sort_unstable();
                schedules.dedup();
                ReactionMeta {
                    name: r.name,
                    reactor: r.reactor,
                    level: level[id],
                    body: Mutex::new(r.body),
                    deadline: r.deadline,
                    deadline_handler: r.deadline_handler.map(Mutex::new),
                    readable,
                    effects,
                    schedules,
                }
            });

        Ok(Program {
            reactors: self.reactors,
            ports,
            actions,
            timers,
            reactions,
            startup,
            shutdown,
            states: Mutex::new(self.states),
            num_levels,
        })
    }
}

/// Builder scope for one reactor's ports, actions, timers and reactions.
///
/// Created by [`ProgramBuilder::reactor`]; see that method's example.
pub struct ReactorBuilder<'b, S> {
    builder: &'b mut ProgramBuilder,
    id: ReactorId,
    _marker: PhantomData<fn(S) -> S>,
}

impl<S> std::fmt::Debug for ReactorBuilder<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactorBuilder({})", self.id)
    }
}

impl<'b, S: Send + 'static> ReactorBuilder<'b, S> {
    /// The id of the reactor being built.
    #[must_use]
    pub fn id(&self) -> ReactorId {
        self.id
    }

    /// Ends this reactor's declaration, releasing the borrow on the
    /// [`ProgramBuilder`].
    ///
    /// Purely a readability device: the builder has no pending work, so
    /// letting it fall out of scope is equivalent — but `finish()` says so
    /// explicitly and avoids the `drop(reactor)` idiom that looks like a
    /// destructor side effect.
    pub fn finish(self) {}

    fn add_port<T: Send + Sync + 'static>(&mut self, name: &str, kind: PortKind) -> Port<T> {
        let reactor_name = &self.builder.reactors[self.id].name;
        let qualified = format!("{reactor_name}.{name}");
        let id = self.builder.ports.push(PortBuild {
            name: qualified,
            reactor: self.id,
            kind,
            type_id: TypeId::of::<T>(),
            source: None,
        });
        Port {
            id,
            _marker: PhantomData,
        }
    }

    /// Declares an input port carrying values of type `T`.
    pub fn input<T: Send + Sync + 'static>(&mut self, name: &str) -> Port<T> {
        self.add_port(name, PortKind::Input)
    }

    /// Declares an output port carrying values of type `T`.
    pub fn output<T: Send + Sync + 'static>(&mut self, name: &str) -> Port<T> {
        self.add_port(name, PortKind::Output)
    }

    fn add_action(&mut self, name: &str, kind: ActionKind, min_delay: Duration) -> ActionId {
        assert!(
            !min_delay.is_negative(),
            "action min_delay must be non-negative"
        );
        let reactor_name = &self.builder.reactors[self.id].name;
        let qualified = format!("{reactor_name}.{name}");
        self.builder.actions.push(ActionMeta {
            name: qualified,
            reactor: self.id,
            kind,
            min_delay,
            triggered: Vec::new(),
        })
    }

    /// Declares a logical action with the given minimum logical delay.
    pub fn logical_action<T: Send + Sync + 'static>(
        &mut self,
        name: &str,
        min_delay: Duration,
    ) -> LogicalAction<T> {
        LogicalAction {
            id: self.add_action(name, ActionKind::Logical, min_delay),
            _marker: PhantomData,
        }
    }

    /// Declares a physical action with the given minimum delay.
    ///
    /// Physical actions are scheduled from outside the runtime via
    /// [`Runtime::schedule_physical`](crate::Runtime::schedule_physical) or
    /// [`Runtime::schedule_physical_at`](crate::Runtime::schedule_physical_at).
    pub fn physical_action<T: Send + Sync + 'static>(
        &mut self,
        name: &str,
        min_delay: Duration,
    ) -> PhysicalAction<T> {
        PhysicalAction {
            id: self.add_action(name, ActionKind::Physical, min_delay),
            _marker: PhantomData,
        }
    }

    /// Declares a timer firing first at `offset` after startup and then
    /// every `period` (or only once if `period` is `None`).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is negative or `period` is non-positive.
    pub fn timer(&mut self, name: &str, offset: Duration, period: Option<Duration>) -> Timer {
        assert!(!offset.is_negative(), "timer offset must be non-negative");
        if let Some(p) = period {
            assert!(p > Duration::ZERO, "timer period must be positive");
        }
        let reactor_name = &self.builder.reactors[self.id].name;
        let qualified = format!("{reactor_name}.{name}");
        let id = self.builder.timers.push(TimerMeta {
            name: qualified,
            reactor: self.id,
            offset,
            period,
            triggered: Vec::new(),
        });
        Timer { id }
    }

    /// Begins the declaration of a reaction.
    ///
    /// Reactions of the same reactor are totally ordered by declaration
    /// order (their *priority*), which the APG honours.
    pub fn reaction(&mut self, name: &str) -> ReactionDeclaration<'_, S> {
        let reactor_name = &self.builder.reactors[self.id].name;
        let name = format!("{reactor_name}.{name}");
        ReactionDeclaration {
            builder: self.builder,
            reactor: self.id,
            name,
            triggers: Vec::new(),
            uses: Vec::new(),
            effects: Vec::new(),
            schedules: Vec::new(),
            deadline: None,
            deadline_handler: None,
            _marker: PhantomData,
        }
    }
}

/// Fluent declaration of a single reaction; finished by [`body`].
///
/// [`body`]: ReactionDeclaration::body
pub struct ReactionDeclaration<'r, S> {
    builder: &'r mut ProgramBuilder,
    reactor: ReactorId,
    name: String,
    triggers: Vec<TriggerId>,
    uses: Vec<PortId>,
    effects: Vec<PortId>,
    schedules: Vec<ActionId>,
    deadline: Option<Duration>,
    deadline_handler: Option<BodyFn>,
    _marker: PhantomData<fn(S) -> S>,
}

impl<S> std::fmt::Debug for ReactionDeclaration<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactionDeclaration({})", self.name)
    }
}

fn wrap_body<S: Send + 'static>(
    name: String,
    mut f: impl FnMut(&mut S, &mut ReactionCtx<'_>) + Send + 'static,
) -> BodyFn {
    Box::new(move |state, ctx| {
        let state = state
            .downcast_mut::<S>()
            .unwrap_or_else(|| panic!("state type mismatch in reaction `{name}`"));
        f(state, ctx);
    })
}

impl<'r, S: Send + 'static> ReactionDeclaration<'r, S> {
    /// Adds a trigger: the reaction runs whenever the trigger is present.
    #[must_use]
    pub fn triggered_by(mut self, source: impl TriggerSource) -> Self {
        self.triggers.push(source.trigger_id());
        self
    }

    /// Declares a port the reaction reads without being triggered by it.
    #[must_use]
    pub fn uses<T>(mut self, port: Port<T>) -> Self {
        self.uses.push(port.id);
        self
    }

    /// Declares an output port the reaction may write.
    #[must_use]
    pub fn effects<T>(mut self, port: Port<T>) -> Self {
        self.effects.push(port.id);
        self
    }

    /// Declares a logical action the reaction may schedule.
    #[must_use]
    pub fn schedules<T>(mut self, action: LogicalAction<T>) -> Self {
        self.schedules.push(action.id);
        self
    }

    /// Attaches a deadline: if the reaction is *launched* more than
    /// `deadline` after its tag's time point (measured on the physical
    /// clock), `handler` runs instead of the body (§III.A: "a deadline D is
    /// considered violated when an event with tag t triggers a reaction
    /// associated with D after physical time T has exceeded t + D").
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is negative.
    #[must_use]
    pub fn with_deadline(
        mut self,
        deadline: Duration,
        handler: impl FnMut(&mut S, &mut ReactionCtx<'_>) + Send + 'static,
    ) -> Self {
        assert!(!deadline.is_negative(), "deadline must be non-negative");
        self.deadline = Some(deadline);
        self.deadline_handler = Some(wrap_body(format!("{}(deadline)", self.name), handler));
        self
    }

    /// Finishes the declaration with the reaction body and registers it.
    pub fn body(self, f: impl FnMut(&mut S, &mut ReactionCtx<'_>) + Send + 'static) -> ReactionId {
        let body = wrap_body(self.name.clone(), f);
        self.builder.reactions.push(ReactionBuild {
            name: self.name,
            reactor: self.reactor,
            triggers: self.triggers,
            uses: self.uses,
            effects: self.effects,
            schedules: self.schedules,
            body,
            deadline: self.deadline,
            deadline_handler: self.deadline_handler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handles::Startup;

    #[test]
    fn levels_follow_connections_and_priorities() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        let r0 = a
            .reaction("produce")
            .triggered_by(Startup)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, 1));
        // Same reactor, later declaration: must be at a higher level.
        let r1 = a.reaction("after").triggered_by(Startup).body(|_, _| {});
        a.finish();

        let mut c = b.reactor("c", ());
        let inp = c.input::<u32>("in");
        let r2 = c.reaction("consume").triggered_by(inp).body(|_, _| {});
        c.finish();
        b.connect(out, inp).unwrap();

        let p = b.build().unwrap();
        assert_eq!(p.reaction_level(r0), 0);
        assert_eq!(p.reaction_level(r1), 1);
        assert_eq!(p.reaction_level(r2), 1);
        assert_eq!(p.level_count(), 2);
        assert_eq!(p.reaction_name(r0), "a.produce");
        assert_eq!(p.find_reaction("a.produce"), Some(r0));
        assert_eq!(p.find_reaction("c.consume"), Some(r2));
        assert_eq!(p.find_reaction("nope"), None);
    }

    #[test]
    fn uses_creates_dependency_without_trigger() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        a.reaction("produce")
            .triggered_by(Startup)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, 1));
        a.finish();
        let mut c = b.reactor("c", ());
        let inp = c.input::<u32>("in");
        let t = c.timer("t", dear_time::Duration::ZERO, None);
        let r = c.reaction("peek").triggered_by(t).uses(inp).body(|_, _| {});
        c.finish();
        b.connect(out, inp).unwrap();
        let p = b.build().unwrap();
        // The user of the port is levelled after the writer even though it
        // is not triggered by it.
        assert_eq!(p.reaction_level(r), 1);
    }

    #[test]
    fn cycle_is_rejected_with_names() {
        let mut b = ProgramBuilder::new();
        let mut x = b.reactor("x", ());
        let xo = x.output::<u32>("o");
        let xi = x.input::<u32>("i");
        x.reaction("fwd")
            .triggered_by(xi)
            .effects(xo)
            .body(|_, _| {});
        x.finish();
        let mut y = b.reactor("y", ());
        let yo = y.output::<u32>("o");
        let yi = y.input::<u32>("i");
        y.reaction("fwd")
            .triggered_by(yi)
            .effects(yo)
            .body(|_, _| {});
        y.finish();
        b.connect(xo, yi).unwrap();
        b.connect(yo, xi).unwrap();
        match b.build() {
            Err(AssemblyError::DependencyCycle(names)) => {
                assert!(names.contains(&"x.fwd".to_string()));
                assert!(names.contains(&"y.fwd".to_string()));
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn connect_rejects_bad_endpoints() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        let out2 = a.output::<u32>("out2");
        let inp = a.input::<u32>("in");
        a.finish();
        let mut c = b.reactor("c", ());
        let cin = c.input::<u32>("in");
        c.finish();

        assert!(matches!(
            b.connect(inp, cin),
            Err(AssemblyError::SourceNotOutput { .. })
        ));
        assert!(matches!(
            b.connect(out, out2),
            Err(AssemblyError::TargetNotInput { .. })
        ));
        b.connect(out, cin).unwrap();
        assert!(matches!(
            b.connect(out2, cin),
            Err(AssemblyError::MultipleSources { .. })
        ));
        assert!(matches!(
            b.connect(out, out),
            Err(AssemblyError::SelfLoop { .. })
        ));
    }

    #[test]
    fn connect_rejects_foreign_handles() {
        // Mint handles in one builder, try to use them in another. Padding
        // ports push the foreign ids out of range for `b`, which is what
        // the checked lookup detects (ids that happen to collide are
        // indistinguishable by construction).
        let mut other = ProgramBuilder::new();
        let mut f = other.reactor("foreign", ());
        let _ = f.output::<u32>("pad0");
        let _ = f.output::<u32>("pad1");
        let f_out = f.output::<u32>("out");
        let f_in = f.input::<u32>("in");
        f.finish();

        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        a.finish();
        assert!(matches!(
            b.connect(out, f_in),
            Err(AssemblyError::UnknownPort { .. })
        ));
        assert!(matches!(
            b.connect(f_out, out),
            Err(AssemblyError::UnknownPort { .. })
        ));
    }

    #[test]
    fn build_rejects_foreign_reaction_handles() {
        let mut other = ProgramBuilder::new();
        let mut f = other.reactor("foreign", ());
        // Push extra ports so the foreign id is out of range for `b`.
        let _ = f.output::<u32>("p0");
        let f_out = f.output::<u32>("p1");
        f.finish();

        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        a.reaction("bad")
            .triggered_by(f_out)
            .body(|_: &mut (), _| {});
        a.finish();
        match b.build() {
            Err(AssemblyError::UnknownHandle { reaction, handle }) => {
                assert_eq!(reaction, "a.bad");
                assert_eq!(handle, "port1");
            }
            other => panic!("expected unknown-handle error, got {other:?}"),
        }
    }

    #[test]
    fn build_rejects_duplicate_names() {
        let mut b = ProgramBuilder::new();
        b.reactor("a", ()).finish();
        b.reactor("a", ()).finish();
        assert!(matches!(
            b.build(),
            Err(AssemblyError::DuplicateReactor { .. })
        ));

        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let _ = a.output::<u32>("out");
        let _ = a.output::<u32>("out");
        a.finish();
        match b.build() {
            Err(AssemblyError::DuplicateElement { kind, name }) => {
                assert_eq!(kind, "port");
                assert_eq!(name, "a.out");
            }
            other => panic!("expected duplicate-element error, got {other:?}"),
        }
    }

    #[test]
    fn with_reactor_scopes_the_borrow() {
        let mut b = ProgramBuilder::new();
        let out = b.with_reactor("producer", (), |r| {
            let out = r.output::<u32>("value");
            r.reaction("emit")
                .triggered_by(Startup)
                .effects(out)
                .body(move |_, ctx| ctx.set(out, 1));
            out
        });
        let inp = b.with_reactor("consumer", (), |r| {
            let inp = r.input::<u32>("value");
            r.reaction("collect").triggered_by(inp).body(|_, _| {});
            inp
        });
        b.connect(out, inp).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.reactor_count(), 2);
        assert_eq!(p.reaction_count(), 2);
    }

    #[test]
    fn fan_out_is_allowed() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        a.reaction("produce")
            .triggered_by(Startup)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, 1));
        a.finish();
        let mut ids = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..3 {
            let mut c = b.reactor(&format!("c{i}"), ());
            let inp = c.input::<u32>("in");
            ids.push(c.reaction("consume").triggered_by(inp).body(|_, _| {}));
            inputs.push(inp);
            c.finish();
        }
        for inp in &inputs {
            b.connect(out, *inp).unwrap();
        }
        let p = b.build().unwrap();
        for id in ids {
            assert_eq!(p.reaction_level(id), 1);
        }
    }

    #[test]
    fn diamond_levels() {
        // src -> (left, right) -> join
        let mut b = ProgramBuilder::new();
        let mut s = b.reactor("src", ());
        let so = s.output::<u32>("o");
        s.reaction("emit")
            .triggered_by(Startup)
            .effects(so)
            .body(move |_, ctx| ctx.set(so, 0));
        s.finish();

        let mut mk_stage = |name: &str| {
            let mut r = b.reactor(name, ());
            let i = r.input::<u32>("i");
            let o = r.output::<u32>("o");
            let id = r
                .reaction("fwd")
                .triggered_by(i)
                .effects(o)
                .body(move |_, ctx| {
                    let v = *ctx.get(i).unwrap();
                    ctx.set(o, v + 1)
                });
            r.finish();
            (i, o, id)
        };
        let (li, lo, lid) = mk_stage("left");
        let (ri, ro, rid) = mk_stage("right");

        let mut j = b.reactor("join", ());
        let ja = j.input::<u32>("a");
        let jb = j.input::<u32>("b");
        let jid = j
            .reaction("join")
            .triggered_by(ja)
            .triggered_by(jb)
            .body(|_, _| {});
        j.finish();

        b.connect(so, li).unwrap();
        b.connect(so, ri).unwrap();
        b.connect(lo, ja).unwrap();
        b.connect(ro, jb).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.reaction_level(lid), 1);
        assert_eq!(p.reaction_level(rid), 1);
        assert_eq!(p.reaction_level(jid), 2);
        assert_eq!(p.level_count(), 3);
    }

    #[test]
    #[should_panic(expected = "timer period must be positive")]
    fn zero_period_timer_panics() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        a.timer("t", Duration::ZERO, Some(Duration::ZERO));
    }
}
