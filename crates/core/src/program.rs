//! Program assembly: reactors, reactions, ports, actions, timers, and the
//! acyclic precedence graph (APG).
//!
//! A reactor program is declared through [`ProgramBuilder`] and validated
//! by [`ProgramBuilder::build`], which computes the APG described in
//! §III.A of the paper: port connections and intra-reactor reaction
//! priorities induce a dependency graph over reactions; the graph must be
//! acyclic, and its longest-path *levels* drive scheduling. Reactions on
//! the same level are guaranteed independent, which is what lets the
//! runtime "transparently exploit concurrency in the APG by mapping
//! independent reactions to separate worker threads".

use crate::context::ReactionCtx;
use crate::error::AssemblyError;
use crate::handles::{
    ActionId, LogicalAction, PhysicalAction, Port, PortId, PortKind, ReactionId, ReactorId, Timer,
    TimerId, TriggerId, TriggerSource,
};
use dear_time::Duration;
use std::any::{Any, TypeId};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Mutex;

/// A boxed value travelling through ports and actions.
pub(crate) type Value = Box<dyn Any + Send + Sync>;
/// A type-erased reaction body.
pub(crate) type BodyFn = Box<dyn FnMut(&mut (dyn Any + Send), &mut ReactionCtx<'_>) + Send>;

/// Whether an action is logical or physical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Scheduled by reactions with a logical delay.
    Logical,
    /// Scheduled from outside the runtime, tagged with physical time.
    Physical,
}

pub(crate) struct ReactorMeta {
    pub name: String,
}

pub(crate) struct PortMeta {
    pub name: String,
    #[allow(dead_code)]
    pub reactor: ReactorId,
    #[allow(dead_code)]
    pub kind: PortKind,
    #[allow(dead_code)]
    pub type_id: TypeId,
    /// The port whose value slot this port reads (itself for outputs and
    /// unconnected inputs; the source output for connected inputs).
    pub root: PortId,
    /// Reactions triggered when this (root) port becomes present.
    pub sinks_trigger: Vec<ReactionId>,
}

pub(crate) struct ActionMeta {
    pub name: String,
    #[allow(dead_code)]
    pub reactor: ReactorId,
    pub kind: ActionKind,
    pub min_delay: Duration,
    pub triggered: Vec<ReactionId>,
}

pub(crate) struct TimerMeta {
    #[allow(dead_code)]
    pub name: String,
    #[allow(dead_code)]
    pub reactor: ReactorId,
    pub offset: Duration,
    pub period: Option<Duration>,
    pub triggered: Vec<ReactionId>,
}

pub(crate) struct ReactionMeta {
    pub name: String,
    pub reactor: ReactorId,
    pub level: u32,
    pub body: Mutex<BodyFn>,
    pub deadline: Option<Duration>,
    pub deadline_handler: Option<Mutex<BodyFn>>,
    /// Ports this reaction may read (triggers + uses + effects), sorted.
    pub readable: Vec<PortId>,
    /// Ports this reaction may write, sorted.
    pub effects: Vec<PortId>,
    /// Actions this reaction may schedule, sorted.
    pub schedules: Vec<ActionId>,
}

/// A fully assembled, validated reactor program.
///
/// Produced by [`ProgramBuilder::build`]; consumed by
/// [`Runtime::new`](crate::Runtime::new).
pub struct Program {
    pub(crate) reactors: Vec<ReactorMeta>,
    pub(crate) ports: Vec<PortMeta>,
    pub(crate) actions: Vec<ActionMeta>,
    pub(crate) timers: Vec<TimerMeta>,
    pub(crate) reactions: Vec<ReactionMeta>,
    pub(crate) startup: Vec<ReactionId>,
    pub(crate) shutdown: Vec<ReactionId>,
    /// Initial reactor states, taken by `Runtime::new`. Wrapped in a
    /// `Mutex` solely so that `&Program` is `Sync` for the level-parallel
    /// executor (`Box<dyn Any + Send>` alone is not).
    pub(crate) states: Mutex<Vec<Box<dyn Any + Send>>>,
    pub(crate) num_levels: u32,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("reactors", &self.reactors.len())
            .field("ports", &self.ports.len())
            .field("actions", &self.actions.len())
            .field("timers", &self.timers.len())
            .field("reactions", &self.reactions.len())
            .field("num_levels", &self.num_levels)
            .finish()
    }
}

impl Program {
    /// Number of reactors in the program.
    #[must_use]
    pub fn reactor_count(&self) -> usize {
        self.reactors.len()
    }

    /// Number of reactions in the program.
    #[must_use]
    pub fn reaction_count(&self) -> usize {
        self.reactions.len()
    }

    /// Number of APG levels (the critical-path length of the graph).
    #[must_use]
    pub fn level_count(&self) -> u32 {
        self.num_levels
    }

    /// The qualified name of a reaction, e.g. `"Preprocessing.on_frame"`.
    #[must_use]
    pub fn reaction_name(&self, id: ReactionId) -> &str {
        &self.reactions[id.index()].name
    }

    /// The APG level of a reaction.
    #[must_use]
    pub fn reaction_level(&self, id: ReactionId) -> u32 {
        self.reactions[id.index()].level
    }
}

struct ReactionBuild {
    name: String,
    reactor: ReactorId,
    triggers: Vec<TriggerId>,
    uses: Vec<PortId>,
    effects: Vec<PortId>,
    schedules: Vec<ActionId>,
    body: BodyFn,
    deadline: Option<Duration>,
    deadline_handler: Option<BodyFn>,
}

struct PortBuild {
    name: String,
    reactor: ReactorId,
    kind: PortKind,
    type_id: TypeId,
    source: Option<PortId>,
}

/// Builder for a reactor program.
///
/// # Examples
///
/// ```
/// use dear_core::{ProgramBuilder, Runtime, Startup};
///
/// let mut b = ProgramBuilder::new();
/// let mut producer = b.reactor("producer", ());
/// let out = producer.output::<u32>("value");
/// producer
///     .reaction("emit")
///     .triggered_by(Startup)
///     .effects(out)
///     .body(move |_, ctx| ctx.set(out, 17));
/// drop(producer);
///
/// let mut consumer = b.reactor("consumer", Vec::<u32>::new());
/// let inp = consumer.input::<u32>("value");
/// consumer
///     .reaction("collect")
///     .triggered_by(inp)
///     .body(move |seen: &mut Vec<u32>, ctx| {
///         seen.push(*ctx.get(inp).unwrap());
///     });
/// drop(consumer);
///
/// b.connect(out, inp)?;
/// let program = b.build()?;
/// assert_eq!(program.reaction_count(), 2);
/// # Ok::<(), dear_core::AssemblyError>(())
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    reactors: Vec<ReactorMeta>,
    states: Vec<Box<dyn Any + Send>>,
    ports: Vec<PortBuild>,
    actions: Vec<ActionMeta>,
    timers: Vec<TimerMeta>,
    reactions: Vec<ReactionBuild>,
}

impl std::fmt::Debug for ProgramBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramBuilder")
            .field("reactors", &self.reactors.len())
            .field("ports", &self.ports.len())
            .field("reactions", &self.reactions.len())
            .finish()
    }
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a reactor with the given name and initial state.
    ///
    /// The returned [`ReactorBuilder`] borrows this builder; declare the
    /// reactor's ports, actions, timers and reactions through it, then drop
    /// it (or let it go out of scope) before declaring the next reactor.
    pub fn reactor<S: Send + 'static>(&mut self, name: &str, state: S) -> ReactorBuilder<'_, S> {
        let id = ReactorId(u32::try_from(self.reactors.len()).expect("too many reactors"));
        self.reactors.push(ReactorMeta { name: name.into() });
        self.states.push(Box::new(state));
        ReactorBuilder {
            builder: self,
            id,
            _marker: PhantomData,
        }
    }

    /// Connects an output port to an input port of the same value type.
    ///
    /// Fan-out (one output to many inputs) is allowed; fan-in (an input
    /// with several sources) is rejected.
    ///
    /// # Errors
    ///
    /// Returns an [`AssemblyError`] if the source is not an output, the
    /// target is not an input, the target already has a source, or the
    /// ports are identical.
    pub fn connect<T: 'static>(&mut self, from: Port<T>, to: Port<T>) -> Result<(), AssemblyError> {
        if from.id == to.id {
            return Err(AssemblyError::SelfLoop {
                port: from.id,
                name: self.ports[from.id.index()].name.clone(),
            });
        }
        if self.ports[from.id.index()].kind != PortKind::Output {
            return Err(AssemblyError::SourceNotOutput {
                port: from.id,
                name: self.ports[from.id.index()].name.clone(),
            });
        }
        if self.ports[to.id.index()].kind != PortKind::Input {
            return Err(AssemblyError::TargetNotInput {
                port: to.id,
                name: self.ports[to.id.index()].name.clone(),
            });
        }
        if self.ports[to.id.index()].source.is_some() {
            return Err(AssemblyError::MultipleSources {
                port: to.id,
                name: self.ports[to.id.index()].name.clone(),
            });
        }
        self.ports[to.id.index()].source = Some(from.id);
        Ok(())
    }

    /// Connects an output port to an input port through a logical delay.
    ///
    /// Values written to `from` appear on `to` at `tag.delay(delay)` — a
    /// strictly later tag. Because the value travels through a logical
    /// action, a delayed connection contributes **no** dependency edge to
    /// the precedence graph: it is the standard reactor idiom for
    /// breaking feedback loops.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProgramBuilder::connect`].
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn connect_delayed<T: Clone + Send + Sync + 'static>(
        &mut self,
        from: Port<T>,
        to: Port<T>,
        delay: Duration,
    ) -> Result<(), AssemblyError> {
        assert!(
            !delay.is_negative(),
            "connection delay must be non-negative"
        );
        let name = format!("__delay_{}_{}", from.id, to.id);
        let mut r = self.reactor(&name, ());
        let din = r.input::<T>("in");
        let dout = r.output::<T>("out");
        let act = r.logical_action::<T>("value", delay);
        // `release` is declared *before* `capture` so the intra-reactor
        // priority edge points release -> capture; the reverse order would
        // close a zero-delay cycle when the connection is used as a
        // feedback path.
        r.reaction("release").triggered_by(act).effects(dout).body(
            move |_, ctx: &mut ReactionCtx<'_>| {
                let v = ctx.get_action(&act).cloned().expect("action present");
                ctx.set(dout, v);
            },
        );
        r.reaction("capture").triggered_by(din).schedules(act).body(
            move |_, ctx: &mut ReactionCtx<'_>| {
                let v = ctx.get(din).cloned().expect("triggering port present");
                ctx.schedule(act, Duration::ZERO, v);
            },
        );
        drop(r);
        self.connect(from, din)?;
        self.connect(dout, to)
    }

    /// Validates the program and computes the APG levels.
    ///
    /// # Errors
    ///
    /// Returns [`AssemblyError::DependencyCycle`] if the reaction graph has
    /// a zero-delay cycle.
    pub fn build(self) -> Result<Program, AssemblyError> {
        let n = self.reactions.len();

        // Resolve port roots (one hop: inputs read their source output).
        let roots: Vec<PortId> = self
            .ports
            .iter()
            .enumerate()
            .map(|(i, p)| p.source.unwrap_or(PortId(i as u32)))
            .collect();

        // Readers of each root port, split into triggered vs. all readers.
        let mut sinks_trigger: Vec<Vec<ReactionId>> = vec![Vec::new(); self.ports.len()];
        let mut sinks_all: Vec<Vec<ReactionId>> = vec![Vec::new(); self.ports.len()];
        for (i, r) in self.reactions.iter().enumerate() {
            let rid = ReactionId(i as u32);
            for t in &r.triggers {
                if let TriggerId::Port(p) = t {
                    let root = roots[p.index()];
                    sinks_trigger[root.index()].push(rid);
                    sinks_all[root.index()].push(rid);
                }
            }
            for p in &r.uses {
                let root = roots[p.index()];
                sinks_all[root.index()].push(rid);
            }
        }
        for v in sinks_trigger.iter_mut().chain(sinks_all.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }

        // Dependency edges: writer -> reader through ports, plus the
        // intra-reactor priority chain (declaration order).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = vec![0; n];
        let add_edge =
            |succs: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, a: usize, b: usize| {
                succs[a].push(b);
                indegree[b] += 1;
            };
        for (i, r) in self.reactions.iter().enumerate() {
            for p in &r.effects {
                let root = roots[p.index()];
                debug_assert_eq!(root, *p, "effects are outputs, thus their own root");
                for reader in &sinks_all[root.index()] {
                    // A self-edge (a reaction triggered by a port its own
                    // effect feeds) is a genuine zero-delay cycle and is
                    // reported as such by Kahn's algorithm.
                    add_edge(&mut succs, &mut indegree, i, reader.index());
                }
            }
        }
        // Priority chain per reactor.
        let mut last_of_reactor: Vec<Option<usize>> = vec![None; self.reactors.len()];
        for (i, r) in self.reactions.iter().enumerate() {
            if let Some(prev) = last_of_reactor[r.reactor.index()] {
                add_edge(&mut succs, &mut indegree, prev, i);
            }
            last_of_reactor[r.reactor.index()] = Some(i);
        }

        // Kahn's algorithm computing longest-path levels.
        let mut level = vec![0u32; n];
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop_front() {
            visited += 1;
            for &s in &succs[i] {
                level[s] = level[s].max(level[i] + 1);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if visited != n {
            let cycle: Vec<String> = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.reactions[i].name.clone())
                .collect();
            return Err(AssemblyError::DependencyCycle(cycle));
        }
        let num_levels = level.iter().max().map_or(0, |&m| m + 1);

        // Trigger lists for actions, timers, startup and shutdown.
        let mut actions = self.actions;
        let mut timers = self.timers;
        let mut startup = Vec::new();
        let mut shutdown = Vec::new();
        for (i, r) in self.reactions.iter().enumerate() {
            let rid = ReactionId(i as u32);
            for t in &r.triggers {
                match t {
                    TriggerId::Startup => startup.push(rid),
                    TriggerId::Shutdown => shutdown.push(rid),
                    TriggerId::Action(a) => actions[a.index()].triggered.push(rid),
                    TriggerId::Timer(t) => timers[t.index()].triggered.push(rid),
                    TriggerId::Port(_) => {}
                }
            }
        }
        for list in actions
            .iter_mut()
            .map(|a| &mut a.triggered)
            .chain(timers.iter_mut().map(|t| &mut t.triggered))
        {
            list.sort_unstable();
            list.dedup();
        }
        startup.sort_unstable();
        shutdown.sort_unstable();

        let ports: Vec<PortMeta> = self
            .ports
            .into_iter()
            .enumerate()
            .map(|(i, p)| PortMeta {
                name: p.name,
                reactor: p.reactor,
                kind: p.kind,
                type_id: p.type_id,
                root: roots[i],
                sinks_trigger: std::mem::take(&mut sinks_trigger[i]),
            })
            .collect();

        let reactions: Vec<ReactionMeta> = self
            .reactions
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let mut readable: Vec<PortId> = r
                    .triggers
                    .iter()
                    .filter_map(|t| match t {
                        TriggerId::Port(p) => Some(*p),
                        _ => None,
                    })
                    .chain(r.uses.iter().copied())
                    .chain(r.effects.iter().copied())
                    .collect();
                readable.sort_unstable();
                readable.dedup();
                let mut effects = r.effects;
                effects.sort_unstable();
                effects.dedup();
                let mut schedules = r.schedules;
                schedules.sort_unstable();
                schedules.dedup();
                ReactionMeta {
                    name: r.name,
                    reactor: r.reactor,
                    level: level[i],
                    body: Mutex::new(r.body),
                    deadline: r.deadline,
                    deadline_handler: r.deadline_handler.map(Mutex::new),
                    readable,
                    effects,
                    schedules,
                }
            })
            .collect();

        Ok(Program {
            reactors: self.reactors,
            ports,
            actions,
            timers,
            reactions,
            startup,
            shutdown,
            states: Mutex::new(self.states),
            num_levels,
        })
    }
}

/// Builder scope for one reactor's ports, actions, timers and reactions.
///
/// Created by [`ProgramBuilder::reactor`]; see that method's example.
pub struct ReactorBuilder<'b, S> {
    builder: &'b mut ProgramBuilder,
    id: ReactorId,
    _marker: PhantomData<fn(S) -> S>,
}

impl<S> std::fmt::Debug for ReactorBuilder<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactorBuilder({})", self.id)
    }
}

impl<'b, S: Send + 'static> ReactorBuilder<'b, S> {
    /// The id of the reactor being built.
    #[must_use]
    pub fn id(&self) -> ReactorId {
        self.id
    }

    fn add_port<T: Send + Sync + 'static>(&mut self, name: &str, kind: PortKind) -> Port<T> {
        let id = PortId(u32::try_from(self.builder.ports.len()).expect("too many ports"));
        let reactor_name = &self.builder.reactors[self.id.index()].name;
        self.builder.ports.push(PortBuild {
            name: format!("{reactor_name}.{name}"),
            reactor: self.id,
            kind,
            type_id: TypeId::of::<T>(),
            source: None,
        });
        Port {
            id,
            _marker: PhantomData,
        }
    }

    /// Declares an input port carrying values of type `T`.
    pub fn input<T: Send + Sync + 'static>(&mut self, name: &str) -> Port<T> {
        self.add_port(name, PortKind::Input)
    }

    /// Declares an output port carrying values of type `T`.
    pub fn output<T: Send + Sync + 'static>(&mut self, name: &str) -> Port<T> {
        self.add_port(name, PortKind::Output)
    }

    fn add_action(&mut self, name: &str, kind: ActionKind, min_delay: Duration) -> ActionId {
        assert!(
            !min_delay.is_negative(),
            "action min_delay must be non-negative"
        );
        let id = ActionId(u32::try_from(self.builder.actions.len()).expect("too many actions"));
        let reactor_name = &self.builder.reactors[self.id.index()].name;
        self.builder.actions.push(ActionMeta {
            name: format!("{reactor_name}.{name}"),
            reactor: self.id,
            kind,
            min_delay,
            triggered: Vec::new(),
        });
        id
    }

    /// Declares a logical action with the given minimum logical delay.
    pub fn logical_action<T: Send + Sync + 'static>(
        &mut self,
        name: &str,
        min_delay: Duration,
    ) -> LogicalAction<T> {
        LogicalAction {
            id: self.add_action(name, ActionKind::Logical, min_delay),
            _marker: PhantomData,
        }
    }

    /// Declares a physical action with the given minimum delay.
    ///
    /// Physical actions are scheduled from outside the runtime via
    /// [`Runtime::schedule_physical`](crate::Runtime::schedule_physical) or
    /// [`Runtime::schedule_physical_at`](crate::Runtime::schedule_physical_at).
    pub fn physical_action<T: Send + Sync + 'static>(
        &mut self,
        name: &str,
        min_delay: Duration,
    ) -> PhysicalAction<T> {
        PhysicalAction {
            id: self.add_action(name, ActionKind::Physical, min_delay),
            _marker: PhantomData,
        }
    }

    /// Declares a timer firing first at `offset` after startup and then
    /// every `period` (or only once if `period` is `None`).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is negative or `period` is non-positive.
    pub fn timer(&mut self, name: &str, offset: Duration, period: Option<Duration>) -> Timer {
        assert!(!offset.is_negative(), "timer offset must be non-negative");
        if let Some(p) = period {
            assert!(p > Duration::ZERO, "timer period must be positive");
        }
        let id = TimerId(u32::try_from(self.builder.timers.len()).expect("too many timers"));
        let reactor_name = &self.builder.reactors[self.id.index()].name;
        self.builder.timers.push(TimerMeta {
            name: format!("{reactor_name}.{name}"),
            reactor: self.id,
            offset,
            period,
            triggered: Vec::new(),
        });
        Timer { id }
    }

    /// Begins the declaration of a reaction.
    ///
    /// Reactions of the same reactor are totally ordered by declaration
    /// order (their *priority*), which the APG honours.
    pub fn reaction(&mut self, name: &str) -> ReactionDeclaration<'_, S> {
        let reactor_name = &self.builder.reactors[self.id.index()].name;
        let name = format!("{reactor_name}.{name}");
        ReactionDeclaration {
            builder: self.builder,
            reactor: self.id,
            name,
            triggers: Vec::new(),
            uses: Vec::new(),
            effects: Vec::new(),
            schedules: Vec::new(),
            deadline: None,
            deadline_handler: None,
            _marker: PhantomData,
        }
    }
}

/// Fluent declaration of a single reaction; finished by [`body`].
///
/// [`body`]: ReactionDeclaration::body
pub struct ReactionDeclaration<'r, S> {
    builder: &'r mut ProgramBuilder,
    reactor: ReactorId,
    name: String,
    triggers: Vec<TriggerId>,
    uses: Vec<PortId>,
    effects: Vec<PortId>,
    schedules: Vec<ActionId>,
    deadline: Option<Duration>,
    deadline_handler: Option<BodyFn>,
    _marker: PhantomData<fn(S) -> S>,
}

impl<S> std::fmt::Debug for ReactionDeclaration<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactionDeclaration({})", self.name)
    }
}

fn wrap_body<S: Send + 'static>(
    name: String,
    mut f: impl FnMut(&mut S, &mut ReactionCtx<'_>) + Send + 'static,
) -> BodyFn {
    Box::new(move |state, ctx| {
        let state = state
            .downcast_mut::<S>()
            .unwrap_or_else(|| panic!("state type mismatch in reaction `{name}`"));
        f(state, ctx);
    })
}

impl<'r, S: Send + 'static> ReactionDeclaration<'r, S> {
    /// Adds a trigger: the reaction runs whenever the trigger is present.
    #[must_use]
    pub fn triggered_by(mut self, source: impl TriggerSource) -> Self {
        self.triggers.push(source.trigger_id());
        self
    }

    /// Declares a port the reaction reads without being triggered by it.
    #[must_use]
    pub fn uses<T>(mut self, port: Port<T>) -> Self {
        self.uses.push(port.id);
        self
    }

    /// Declares an output port the reaction may write.
    #[must_use]
    pub fn effects<T>(mut self, port: Port<T>) -> Self {
        self.effects.push(port.id);
        self
    }

    /// Declares a logical action the reaction may schedule.
    #[must_use]
    pub fn schedules<T>(mut self, action: LogicalAction<T>) -> Self {
        self.schedules.push(action.id);
        self
    }

    /// Attaches a deadline: if the reaction is *launched* more than
    /// `deadline` after its tag's time point (measured on the physical
    /// clock), `handler` runs instead of the body (§III.A: "a deadline D is
    /// considered violated when an event with tag t triggers a reaction
    /// associated with D after physical time T has exceeded t + D").
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is negative.
    #[must_use]
    pub fn with_deadline(
        mut self,
        deadline: Duration,
        handler: impl FnMut(&mut S, &mut ReactionCtx<'_>) + Send + 'static,
    ) -> Self {
        assert!(!deadline.is_negative(), "deadline must be non-negative");
        self.deadline = Some(deadline);
        self.deadline_handler = Some(wrap_body(format!("{}(deadline)", self.name), handler));
        self
    }

    /// Finishes the declaration with the reaction body and registers it.
    pub fn body(self, f: impl FnMut(&mut S, &mut ReactionCtx<'_>) + Send + 'static) -> ReactionId {
        let id =
            ReactionId(u32::try_from(self.builder.reactions.len()).expect("too many reactions"));
        let body = wrap_body(self.name.clone(), f);
        self.builder.reactions.push(ReactionBuild {
            name: self.name,
            reactor: self.reactor,
            triggers: self.triggers,
            uses: self.uses,
            effects: self.effects,
            schedules: self.schedules,
            body,
            deadline: self.deadline,
            deadline_handler: self.deadline_handler,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handles::Startup;

    #[test]
    fn levels_follow_connections_and_priorities() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        let r0 = a
            .reaction("produce")
            .triggered_by(Startup)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, 1));
        // Same reactor, later declaration: must be at a higher level.
        let r1 = a.reaction("after").triggered_by(Startup).body(|_, _| {});
        drop(a);

        let mut c = b.reactor("c", ());
        let inp = c.input::<u32>("in");
        let r2 = c.reaction("consume").triggered_by(inp).body(|_, _| {});
        drop(c);
        b.connect(out, inp).unwrap();

        let p = b.build().unwrap();
        assert_eq!(p.reaction_level(r0), 0);
        assert_eq!(p.reaction_level(r1), 1);
        assert_eq!(p.reaction_level(r2), 1);
        assert_eq!(p.level_count(), 2);
        assert_eq!(p.reaction_name(r0), "a.produce");
    }

    #[test]
    fn uses_creates_dependency_without_trigger() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        a.reaction("produce")
            .triggered_by(Startup)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, 1));
        drop(a);
        let mut c = b.reactor("c", ());
        let inp = c.input::<u32>("in");
        let t = c.timer("t", dear_time::Duration::ZERO, None);
        let r = c.reaction("peek").triggered_by(t).uses(inp).body(|_, _| {});
        drop(c);
        b.connect(out, inp).unwrap();
        let p = b.build().unwrap();
        // The user of the port is levelled after the writer even though it
        // is not triggered by it.
        assert_eq!(p.reaction_level(r), 1);
    }

    #[test]
    fn cycle_is_rejected_with_names() {
        let mut b = ProgramBuilder::new();
        let mut x = b.reactor("x", ());
        let xo = x.output::<u32>("o");
        let xi = x.input::<u32>("i");
        x.reaction("fwd")
            .triggered_by(xi)
            .effects(xo)
            .body(|_, _| {});
        drop(x);
        let mut y = b.reactor("y", ());
        let yo = y.output::<u32>("o");
        let yi = y.input::<u32>("i");
        y.reaction("fwd")
            .triggered_by(yi)
            .effects(yo)
            .body(|_, _| {});
        drop(y);
        b.connect(xo, yi).unwrap();
        b.connect(yo, xi).unwrap();
        match b.build() {
            Err(AssemblyError::DependencyCycle(names)) => {
                assert!(names.contains(&"x.fwd".to_string()));
                assert!(names.contains(&"y.fwd".to_string()));
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn connect_rejects_bad_endpoints() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        let out2 = a.output::<u32>("out2");
        let inp = a.input::<u32>("in");
        drop(a);
        let mut c = b.reactor("c", ());
        let cin = c.input::<u32>("in");
        drop(c);

        assert!(matches!(
            b.connect(inp, cin),
            Err(AssemblyError::SourceNotOutput { .. })
        ));
        assert!(matches!(
            b.connect(out, out2),
            Err(AssemblyError::TargetNotInput { .. })
        ));
        b.connect(out, cin).unwrap();
        assert!(matches!(
            b.connect(out2, cin),
            Err(AssemblyError::MultipleSources { .. })
        ));
        assert!(matches!(
            b.connect(out, out),
            Err(AssemblyError::SelfLoop { .. })
        ));
    }

    #[test]
    fn fan_out_is_allowed() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        let out = a.output::<u32>("out");
        a.reaction("produce")
            .triggered_by(Startup)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, 1));
        drop(a);
        let mut ids = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..3 {
            let mut c = b.reactor(&format!("c{i}"), ());
            let inp = c.input::<u32>("in");
            ids.push(c.reaction("consume").triggered_by(inp).body(|_, _| {}));
            inputs.push(inp);
            drop(c);
        }
        for inp in &inputs {
            b.connect(out, *inp).unwrap();
        }
        let p = b.build().unwrap();
        for id in ids {
            assert_eq!(p.reaction_level(id), 1);
        }
    }

    #[test]
    fn diamond_levels() {
        // src -> (left, right) -> join
        let mut b = ProgramBuilder::new();
        let mut s = b.reactor("src", ());
        let so = s.output::<u32>("o");
        s.reaction("emit")
            .triggered_by(Startup)
            .effects(so)
            .body(move |_, ctx| ctx.set(so, 0));
        drop(s);

        let mut mk_stage = |name: &str| {
            let mut r = b.reactor(name, ());
            let i = r.input::<u32>("i");
            let o = r.output::<u32>("o");
            let id = r
                .reaction("fwd")
                .triggered_by(i)
                .effects(o)
                .body(move |_, ctx| {
                    let v = *ctx.get(i).unwrap();
                    ctx.set(o, v + 1)
                });
            drop(r);
            (i, o, id)
        };
        let (li, lo, lid) = mk_stage("left");
        let (ri, ro, rid) = mk_stage("right");

        let mut j = b.reactor("join", ());
        let ja = j.input::<u32>("a");
        let jb = j.input::<u32>("b");
        let jid = j
            .reaction("join")
            .triggered_by(ja)
            .triggered_by(jb)
            .body(|_, _| {});
        drop(j);

        b.connect(so, li).unwrap();
        b.connect(so, ri).unwrap();
        b.connect(lo, ja).unwrap();
        b.connect(ro, jb).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.reaction_level(lid), 1);
        assert_eq!(p.reaction_level(rid), 1);
        assert_eq!(p.reaction_level(jid), 2);
        assert_eq!(p.level_count(), 3);
    }

    #[test]
    #[should_panic(expected = "timer period must be positive")]
    fn zero_period_timer_panics() {
        let mut b = ProgramBuilder::new();
        let mut a = b.reactor("a", ());
        a.timer("t", Duration::ZERO, Some(Duration::ZERO));
    }
}
