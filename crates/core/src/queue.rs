//! Allocation-recycling event queue for the reactor runtime.
//!
//! The runtime's original queue was a `BTreeMap<Tag, TagEntry>`: every tag
//! allocated a fresh B-tree node plus two `Vec`s, all freed again when the
//! tag was popped — pure churn on the hot path. [`EventQueue`] replaces it
//! with a binary min-heap of *individual* events (`(Tag, Event)` pairs,
//! `Copy`, no per-event allocation once the heap's buffer has grown) and a
//! free list of [`TagEntry`] scratch records whose `Vec` capacities are
//! recycled across tags. In steady state, pushing an event and popping a
//! tag perform **zero heap allocations**.
//!
//! Determinism: events sharing a tag are merged at pop time into one
//! [`TagEntry`]. The heap orders ties by the event's own `Ord`, and the
//! runtime sorts/dedups the merged entry before triggering reactions, so
//! observable behaviour is identical to the ordered-map implementation —
//! the `parallel_matches_sequential` and fingerprint suites are the
//! referee.
//!
//! Events carry the typed ids from [`crate::handles`] (which double as
//! [`dear_arena::Key`]s), so popping an event yields keys that index the
//! runtime's action/timer arenas directly — no raw-`usize` detour.

use crate::handles::{ActionId, TimerId};
use crate::tag::Tag;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One schedulable occurrence at a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Event {
    /// Startup reactions fire at this tag.
    Startup,
    /// A timer elapses at this tag.
    Timer(TimerId),
    /// An action (logical or physical) becomes present at this tag.
    Action(ActionId),
    /// The runtime shuts down at this tag.
    Shutdown,
}

/// Everything that happens at one tag, merged from the queue's events.
///
/// Obtained from [`EventQueue::pop_tag`] and handed back through
/// [`EventQueue::recycle`] so the `Vec` buffers survive across tags.
#[derive(Debug, Default)]
pub(crate) struct TagEntry {
    /// Actions present at this tag (may contain duplicates; the runtime
    /// sorts and dedups before triggering).
    pub actions: Vec<ActionId>,
    /// Timers elapsing at this tag.
    pub timers: Vec<TimerId>,
    /// Whether startup reactions fire at this tag.
    pub startup: bool,
    /// Whether the runtime shuts down at this tag.
    pub shutdown: bool,
}

impl TagEntry {
    fn absorb(&mut self, event: Event) {
        match event {
            Event::Startup => self.startup = true,
            Event::Timer(t) => self.timers.push(t),
            Event::Action(a) => self.actions.push(a),
            Event::Shutdown => self.shutdown = true,
        }
    }

    fn reset(&mut self) {
        self.actions.clear();
        self.timers.clear();
        self.startup = false;
        self.shutdown = false;
    }
}

/// Binary-heap event queue with a [`TagEntry`] free list.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(Tag, Event)>>,
    free: Vec<TagEntry>,
}

impl EventQueue {
    /// Enqueues one event. Amortized allocation-free.
    pub fn push(&mut self, tag: Tag, event: Event) {
        self.heap.push(Reverse((tag, event)));
    }

    /// The earliest pending tag, if any.
    pub fn peek_tag(&self) -> Option<Tag> {
        self.heap.peek().map(|Reverse((tag, _))| *tag)
    }

    /// Pops *all* events at the earliest pending tag, merged into one
    /// [`TagEntry`] drawn from the free list.
    pub fn pop_tag(&mut self) -> Option<(Tag, TagEntry)> {
        let Reverse((tag, first)) = self.heap.pop()?;
        let mut entry = self.free.pop().unwrap_or_default();
        entry.absorb(first);
        while let Some(&Reverse((next, _))) = self.heap.peek() {
            if next != tag {
                break;
            }
            let Reverse((_, event)) = self.heap.pop().expect("peeked event exists");
            entry.absorb(event);
        }
        Some((tag, entry))
    }

    /// Returns a spent entry's buffers to the free list.
    pub fn recycle(&mut self, mut entry: TagEntry) {
        entry.reset();
        self.free.push(entry);
    }

    /// Discards all pending events (free list and capacities retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events (not distinct tags).
    pub fn pending_events(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_time::Instant;

    fn tag(ms: u64, micro: u32) -> Tag {
        Tag::new(Instant::from_millis(ms), micro)
    }

    #[test]
    fn pops_tags_in_order_regardless_of_push_order() {
        let mut q = EventQueue::default();
        q.push(tag(5, 0), Event::Timer(TimerId(0)));
        q.push(tag(1, 1), Event::Startup);
        q.push(tag(1, 0), Event::Action(ActionId(3)));
        let order: Vec<Tag> = std::iter::from_fn(|| {
            q.pop_tag().map(|(t, e)| {
                q.recycle(e);
                t
            })
        })
        .collect();
        assert_eq!(order, vec![tag(1, 0), tag(1, 1), tag(5, 0)]);
    }

    #[test]
    fn merges_all_events_at_one_tag() {
        let mut q = EventQueue::default();
        q.push(tag(2, 0), Event::Action(ActionId(1)));
        q.push(tag(2, 0), Event::Timer(TimerId(0)));
        q.push(tag(2, 0), Event::Action(ActionId(0)));
        q.push(tag(2, 0), Event::Shutdown);
        q.push(tag(3, 0), Event::Startup);
        let (t, entry) = q.pop_tag().expect("events pending");
        assert_eq!(t, tag(2, 0));
        let mut actions = entry.actions.clone();
        actions.sort_unstable();
        assert_eq!(actions, vec![ActionId(0), ActionId(1)]);
        assert_eq!(entry.timers, vec![TimerId(0)]);
        assert!(entry.shutdown);
        assert!(!entry.startup);
        assert_eq!(q.pending_events(), 1);
    }

    #[test]
    fn recycled_entries_come_back_clean_with_capacity() {
        let mut q = EventQueue::default();
        for i in 0..16u32 {
            q.push(tag(1, 0), Event::Action(ActionId(i)));
        }
        let (_, entry) = q.pop_tag().expect("events pending");
        let cap = entry.actions.capacity();
        assert!(cap >= 16);
        q.recycle(entry);
        q.push(tag(2, 0), Event::Timer(TimerId(9)));
        let (_, entry) = q.pop_tag().expect("event pending");
        assert!(entry.actions.is_empty());
        assert!(!entry.startup && !entry.shutdown);
        assert_eq!(entry.timers, vec![TimerId(9)]);
        assert_eq!(entry.actions.capacity(), cap, "Vec capacity recycled");
    }

    #[test]
    fn clear_discards_pending_events() {
        let mut q = EventQueue::default();
        q.push(tag(1, 0), Event::Startup);
        q.push(tag(2, 0), Event::Shutdown);
        q.clear();
        assert_eq!(q.peek_tag(), None);
        assert!(q.pop_tag().is_none());
    }

    #[test]
    fn duplicate_flag_events_merge_idempotently() {
        let mut q = EventQueue::default();
        q.push(tag(1, 0), Event::Shutdown);
        q.push(tag(1, 0), Event::Shutdown);
        q.push(tag(1, 0), Event::Startup);
        let (_, entry) = q.pop_tag().expect("events pending");
        assert!(entry.shutdown && entry.startup);
        assert!(q.pop_tag().is_none(), "duplicates merged into one tag");
    }
}
