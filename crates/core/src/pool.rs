//! Persistent worker pool for level-parallel reaction execution.
//!
//! The runtime's original executor spawned fresh scoped threads for
//! *every* same-level batch — thousands of `clone`+`spawn`+`join` cycles
//! per run, dominating the cost of light reactions. [`WorkerPool`] is
//! created once per runtime (when [`Runtime::set_workers`] requests more
//! than one worker) and reused across all batches, levels, and tags: jobs
//! travel through a shared channel, results return through a per-batch
//! channel, and the threads park in `recv` between batches.
//!
//! Determinism is unaffected by the pool: jobs only ever run *independent*
//! reactions (same APG level, distinct reactors), and the runtime sorts
//! results into reaction-id order before applying them — the same contract
//! the scoped-thread executor had, verified by the
//! `parallel_matches_sequential` property tests.
//!
//! [`Runtime::set_workers`]: crate::Runtime::set_workers

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming jobs from a shared queue.
///
/// Dropping the pool closes the queue and joins every worker.
pub(crate) struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "worker pool needs at least one thread");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("dear-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeuing, never while
                        // running a job, so workers drain in parallel.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            // A sibling panicked mid-dequeue; the runtime
                            // is coming down, stop quietly.
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submits a job; some worker will run it.
    pub fn submit(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(job)
            .expect("worker pool threads alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            // A worker that panicked (a reaction body panicked) already
            // surfaced the failure on the runtime thread; don't
            // double-panic out of drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_submitted_jobs() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(vec![()]).unwrap();
            }));
        }
        let mut done = Vec::new();
        for _ in 0..100 {
            done.extend(rx.recv().unwrap());
        }
        assert_eq!(done.len(), 100);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_idle_workers() {
        let pool = WorkerPool::new(2);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let (tx, rx) = channel();
            for i in 0..4u64 {
                let tx = tx.clone();
                pool.submit(Box::new(move || tx.send(vec![i * i]).unwrap()));
            }
            let mut out: Vec<u64> = Vec::new();
            for _ in 0..4 {
                out.extend(rx.recv().unwrap());
            }
            out.sort_unstable();
            assert_eq!(out, vec![0, 1, 4, 9], "round {round}");
        }
    }
}
