//! The durable event log: crash recovery for DEAR federates.
//!
//! The paper's core claim is that a DEAR federation is a *deterministic
//! function of its inputs* — so a crashed federate can come back: replay
//! the persisted input stream to its last granted tag and rejoin with
//! byte-identical behavior. This crate is the persistence half of that
//! story (the recovery driver lives on
//! `dear_federation::CoordinatedPlatform`):
//!
//! * [`Record`] — one logically-timestamped log entry: the runtime's
//!   start anchor, a physical input (the federate's *only* source of
//!   nondeterminism), the coordination high-water marks (granted bound,
//!   processed tag, drained-outbox watermark) and periodic [`Record::
//!   Snapshot`] checkpoints.
//! * [`EventLog`] — an append-only, CRC-framed, segmented log. Every
//!   record is framed as `[len][crc32][payload]`, so torn tails and
//!   bit rot are detected, not replayed. Snapshots rotate the segment,
//!   so [`EventLog::seek`] can start replay at the newest checkpoint at
//!   or below a tag instead of the beginning of time.
//! * [`LogStorage`] — the byte-level backend behind a trait, so the
//!   deterministic simulation twin stays entirely in memory
//!   ([`MemStorage`]) while a real deployment can drop in an mmap'd or
//!   file-backed segment store without touching the log logic.
//!
//! The design follows the durable-topic/raft-log shape: an append-only
//! record stream, periodic snapshots bounding replay work, and CRC
//! framing making partial writes self-delimiting.
//!
//! ## What is — and is not — in a snapshot
//!
//! Reactor state is opaque (`Box<dyn Any>`), so snapshots do **not**
//! serialize user state. A [`Record::Snapshot`] is a *coordination*
//! checkpoint: the tags reached and the log sequence number. Recovery
//! therefore replays inputs from the runtime's start anchor — which is
//! exactly what determinism makes sufficient — while `seek` uses
//! snapshots to bound how much log a *reader* (offline trace tooling,
//! time-travel debugging) must scan to reach a tag.

use dear_core::Tag;
use dear_time::Instant;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise, table-free:
/// the log's hot path appends tens of bytes per logical step, so a
/// 1 KiB lookup table buys nothing worth its cache pressure here.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Bytes of framing before each record payload (`u32` length + `u32`
/// CRC, both big-endian).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default segment-rotation threshold in bytes: a snapshot appended when
/// the open segment is at least this full closes it and starts a new
/// segment (see [`EventLog::set_max_segment_bytes`]).
pub const DEFAULT_MAX_SEGMENT_BYTES: usize = 64 * 1024;

fn put_tag(out: &mut Vec<u8>, tag: Tag) {
    out.extend_from_slice(&tag.time.as_nanos().to_be_bytes());
    out.extend_from_slice(&tag.microstep.to_be_bytes());
}

fn put_opt_tag(out: &mut Vec<u8>, tag: Option<Tag>) {
    match tag {
        Some(tag) => {
            out.push(1);
            put_tag(out, tag);
        }
        None => out.push(0),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(b)
    }
    fn u32(&mut self) -> Option<u32> {
        let (head, rest) = self.bytes.split_first_chunk::<4>()?;
        self.bytes = rest;
        Some(u32::from_be_bytes(*head))
    }
    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.bytes.split_first_chunk::<8>()?;
        self.bytes = rest;
        Some(u64::from_be_bytes(*head))
    }
    fn tag(&mut self) -> Option<Tag> {
        let nanos = self.u64()?;
        let microstep = self.u32()?;
        Some(Tag::new(Instant::from_nanos(nanos), microstep))
    }
    fn opt_tag(&mut self) -> Option<Option<Tag>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.tag()?)),
            _ => None,
        }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.bytes.len() {
            return None;
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Some(head)
    }
}

/// One entry of the durable log. Everything a deterministic federate
/// needs to reconstruct its exact state: the start anchor, the physical
/// inputs, and the coordination high-water marks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// The runtime was started with this physical anchor (nanoseconds):
    /// timers and the startup tag are derived from it, so replay must
    /// restart the rebuilt runtime at exactly the same anchor.
    Started {
        /// `Instant::as_nanos()` of the start call.
        anchor: u64,
    },
    /// A physical input was scheduled: the federate's only source of
    /// nondeterminism, captured with its full tag and encoded value.
    Input {
        /// Which input this is — an action key registered by the
        /// platform's input codec (stable across a rebuild, because the
        /// rebuilt program allocates identical action ids).
        key: u32,
        /// The tag the input was scheduled at.
        tag: Tag,
        /// The encoded value (the codec's business; opaque here).
        bytes: Vec<u8>,
    },
    /// The coordinator granted this exclusive tag bound (monotone
    /// high-water mark; replay restores the maximum).
    Granted {
        /// The exclusive bound.
        bound: Tag,
    },
    /// The runtime completed this tag (LTC high-water mark — the tag a
    /// rejoin resumes *after*).
    Processed {
        /// The completed tag.
        tag: Tag,
        /// The local physical clock reading the step executed at
        /// (`Instant::as_nanos`). Deadline checks — and anything a
        /// reaction reads through its physical-time accessor — depend on
        /// this reading, so replay must pass the very same one to `step`
        /// or a recovered federate could miss (or meet) deadlines its
        /// first incarnation did not.
        local: u64,
    },
    /// The outbox was drained through this tag: every outbound message
    /// with a tag at or below this watermark demonstrably reached the
    /// network before the crash, so replay suppresses re-sending it.
    Drained {
        /// The drain watermark.
        tag: Tag,
    },
    /// A coordination checkpoint (and segment-rotation point): where the
    /// federate stood when the snapshot was cut.
    Snapshot {
        /// Monotone snapshot sequence number.
        seq: u64,
        /// LTC high-water mark at the checkpoint.
        last_processed: Option<Tag>,
        /// Granted-bound high-water mark at the checkpoint.
        granted: Option<Tag>,
    },
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Started { .. } => 1,
            Record::Input { .. } => 2,
            Record::Granted { .. } => 3,
            Record::Processed { .. } => 4,
            Record::Drained { .. } => 5,
            Record::Snapshot { .. } => 6,
        }
    }

    /// Encodes the payload (kind byte + fields, no framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.kind()];
        match self {
            Record::Started { anchor } => out.extend_from_slice(&anchor.to_be_bytes()),
            Record::Input { key, tag, bytes } => {
                out.extend_from_slice(&key.to_be_bytes());
                put_tag(&mut out, *tag);
                let len = u32::try_from(bytes.len()).expect("input value fits u32");
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(bytes);
            }
            Record::Granted { bound } => put_tag(&mut out, *bound),
            Record::Processed { tag, local } => {
                put_tag(&mut out, *tag);
                out.extend_from_slice(&local.to_be_bytes());
            }
            Record::Drained { tag } => put_tag(&mut out, *tag),
            Record::Snapshot {
                seq,
                last_processed,
                granted,
            } => {
                out.extend_from_slice(&seq.to_be_bytes());
                put_opt_tag(&mut out, *last_processed);
                put_opt_tag(&mut out, *granted);
            }
        }
        out
    }

    /// Decodes one payload previously produced by [`Record::encode`].
    /// Returns `None` on any malformation — the log layer treats that as
    /// corruption, never as a panic.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Record> {
        let mut r = Reader { bytes };
        let record = match r.u8()? {
            1 => Record::Started { anchor: r.u64()? },
            2 => {
                let key = r.u32()?;
                let tag = r.tag()?;
                let len = r.u32()?;
                let bytes = r.take(len as usize)?.to_vec();
                Record::Input { key, tag, bytes }
            }
            3 => Record::Granted { bound: r.tag()? },
            4 => Record::Processed {
                tag: r.tag()?,
                local: r.u64()?,
            },
            5 => Record::Drained { tag: r.tag()? },
            6 => Record::Snapshot {
                seq: r.u64()?,
                last_processed: r.opt_tag()?,
                granted: r.opt_tag()?,
            },
            _ => return None,
        };
        r.bytes.is_empty().then_some(record)
    }
}

/// The byte-level backend of an [`EventLog`]: an ordered list of
/// append-only segments. Implementations only move bytes — framing,
/// CRCs and record semantics all live above this trait, so a
/// file-backed store is a drop-in swap while the deterministic
/// simulation twin keeps the in-memory [`MemStorage`].
pub trait LogStorage {
    /// Appends raw bytes to the newest segment.
    fn append(&mut self, bytes: &[u8]);
    /// Closes the newest segment and opens a fresh, empty one.
    fn rotate(&mut self);
    /// Number of segments (at least 1 — storage starts with one open
    /// segment).
    fn segment_count(&self) -> usize;
    /// The bytes of segment `i` so far (empty for out-of-range `i`).
    fn segment(&self, i: usize) -> Vec<u8>;
}

/// The in-memory [`LogStorage`]: a `Vec` of segments. The default for
/// simulated federates — the deterministic twin must not touch the
/// filesystem, and a "crash" in simulation only discards the platform's
/// volatile state, never the storage.
#[derive(Debug, Default)]
pub struct MemStorage {
    segments: Vec<Vec<u8>>,
}

impl MemStorage {
    /// Creates empty storage with one open segment.
    #[must_use]
    pub fn new() -> Self {
        MemStorage {
            segments: vec![Vec::new()],
        }
    }
}

impl LogStorage for MemStorage {
    fn append(&mut self, bytes: &[u8]) {
        if self.segments.is_empty() {
            self.segments.push(Vec::new());
        }
        self.segments
            .last_mut()
            .expect("at least one segment")
            .extend_from_slice(bytes);
    }
    fn rotate(&mut self) {
        self.segments.push(Vec::new());
    }
    fn segment_count(&self) -> usize {
        self.segments.len().max(1)
    }
    fn segment(&self, i: usize) -> Vec<u8> {
        self.segments.get(i).cloned().unwrap_or_default()
    }
}

/// Counters describing a log's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Records appended.
    pub appended: u64,
    /// Snapshot records appended.
    pub snapshots: u64,
    /// Segment rotations performed.
    pub rotations: u64,
    /// Records rejected during replay (bad CRC, truncated frame, or
    /// malformed payload). A non-zero count on an in-memory log is a
    /// bug; on real storage it marks a torn tail.
    pub corrupt: u64,
}

impl fmt::Display for LogStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "appended={} snapshots={} rotations={} corrupt={}",
            self.appended, self.snapshots, self.rotations, self.corrupt
        )
    }
}

struct LogInner {
    storage: Box<dyn LogStorage>,
    /// Bytes appended to the currently open segment.
    open_bytes: usize,
    max_segment_bytes: usize,
    /// Snapshot index: `(segment holding the snapshot, last_processed)`
    /// in append order, so `seek` can binary-pick the newest checkpoint
    /// at or below a tag without scanning storage.
    snapshots: Vec<(usize, Option<Tag>)>,
    next_seq: u64,
    stats: LogStats,
}

/// A shared handle to one federate's durable event log.
///
/// Cheap to clone; clones share the log. Single-threaded by design
/// (`Rc`): the log is written from the simulation's event loop, the
/// same place the platform lives.
#[derive(Clone)]
pub struct EventLog {
    inner: Rc<RefCell<LogInner>>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("EventLog")
            .field("segments", &inner.storage.segment_count())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl EventLog {
    /// Creates a log over the in-memory backend (the simulation default).
    #[must_use]
    pub fn in_memory() -> Self {
        Self::with_storage(Box::new(MemStorage::new()))
    }

    /// Creates a log over a custom [`LogStorage`] backend.
    #[must_use]
    pub fn with_storage(storage: Box<dyn LogStorage>) -> Self {
        EventLog {
            inner: Rc::new(RefCell::new(LogInner {
                storage,
                open_bytes: 0,
                max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
                snapshots: Vec::new(),
                next_seq: 0,
                stats: LogStats::default(),
            })),
        }
    }

    /// Sets the segment-rotation threshold: a snapshot appended while
    /// the open segment holds at least this many bytes rotates first,
    /// so the snapshot starts the new segment. Rotation happens *only*
    /// at snapshots — every segment but the first therefore begins with
    /// one, which is what makes [`EventLog::seek`] segment-granular.
    pub fn set_max_segment_bytes(&self, max: usize) {
        self.inner.borrow_mut().max_segment_bytes = max.max(1);
    }

    /// Appends one record (CRC-framed). Returns the snapshot sequence
    /// number when the record was a snapshot.
    pub fn append(&self, record: &Record) -> Option<u64> {
        let mut inner = self.inner.borrow_mut();
        let mut seq_out = None;
        let record = match record {
            Record::Snapshot {
                last_processed,
                granted,
                ..
            } => {
                // Snapshots own their sequence numbers: callers pass any
                // seq, the log stamps the real one.
                if inner.open_bytes >= inner.max_segment_bytes {
                    inner.storage.rotate();
                    inner.open_bytes = 0;
                    inner.stats.rotations += 1;
                }
                let seq = inner.next_seq;
                inner.next_seq += 1;
                let segment = inner.storage.segment_count() - 1;
                inner.snapshots.push((segment, *last_processed));
                inner.stats.snapshots += 1;
                seq_out = Some(seq);
                Record::Snapshot {
                    seq,
                    last_processed: *last_processed,
                    granted: *granted,
                }
            }
            other => other.clone(),
        };
        let payload = record.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        let len = u32::try_from(payload.len()).expect("record fits u32");
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        inner.storage.append(&frame);
        inner.open_bytes += frame.len();
        inner.stats.appended += 1;
        seq_out
    }

    /// Decodes every record from segment `from_segment` on, in append
    /// order. A frame that fails its length or CRC check ends that
    /// segment's decode (torn tail) and is counted in
    /// [`LogStats::corrupt`]; later segments still decode.
    #[must_use]
    pub fn replay_from(&self, from_segment: usize) -> Vec<Record> {
        let mut inner = self.inner.borrow_mut();
        let mut records = Vec::new();
        for s in from_segment..inner.storage.segment_count() {
            let bytes = inner.storage.segment(s);
            let mut at = 0usize;
            while at < bytes.len() {
                let Some(record) = decode_frame(&bytes[at..]) else {
                    inner.stats.corrupt += 1;
                    break;
                };
                at += FRAME_HEADER_LEN + record.0;
                records.push(record.1);
            }
        }
        records
    }

    /// Decodes the whole log, in append order.
    #[must_use]
    pub fn replay(&self) -> Vec<Record> {
        self.replay_from(0)
    }

    /// The records needed to reconstruct state *at or beyond* `tag`:
    /// replay starting at the segment of the newest snapshot whose
    /// `last_processed` is at or below `tag` (the whole log when no such
    /// snapshot exists). The first returned record of a non-zero seek is
    /// that snapshot.
    #[must_use]
    pub fn seek(&self, tag: Tag) -> Vec<Record> {
        let from = {
            let inner = self.inner.borrow();
            inner
                .snapshots
                .iter()
                .rev()
                .find(|(_, processed)| processed.is_none_or(|p| p <= tag))
                .map_or(0, |&(segment, _)| segment)
        };
        self.replay_from(from)
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> LogStats {
        self.inner.borrow().stats
    }

    /// Number of storage segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.inner.borrow().storage.segment_count()
    }
}

/// Decodes the frame at the head of `bytes`: `Some((payload_len,
/// record))` or `None` on truncation, CRC mismatch or a malformed
/// payload.
fn decode_frame(bytes: &[u8]) -> Option<(usize, Record)> {
    let (header, rest) = bytes.split_first_chunk::<FRAME_HEADER_LEN>()?;
    let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    let payload = rest.get(..len)?;
    if crc32(payload) != crc {
        return None;
    }
    Some((len, Record::decode(payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tag_ms(ms: u64) -> Tag {
        Tag::new(Instant::from_nanos(ms * 1_000_000), 0)
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Started { anchor: 1_000 },
            Record::Input {
                key: 7,
                tag: Tag::new(Instant::from_nanos(5), 2),
                bytes: vec![1, 2, 3],
            },
            Record::Granted { bound: tag_ms(10) },
            Record::Processed {
                tag: tag_ms(5),
                local: 5_000_123,
            },
            Record::Drained { tag: tag_ms(5) },
            Record::Snapshot {
                seq: 0,
                last_processed: Some(tag_ms(5)),
                granted: Some(tag_ms(10)),
            },
            Record::Snapshot {
                seq: 1,
                last_processed: None,
                granted: None,
            },
        ]
    }

    #[test]
    fn every_record_kind_roundtrips() {
        for record in sample_records() {
            let bytes = record.encode();
            assert_eq!(Record::decode(&bytes), Some(record));
        }
    }

    #[test]
    fn decode_rejects_trailing_and_truncated_bytes() {
        let mut bytes = Record::Processed {
            tag: tag_ms(1),
            local: 7,
        }
        .encode();
        bytes.push(0);
        assert_eq!(Record::decode(&bytes), None, "trailing byte");
        bytes.truncate(bytes.len() - 2);
        assert_eq!(Record::decode(&bytes), None, "truncated");
        assert_eq!(Record::decode(&[99]), None, "unknown kind");
        assert_eq!(Record::decode(&[]), None, "empty");
    }

    #[test]
    fn log_replays_in_append_order() {
        let log = EventLog::in_memory();
        for record in sample_records() {
            log.append(&record);
        }
        let replayed = log.replay();
        assert_eq!(replayed.len(), 7);
        assert_eq!(replayed[0], Record::Started { anchor: 1_000 });
        assert_eq!(log.stats().appended, 7);
        assert_eq!(log.stats().corrupt, 0);
    }

    #[test]
    fn log_stamps_snapshot_sequence_numbers() {
        let log = EventLog::in_memory();
        let snap = Record::Snapshot {
            seq: 999, // caller's seq is ignored
            last_processed: None,
            granted: None,
        };
        assert_eq!(log.append(&snap), Some(0));
        assert_eq!(log.append(&snap), Some(1));
        assert_eq!(log.append(&Record::Started { anchor: 0 }), None);
        let replayed = log.replay();
        assert!(matches!(replayed[0], Record::Snapshot { seq: 0, .. }));
        assert!(matches!(replayed[1], Record::Snapshot { seq: 1, .. }));
    }

    #[test]
    fn snapshots_rotate_full_segments_and_seek_uses_them() {
        let log = EventLog::in_memory();
        log.set_max_segment_bytes(1); // every snapshot rotates
        for ms in [10u64, 20, 30] {
            log.append(&Record::Processed {
                tag: tag_ms(ms),
                local: ms,
            });
            log.append(&Record::Snapshot {
                seq: 0,
                last_processed: Some(tag_ms(ms)),
                granted: None,
            });
        }
        assert_eq!(log.segment_count(), 4, "three rotations after the first");
        assert_eq!(log.stats().rotations, 3);

        // Seeking to 25ms starts at the snapshot that processed 20ms.
        let records = log.seek(tag_ms(25));
        assert_eq!(
            records[0],
            Record::Snapshot {
                seq: 1,
                last_processed: Some(tag_ms(20)),
                granted: None,
            }
        );
        // A tag before every snapshot replays from the start.
        assert_eq!(log.seek(tag_ms(1)).len(), log.replay().len());
        // A tag beyond the newest snapshot starts there.
        let newest = log.seek(tag_ms(99));
        assert!(matches!(newest[0], Record::Snapshot { seq: 2, .. }));
    }

    /// Canned byte segments, for feeding the decoder corrupted storage.
    struct Canned(Vec<Vec<u8>>);
    impl LogStorage for Canned {
        fn append(&mut self, bytes: &[u8]) {
            self.0.last_mut().expect("segment").extend_from_slice(bytes);
        }
        fn rotate(&mut self) {
            self.0.push(Vec::new());
        }
        fn segment_count(&self) -> usize {
            self.0.len()
        }
        fn segment(&self, i: usize) -> Vec<u8> {
            self.0.get(i).cloned().unwrap_or_default()
        }
    }

    fn frame(record: &Record) -> Vec<u8> {
        let payload = record.encode();
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&crc32(&payload).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn corrupt_frames_end_the_segment_but_not_the_log() {
        // Segment 0: good, bit-flipped, good-but-unreachable. Segment 1:
        // good. The flip must cost exactly the rest of segment 0.
        let good = Record::Processed {
            tag: tag_ms(1),
            local: 1,
        };
        let shadowed = Record::Processed {
            tag: tag_ms(2),
            local: 2,
        };
        let next_segment = Record::Processed {
            tag: tag_ms(3),
            local: 3,
        };
        let mut corrupted = frame(&good);
        corrupted[FRAME_HEADER_LEN] ^= 0x80; // flip a payload bit: CRC mismatch
        let mut seg0 = frame(&good);
        seg0.extend_from_slice(&corrupted);
        seg0.extend_from_slice(&frame(&shadowed));
        let log = EventLog::with_storage(Box::new(Canned(vec![seg0, frame(&next_segment)])));
        assert_eq!(log.replay(), vec![good, next_segment]);
        assert_eq!(log.stats().corrupt, 1);

        // A torn tail (truncated frame) ends the segment the same way.
        let mut torn = frame(&Record::Processed {
            tag: tag_ms(4),
            local: 4,
        });
        torn.truncate(torn.len() - 3);
        let survivor = Record::Processed {
            tag: tag_ms(5),
            local: 5,
        };
        let mut seg = frame(&survivor);
        seg.extend_from_slice(&torn);
        let log = EventLog::with_storage(Box::new(Canned(vec![seg])));
        assert_eq!(log.replay(), vec![survivor]);
        assert_eq!(log.stats().corrupt, 1);
    }

    proptest! {
        #[test]
        fn record_roundtrip(
            kind in 0u8..6,
            a in any::<u64>(), b in any::<u32>(), c in any::<u64>(), d in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            has_a in any::<bool>(), has_b in any::<bool>(),
        ) {
            let t1 = Tag::new(Instant::from_nanos(a), b);
            let t2 = Tag::new(Instant::from_nanos(c), d);
            let record = match kind {
                0 => Record::Started { anchor: a },
                1 => Record::Input { key: b, tag: t1, bytes: payload },
                2 => Record::Granted { bound: t1 },
                3 => Record::Processed { tag: t2, local: c },
                4 => Record::Drained { tag: t2 },
                _ => Record::Snapshot {
                    seq: c,
                    last_processed: has_a.then_some(t1),
                    granted: has_b.then_some(t2),
                },
            };
            prop_assert_eq!(Record::decode(&record.encode()), Some(record));
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Record::decode(&bytes);
            let _ = decode_frame(&bytes);
        }
    }
}
