//! SOME/IP wire format (per the AUTOSAR FO R1.5.0 protocol specification)
//! plus the DEAR tag extension.
//!
//! A SOME/IP message has a 16-byte header:
//!
//! ```text
//! +---------------------------+---------------------------+
//! |        Message ID (Service ID u16 / Method ID u16)    |
//! +--------------------------------------------------------+
//! |        Length (bytes from Request ID to end)           |
//! +--------------------------------------------------------+
//! |        Request ID (Client ID u16 / Session ID u16)     |
//! +------------+------------+---------------+--------------+
//! | Proto Ver  | Iface Ver  | Message Type  | Return Code  |
//! +------------+------------+---------------+--------------+
//! |                      Payload ...                       |
//! ```
//!
//! **DEAR extension** (paper §III.B): the modified binding "optionally
//! append\[s\] tags to outgoing messages and ... retrieve\[s\] tags from
//! incoming messages if available". We signal the presence of the 16-byte
//! tag trailer (magic `"DEAR"`, 8-byte nanoseconds, 4-byte microstep) by
//! bumping the protocol version to [`PROTOCOL_VERSION_DEAR`]. This keeps
//! plain SOME/IP messages byte-identical to the standard and makes the
//! extension "a new third-party middleware that extends over SOME/IP".

use dear_sim::{FrameBuf, FramePool};
use std::error::Error;
use std::fmt;

/// Standard SOME/IP protocol version.
pub const PROTOCOL_VERSION: u8 = 0x01;
/// Protocol version advertised by the DEAR-modified binding (tag trailer
/// present).
pub const PROTOCOL_VERSION_DEAR: u8 = 0x02;
/// Magic bytes opening the tag trailer.
pub const TAG_MAGIC: [u8; 4] = *b"DEAR";
/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 16;
/// Size of the tag trailer in bytes.
pub const TAG_TRAILER_LEN: usize = 16;

/// Message ID: service + method/event identifier.
///
/// Event IDs conventionally have the top bit set (0x8000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId {
    /// The service this message addresses.
    pub service: u16,
    /// Method or event within the service.
    pub method: u16,
}

impl MessageId {
    /// Creates a message id.
    #[must_use]
    pub const fn new(service: u16, method: u16) -> Self {
        MessageId { service, method }
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}.{:04x}", self.service, self.method)
    }
}

/// Request ID: client + session identifier, matching responses to requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId {
    /// The calling client.
    pub client: u16,
    /// Session counter within the client.
    pub session: u16,
}

impl RequestId {
    /// Creates a request id.
    #[must_use]
    pub const fn new(client: u16, session: u16) -> Self {
        RequestId { client, session }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}:{:04x}", self.client, self.session)
    }
}

/// SOME/IP message types (subset relevant to AP request/response/event
/// communication).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageType {
    /// A method call expecting a response.
    Request = 0x00,
    /// A fire-and-forget method call.
    RequestNoReturn = 0x01,
    /// An event notification.
    Notification = 0x02,
    /// A successful method response.
    Response = 0x80,
    /// An error response.
    Error = 0x81,
}

impl MessageType {
    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownMessageType`] for unassigned values.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0x00 => Ok(MessageType::Request),
            0x01 => Ok(MessageType::RequestNoReturn),
            0x02 => Ok(MessageType::Notification),
            0x80 => Ok(MessageType::Response),
            0x81 => Ok(MessageType::Error),
            other => Err(WireError::UnknownMessageType(other)),
        }
    }
}

/// SOME/IP return codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ReturnCode {
    /// No error.
    Ok = 0x00,
    /// Unspecified error.
    NotOk = 0x01,
    /// The requested service id is unknown.
    UnknownService = 0x02,
    /// The requested method id is unknown.
    UnknownMethod = 0x03,
    /// The service is not ready to serve requests.
    NotReady = 0x04,
    /// Malformed message.
    MalformedMessage = 0x09,
}

impl ReturnCode {
    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownReturnCode`] for unassigned values.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0x00 => Ok(ReturnCode::Ok),
            0x01 => Ok(ReturnCode::NotOk),
            0x02 => Ok(ReturnCode::UnknownService),
            0x03 => Ok(ReturnCode::UnknownMethod),
            0x04 => Ok(ReturnCode::NotReady),
            0x09 => Ok(ReturnCode::MalformedMessage),
            other => Err(WireError::UnknownReturnCode(other)),
        }
    }
}

/// A logical timestamp carried on the wire by the DEAR extension.
///
/// Mirrors `dear_core::Tag` but is defined independently so that the
/// middleware layer has no dependency on the reactor runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WireTag {
    /// Nanoseconds since the shared (synchronized) time epoch.
    pub nanos: u64,
    /// Microstep within the time point.
    pub microstep: u32,
}

impl WireTag {
    /// Creates a wire tag.
    #[must_use]
    pub const fn new(nanos: u64, microstep: u32) -> Self {
        WireTag { nanos, microstep }
    }
}

impl fmt::Display for WireTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}ns, {})", self.nanos, self.microstep)
    }
}

/// Errors produced while encoding or decoding SOME/IP messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a header, or fewer than the length field claims.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The length field disagrees with the frame size.
    LengthMismatch {
        /// Length field value.
        declared: u32,
        /// Actual body size.
        actual: usize,
    },
    /// Unknown message type byte.
    UnknownMessageType(u8),
    /// Unknown return code byte.
    UnknownReturnCode(u8),
    /// Unsupported protocol version byte.
    UnsupportedProtocol(u8),
    /// A DEAR frame whose trailer lacks the magic bytes.
    BadTagMagic,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length field {declared} disagrees with body size {actual}"
                )
            }
            WireError::UnknownMessageType(v) => write!(f, "unknown message type 0x{v:02x}"),
            WireError::UnknownReturnCode(v) => write!(f, "unknown return code 0x{v:02x}"),
            WireError::UnsupportedProtocol(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadTagMagic => write!(f, "tag trailer magic missing in DEAR frame"),
        }
    }
}

impl Error for WireError {}

/// A complete SOME/IP message (header fields + payload + optional tag).
///
/// The payload is a [`FrameBuf`] view: a message decoded with
/// [`SomeIpMessage::decode_frame`] borrows the received frame's bytes in
/// place, and one assembled with [`SomeIpMessage::into_frame`] wraps the
/// wire header around a pooled payload without copying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SomeIpMessage {
    /// Service/method address.
    pub message_id: MessageId,
    /// Client/session correlation id.
    pub request_id: RequestId,
    /// Interface major version.
    pub interface_version: u8,
    /// Kind of message.
    pub message_type: MessageType,
    /// Result status (meaningful on responses).
    pub return_code: ReturnCode,
    /// Serialized arguments / return values.
    pub payload: FrameBuf,
    /// The DEAR logical timestamp, when sent by a modified binding.
    pub tag: Option<WireTag>,
}

impl SomeIpMessage {
    /// Creates a request message.
    #[must_use]
    pub fn request(
        message_id: MessageId,
        request_id: RequestId,
        payload: impl Into<FrameBuf>,
    ) -> Self {
        SomeIpMessage {
            message_id,
            request_id,
            interface_version: 1,
            message_type: MessageType::Request,
            return_code: ReturnCode::Ok,
            payload: payload.into(),
            tag: None,
        }
    }

    /// Creates the response to a request, reusing its addressing.
    #[must_use]
    pub fn response_to(request: &SomeIpMessage, payload: impl Into<FrameBuf>) -> Self {
        SomeIpMessage {
            message_id: request.message_id,
            request_id: request.request_id,
            interface_version: request.interface_version,
            message_type: MessageType::Response,
            return_code: ReturnCode::Ok,
            payload: payload.into(),
            tag: None,
        }
    }

    /// Creates an error response to a request.
    #[must_use]
    pub fn error_to(request: &SomeIpMessage, code: ReturnCode) -> Self {
        SomeIpMessage {
            message_id: request.message_id,
            request_id: request.request_id,
            interface_version: request.interface_version,
            message_type: MessageType::Error,
            return_code: code,
            payload: FrameBuf::new(),
            tag: None,
        }
    }

    /// Creates an event notification.
    #[must_use]
    pub fn notification(message_id: MessageId, payload: impl Into<FrameBuf>) -> Self {
        SomeIpMessage {
            message_id,
            request_id: RequestId::default(),
            interface_version: 1,
            message_type: MessageType::Notification,
            return_code: ReturnCode::Ok,
            payload: payload.into(),
            tag: None,
        }
    }

    /// Returns a copy carrying the given tag (the modified binding's
    /// "append tag" step).
    #[must_use]
    pub fn with_tag(mut self, tag: WireTag) -> Self {
        self.tag = Some(tag);
        self
    }

    /// The 16 header bytes this message puts on the wire.
    fn header_bytes(&self) -> [u8; HEADER_LEN] {
        let trailer = if self.tag.is_some() {
            TAG_TRAILER_LEN
        } else {
            0
        };
        let length = u32::try_from(8 + self.payload.len() + trailer).expect("payload too large");
        let mut h = [0u8; HEADER_LEN];
        h[0..2].copy_from_slice(&self.message_id.service.to_be_bytes());
        h[2..4].copy_from_slice(&self.message_id.method.to_be_bytes());
        h[4..8].copy_from_slice(&length.to_be_bytes());
        h[8..10].copy_from_slice(&self.request_id.client.to_be_bytes());
        h[10..12].copy_from_slice(&self.request_id.session.to_be_bytes());
        h[12] = if self.tag.is_some() {
            PROTOCOL_VERSION_DEAR
        } else {
            PROTOCOL_VERSION
        };
        h[13] = self.interface_version;
        h[14] = self.message_type as u8;
        h[15] = self.return_code as u8;
        h
    }

    /// The 16 trailer bytes of a DEAR tag.
    fn trailer_bytes(tag: WireTag) -> [u8; TAG_TRAILER_LEN] {
        let mut t = [0u8; TAG_TRAILER_LEN];
        t[0..4].copy_from_slice(&TAG_MAGIC);
        t[4..12].copy_from_slice(&tag.nanos.to_be_bytes());
        t[12..16].copy_from_slice(&tag.microstep.to_be_bytes());
        t
    }

    /// Serializes the message to owned wire bytes.
    ///
    /// This is the allocating reference encoder; the hot path uses
    /// [`SomeIpMessage::into_frame`], whose output is byte-identical
    /// (property-tested in `tests/frame_path.rs`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let trailer = if self.tag.is_some() {
            TAG_TRAILER_LEN
        } else {
            0
        };
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len() + trailer);
        buf.extend_from_slice(&self.header_bytes());
        buf.extend_from_slice(&self.payload);
        if let Some(tag) = self.tag {
            buf.extend_from_slice(&Self::trailer_bytes(tag));
        }
        buf
    }

    /// Assembles the wire frame into a pooled buffer, consuming the
    /// message.
    ///
    /// When the payload is the unique view of a buffer with
    /// [`HEADER_LEN`] bytes of headroom (the state a pooled
    /// [`PayloadWriter`](crate::PayloadWriter) produces), the header and
    /// optional tag trailer are written *around the payload in place* —
    /// zero payload copies and, in steady state, zero allocations.
    /// Otherwise the frame is assembled by one copy into a fresh pooled
    /// buffer. Both paths produce bytes identical to
    /// [`SomeIpMessage::encode`].
    #[must_use]
    pub fn into_frame(self, pool: &FramePool) -> FrameBuf {
        let header = self.header_bytes();
        let trailer = self.tag.map(Self::trailer_bytes);
        let trailer: &[u8] = trailer.as_ref().map_or(&[], |t| &t[..]);
        match self.payload.extend_in_place(&header, trailer) {
            Ok(frame) => frame,
            Err(payload) => {
                let mut buf = pool.acquire();
                buf.extend_from_slice(&header);
                buf.extend_from_slice(&payload);
                buf.extend_from_slice(trailer);
                buf.freeze()
            }
        }
    }

    /// Parses the header and locates the payload: returns the message
    /// with an **empty** payload plus the payload's byte range within
    /// `bytes` (the caller decides whether to view or copy it).
    fn parse(bytes: &[u8]) -> Result<(Self, std::ops::Range<usize>), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: bytes.len(),
            });
        }
        let be16 = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        let service = be16(0);
        let method = be16(2);
        let length = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let client = be16(8);
        let session = be16(10);
        let protocol = bytes[12];
        let interface_version = bytes[13];
        let message_type = MessageType::from_u8(bytes[14])?;
        let return_code = ReturnCode::from_u8(bytes[15])?;

        let body = &bytes[HEADER_LEN..];
        let declared_body = (length as usize)
            .checked_sub(8)
            .ok_or(WireError::LengthMismatch {
                declared: length,
                actual: body.len(),
            })?;
        if body.len() < declared_body {
            return Err(WireError::Truncated {
                needed: HEADER_LEN + declared_body,
                got: bytes.len(),
            });
        }
        if body.len() != declared_body {
            return Err(WireError::LengthMismatch {
                declared: length,
                actual: body.len(),
            });
        }

        let (payload_len, tag) = match protocol {
            PROTOCOL_VERSION => (body.len(), None),
            PROTOCOL_VERSION_DEAR => {
                if body.len() < TAG_TRAILER_LEN {
                    return Err(WireError::Truncated {
                        needed: HEADER_LEN + TAG_TRAILER_LEN,
                        got: bytes.len(),
                    });
                }
                let trailer = &body[body.len() - TAG_TRAILER_LEN..];
                if trailer[0..4] != TAG_MAGIC {
                    return Err(WireError::BadTagMagic);
                }
                let nanos = u64::from_be_bytes(trailer[4..12].try_into().expect("slice len"));
                let microstep = u32::from_be_bytes(trailer[12..16].try_into().expect("slice len"));
                (
                    body.len() - TAG_TRAILER_LEN,
                    Some(WireTag { nanos, microstep }),
                )
            }
            other => return Err(WireError::UnsupportedProtocol(other)),
        };

        Ok((
            SomeIpMessage {
                message_id: MessageId { service, method },
                request_id: RequestId { client, session },
                interface_version,
                message_type,
                return_code,
                payload: FrameBuf::new(),
                tag,
            },
            HEADER_LEN..HEADER_LEN + payload_len,
        ))
    }

    /// Parses a message from wire bytes, copying the payload out.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated frames, length mismatches,
    /// unknown enums, unsupported protocol versions, or a missing tag
    /// trailer in a frame that advertises one.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (mut msg, payload) = Self::parse(bytes)?;
        msg.payload = FrameBuf::from(&bytes[payload]);
        Ok(msg)
    }

    /// Parses a message from a received frame **without copying**: the
    /// returned message's payload is a [`FrameBuf`] view into `frame`'s
    /// buffer, read in place by the layers above.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SomeIpMessage::decode`].
    pub fn decode_frame(frame: &FrameBuf) -> Result<Self, WireError> {
        let (mut msg, payload) = Self::parse(frame)?;
        msg.payload = frame.slice(payload.start, payload.end);
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn golden_bytes_plain_request() {
        let msg = SomeIpMessage {
            message_id: MessageId::new(0x1234, 0x0421),
            request_id: RequestId::new(0x0001, 0x0002),
            interface_version: 3,
            message_type: MessageType::Request,
            return_code: ReturnCode::Ok,
            payload: vec![0xDE, 0xAD].into(),
            tag: None,
        };
        let bytes = msg.encode();
        assert_eq!(
            bytes,
            vec![
                0x12, 0x34, 0x04, 0x21, // message id
                0x00, 0x00, 0x00, 0x0A, // length = 8 + 2
                0x00, 0x01, 0x00, 0x02, // request id
                0x01, 0x03, 0x00, 0x00, // proto, iface, type, retcode
                0xDE, 0xAD, // payload
            ]
        );
        assert_eq!(SomeIpMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn golden_bytes_tagged_notification() {
        let msg = SomeIpMessage::notification(MessageId::new(0x00AA, 0x8001), vec![7])
            .with_tag(WireTag::new(0x0102030405060708, 9));
        let bytes = msg.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 1 + TAG_TRAILER_LEN);
        assert_eq!(bytes[12], PROTOCOL_VERSION_DEAR);
        // length covers request-id half of header + payload + trailer
        assert_eq!(
            u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            8 + 1 + 16
        );
        assert_eq!(&bytes[17..21], b"DEAR");
        let decoded = SomeIpMessage::decode(&bytes).unwrap();
        assert_eq!(decoded.tag, Some(WireTag::new(0x0102030405060708, 9)));
        assert_eq!(decoded.payload, vec![7]);
    }

    #[test]
    fn untagged_messages_are_standard_someip() {
        let msg = SomeIpMessage::request(MessageId::new(1, 2), RequestId::new(3, 4), vec![1, 2, 3]);
        let bytes = msg.encode();
        assert_eq!(bytes[12], PROTOCOL_VERSION, "standard protocol version");
        assert_eq!(bytes.len(), HEADER_LEN + 3, "no trailer");
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        let msg = SomeIpMessage::request(MessageId::new(1, 2), RequestId::new(3, 4), vec![9; 10]);
        let bytes = msg.encode();
        for cut in [0, 5, HEADER_LEN, bytes.len() - 1] {
            assert!(
                SomeIpMessage::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let msg = SomeIpMessage::request(MessageId::new(1, 2), RequestId::new(3, 4), vec![1]);
        let mut bytes = msg.encode();
        bytes.extend_from_slice(&[0xFF; 4]); // extra trailing garbage
        assert!(matches!(
            SomeIpMessage::decode(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_unknown_enums_and_protocols() {
        let msg = SomeIpMessage::request(MessageId::new(1, 2), RequestId::new(3, 4), vec![]);
        let mut bad_type = msg.encode();
        bad_type[14] = 0x55;
        assert_eq!(
            SomeIpMessage::decode(&bad_type),
            Err(WireError::UnknownMessageType(0x55))
        );
        let mut bad_ret = msg.encode();
        bad_ret[15] = 0x77;
        assert_eq!(
            SomeIpMessage::decode(&bad_ret),
            Err(WireError::UnknownReturnCode(0x77))
        );
        let mut bad_proto = msg.encode();
        bad_proto[12] = 0x09;
        assert_eq!(
            SomeIpMessage::decode(&bad_proto),
            Err(WireError::UnsupportedProtocol(0x09))
        );
    }

    #[test]
    fn decode_rejects_bad_tag_magic() {
        let msg =
            SomeIpMessage::notification(MessageId::new(1, 2), vec![]).with_tag(WireTag::new(5, 0));
        let mut bytes = msg.encode();
        let magic_at = bytes.len() - TAG_TRAILER_LEN;
        bytes[magic_at] = b'X';
        assert_eq!(SomeIpMessage::decode(&bytes), Err(WireError::BadTagMagic));
    }

    #[test]
    fn response_and_error_constructors_echo_addressing() {
        let req = SomeIpMessage::request(MessageId::new(10, 20), RequestId::new(30, 40), vec![1]);
        let resp = SomeIpMessage::response_to(&req, vec![2]);
        assert_eq!(resp.message_id, req.message_id);
        assert_eq!(resp.request_id, req.request_id);
        assert_eq!(resp.message_type, MessageType::Response);
        let err = SomeIpMessage::error_to(&req, ReturnCode::UnknownMethod);
        assert_eq!(err.message_type, MessageType::Error);
        assert_eq!(err.return_code, ReturnCode::UnknownMethod);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            service in any::<u16>(), method in any::<u16>(),
            client in any::<u16>(), session in any::<u16>(),
            iface in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            tag in proptest::option::of((any::<u64>(), any::<u32>())),
        ) {
            let msg = SomeIpMessage {
                message_id: MessageId::new(service, method),
                request_id: RequestId::new(client, session),
                interface_version: iface,
                message_type: MessageType::Request,
                return_code: ReturnCode::Ok,
                payload: payload.into(),
                tag: tag.map(|(n, m)| WireTag::new(n, m)),
            };
            let decoded = SomeIpMessage::decode(&msg.encode()).unwrap();
            prop_assert_eq!(decoded, msg);
        }
    }
}
