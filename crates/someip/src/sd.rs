//! SOME/IP service discovery (SOME/IP-SD), simplified.
//!
//! "SWCs provide or request services as needed; the binding between
//! clients and servers is determined at runtime by the middleware through
//! service discovery. The dynamic binding of services is the core
//! mechanism for providing adaptivity in AP" (paper §II.A).
//!
//! [`SdRegistry`] models the discovery domain one multicast segment would
//! span: servers *offer* `(service, instance)` pairs with a TTL, clients
//! *find* instances (optionally asynchronously — the callback fires when a
//! matching offer appears) and *subscribe* to eventgroups.
//!
//! # Redundant providers and failover
//!
//! Multiple providers may offer distinct instances of the *same* service
//! with a [priority](Offer::priority) (lower value wins; ties break on
//! the lower instance id, so selection is always deterministic).
//! [`SdRegistry::find`] resolves to the best valid offer, and
//! [`SdRegistry::watch`] observes it: whenever the best offer for a
//! service changes — a higher-priority provider appears, the current one
//! sends StopOffer, or its TTL lapses — every watcher fires exactly once
//! with the new best (or `None`), at a well-defined simulation tag.
//!
//! TTL doubles as the provider heartbeat: as long as a service is
//! watched, each offer schedules a purge at its expiry instant, so a
//! provider that silently dies is withdrawn deterministically one
//! nanosecond after its last renewal lapses — no polling, no wall-clock
//! races. `stop_offer` additionally drops the withdrawn instance's
//! subscriptions, so a re-offer never delivers to stale subscribers.

use dear_sim::{NodeId, Simulation};
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Identifies a concrete instance of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceInstance {
    /// Service interface id.
    pub service: u16,
    /// Instance id (`ANY_INSTANCE` matches any in find operations).
    pub instance: u16,
}

/// Wildcard instance id accepted by find/subscribe operations.
pub const ANY_INSTANCE: u16 = 0xFFFF;

impl ServiceInstance {
    /// Creates a service-instance id.
    #[must_use]
    pub const fn new(service: u16, instance: u16) -> Self {
        ServiceInstance { service, instance }
    }
}

impl fmt::Display for ServiceInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}:{:04x}", self.service, self.instance)
    }
}

/// An active service offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// The offered instance.
    pub instance: ServiceInstance,
    /// Node hosting the server.
    pub node: NodeId,
    /// Offer expiry (true simulation time).
    pub valid_until: Instant,
    /// Selection priority among redundant offers of the same service:
    /// lower values win, ties break on the lower instance id. Plain
    /// offers default to priority 0.
    pub priority: u8,
}

type FindCallback = Box<dyn FnOnce(&mut Simulation, Offer)>;
type WatchCallback = Rc<dyn Fn(&mut Simulation, Option<Offer>)>;

struct WatchEntry {
    service: u16,
    pattern: u16,
    /// The best offer last reported, to fire only on change.
    last: Option<Offer>,
    callback: WatchCallback,
}

#[derive(Default)]
struct SdInner {
    // BTreeMaps, not HashMaps: registry iteration order feeds find() and
    // notification fan-out, so it must not depend on hasher state — a
    // latent determinism hazard in a determinism repo.
    offers: BTreeMap<ServiceInstance, Offer>,
    /// Pending async finds: (service, instance-pattern, callback).
    waiting: Vec<(u16, u16, FindCallback)>,
    /// Subscriptions: (service, instance, eventgroup) -> subscriber nodes.
    subscriptions: BTreeMap<(u16, u16, u16), Vec<NodeId>>,
    /// Best-offer watchers, fired in registration order.
    watchers: Vec<WatchEntry>,
}

impl SdInner {
    /// Withdraws an offer together with the instance's subscriptions —
    /// the single wipe shared by StopOffer and TTL expiry, so the two
    /// withdrawal paths can never drift apart (a stale subscriber on
    /// either path would receive a re-offered incarnation's traffic).
    fn withdraw(&mut self, instance: ServiceInstance) {
        self.offers.remove(&instance);
        self.subscriptions.retain(|&(service, inst, _), _| {
            (service, inst) != (instance.service, instance.instance)
        });
    }
}

/// The deterministic best-offer choice for `(service, pattern)`:
/// lowest `(priority, instance)` among valid offers.
fn best_of(
    offers: &BTreeMap<ServiceInstance, Offer>,
    now: Instant,
    service: u16,
    pattern: u16,
) -> Option<Offer> {
    offers
        .values()
        .filter(|o| {
            o.instance.service == service
                && (pattern == ANY_INSTANCE || o.instance.instance == pattern)
                && o.valid_until >= now
        })
        .min_by_key(|o| (o.priority, o.instance.instance))
        .copied()
}

/// A shared handle to the discovery domain.
///
/// # Examples
///
/// ```
/// use dear_sim::{NodeId, Simulation};
/// use dear_someip::{SdRegistry, ServiceInstance};
/// use dear_time::Duration;
///
/// let mut sim = Simulation::new(0);
/// let sd = SdRegistry::new();
/// sd.offer(&mut sim, ServiceInstance::new(0x1234, 1), NodeId(2), Duration::from_secs(5));
/// let offer = sd.find(&sim, 0x1234, dear_someip::ANY_INSTANCE).unwrap();
/// assert_eq!(offer.node, NodeId(2));
/// ```
#[derive(Clone, Default)]
pub struct SdRegistry(Rc<RefCell<SdInner>>);

impl fmt::Debug for SdRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("SdRegistry")
            .field("offers", &inner.offers.len())
            .field("waiting_finds", &inner.waiting.len())
            .field("subscriptions", &inner.subscriptions.len())
            .finish()
    }
}

impl SdRegistry {
    /// Creates an empty discovery domain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a service instance from `node` for `ttl` at priority 0.
    ///
    /// Pending asynchronous finds matching the offer fire immediately
    /// (at the current simulation time).
    pub fn offer(
        &self,
        sim: &mut Simulation,
        instance: ServiceInstance,
        node: NodeId,
        ttl: Duration,
    ) {
        self.offer_prioritized(sim, instance, node, ttl, 0);
    }

    /// Offers a service instance with an explicit selection priority
    /// (lower wins; see [`Offer::priority`]). Re-offering the same
    /// instance renews its TTL — the SOME/IP-SD heartbeat.
    pub fn offer_prioritized(
        &self,
        sim: &mut Simulation,
        instance: ServiceInstance,
        node: NodeId,
        ttl: Duration,
        priority: u8,
    ) {
        let valid_until = sim.now().saturating_add(ttl);
        let offer = Offer {
            instance,
            node,
            valid_until,
            priority,
        };
        let (ready, watched): (Vec<FindCallback>, bool) = {
            let mut inner = self.0.borrow_mut();
            inner.offers.insert(instance, offer);
            let mut ready = Vec::new();
            let mut remaining = Vec::new();
            for (service, pattern, cb) in inner.waiting.drain(..) {
                if service == instance.service
                    && (pattern == ANY_INSTANCE || pattern == instance.instance)
                {
                    ready.push(cb);
                } else {
                    remaining.push((service, pattern, cb));
                }
            }
            inner.waiting = remaining;
            let watched = inner.watchers.iter().any(|w| w.service == instance.service);
            (ready, watched)
        };
        // Watched services get active expiry: the TTL is a heartbeat
        // deadline, enforced at a well-defined tag. Unwatched services
        // keep the passive model (validity checked at lookup time) so
        // plans without failover schedule zero extra events.
        if watched && valid_until < Instant::MAX {
            self.arm_expiry(sim, instance, valid_until);
        }
        for cb in ready {
            cb(sim, offer);
        }
        self.notify_watchers(sim);
    }

    /// Withdraws an offer (SOME/IP-SD StopOffer).
    ///
    /// All subscriptions to the withdrawn instance are dropped with it:
    /// a later re-offer of the same instance starts with an empty
    /// subscriber set, so notifications can never reach subscribers of
    /// the dead incarnation. Watchers of the service fire at the current
    /// tag if the withdrawal changed their best offer.
    pub fn stop_offer(&self, sim: &mut Simulation, instance: ServiceInstance) {
        self.0.borrow_mut().withdraw(instance);
        self.notify_watchers(sim);
    }

    /// Finds a currently valid offer. `instance` may be [`ANY_INSTANCE`].
    ///
    /// The choice among redundant offers is deterministic: lowest
    /// [`Offer::priority`] wins, ties break on the lowest instance id.
    #[must_use]
    pub fn find(&self, sim: &Simulation, service: u16, instance: u16) -> Option<Offer> {
        best_of(&self.0.borrow().offers, sim.now(), service, instance)
    }

    /// Watches the best valid offer for `(service, instance)` (the
    /// pattern may be [`ANY_INSTANCE`]): `callback` fires whenever it
    /// changes — a better offer appears, the current best is withdrawn
    /// via [`SdRegistry::stop_offer`], or its TTL lapses — with the new
    /// best (or `None` when none is left). It fires immediately for the
    /// current state, so the caller needs no separate initial `find`.
    ///
    /// Registering a watcher switches the service to active TTL expiry
    /// (see the module docs); watchers fire in registration order.
    pub fn watch(
        &self,
        sim: &mut Simulation,
        service: u16,
        instance: u16,
        callback: impl Fn(&mut Simulation, Option<Offer>) + 'static,
    ) {
        let (initial, callback, expiries): (Option<Offer>, WatchCallback, Vec<_>) = {
            let mut inner = self.0.borrow_mut();
            let initial = best_of(&inner.offers, sim.now(), service, instance);
            let callback: WatchCallback = Rc::new(callback);
            inner.watchers.push(WatchEntry {
                service,
                pattern: instance,
                last: initial,
                callback: callback.clone(),
            });
            // Offers made before the first watcher existed never armed an
            // expiry event; arm them now so their TTLs are enforced too.
            let expiries = inner
                .offers
                .values()
                .filter(|o| o.instance.service == service && o.valid_until < Instant::MAX)
                .map(|o| (o.instance, o.valid_until))
                .collect();
            (initial, callback, expiries)
        };
        for (inst, valid_until) in expiries {
            self.arm_expiry(sim, inst, valid_until);
        }
        callback(sim, initial);
    }

    /// Schedules the purge of `instance` one nanosecond after
    /// `valid_until`, unless the offer was renewed in the meantime.
    fn arm_expiry(&self, sim: &mut Simulation, instance: ServiceInstance, valid_until: Instant) {
        let sd = self.clone();
        sim.schedule_at(
            valid_until.saturating_add(Duration::from_nanos(1)),
            move |sim| {
                let expired = {
                    let mut inner = sd.0.borrow_mut();
                    // A renewal moved valid_until; this check is stale then.
                    let expired = inner
                        .offers
                        .get(&instance)
                        .is_some_and(|o| o.valid_until == valid_until);
                    if expired {
                        inner.withdraw(instance);
                    }
                    expired
                };
                if expired {
                    sim.trace_with("sd", || format!("offer {instance} expired"));
                    sd.notify_watchers(sim);
                }
            },
        );
    }

    /// Fires every watcher whose best offer changed since it last fired.
    fn notify_watchers(&self, sim: &mut Simulation) {
        let ready: Vec<(WatchCallback, Option<Offer>)> = {
            let mut inner = self.0.borrow_mut();
            let now = sim.now();
            let mut ready = Vec::new();
            let SdInner {
                offers, watchers, ..
            } = &mut *inner;
            for w in watchers.iter_mut() {
                let best = best_of(offers, now, w.service, w.pattern);
                // A TTL renewal only moves `valid_until`; the provider is
                // the same, so the watcher stays quiet.
                let same_provider = match (&w.last, &best) {
                    (None, None) => true,
                    (Some(a), Some(b)) => {
                        a.instance == b.instance && a.node == b.node && a.priority == b.priority
                    }
                    _ => false,
                };
                w.last = best;
                if !same_provider {
                    ready.push((w.callback.clone(), best));
                }
            }
            ready
        };
        for (cb, best) in ready {
            cb(sim, best);
        }
    }

    /// Finds asynchronously: `callback` fires now if a matching offer
    /// exists, or as soon as one appears.
    pub fn find_async(
        &self,
        sim: &mut Simulation,
        service: u16,
        instance: u16,
        callback: impl FnOnce(&mut Simulation, Offer) + 'static,
    ) {
        if let Some(offer) = self.find(sim, service, instance) {
            callback(sim, offer);
        } else {
            self.0
                .borrow_mut()
                .waiting
                .push((service, instance, Box::new(callback)));
        }
    }

    /// Subscribes `subscriber` to an eventgroup of a service instance.
    ///
    /// Duplicate subscriptions are idempotent.
    pub fn subscribe(&self, instance: ServiceInstance, eventgroup: u16, subscriber: NodeId) {
        let mut inner = self.0.borrow_mut();
        let subs = inner
            .subscriptions
            .entry((instance.service, instance.instance, eventgroup))
            .or_default();
        if !subs.contains(&subscriber) {
            subs.push(subscriber);
            subs.sort_unstable();
        }
    }

    /// Removes a subscription.
    pub fn unsubscribe(&self, instance: ServiceInstance, eventgroup: u16, subscriber: NodeId) {
        if let Some(subs) = self.0.borrow_mut().subscriptions.get_mut(&(
            instance.service,
            instance.instance,
            eventgroup,
        )) {
            subs.retain(|&n| n != subscriber);
        }
    }

    /// Current subscribers of an eventgroup (sorted, deterministic).
    #[must_use]
    pub fn subscribers(&self, instance: ServiceInstance, eventgroup: u16) -> Vec<NodeId> {
        self.0
            .borrow()
            .subscriptions
            .get(&(instance.service, instance.instance, eventgroup))
            .cloned()
            .unwrap_or_default()
    }

    /// All currently valid offers of `service`, best first (ascending
    /// `(priority, instance)` — the same deterministic order
    /// [`SdRegistry::find`] resolves in).
    #[must_use]
    pub fn offers_of(&self, sim: &Simulation, service: u16) -> Vec<Offer> {
        let inner = self.0.borrow();
        let mut offers: Vec<Offer> = inner
            .offers
            .values()
            .filter(|o| o.instance.service == service && o.valid_until >= sim.now())
            .copied()
            .collect();
        offers.sort_by_key(|o| (o.priority, o.instance.instance));
        offers
    }

    /// Number of currently stored offers (including possibly expired ones
    /// that have not been purged).
    #[must_use]
    pub fn offer_count(&self) -> usize {
        self.0.borrow().offers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_then_find() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        assert!(sd.find(&sim, 7, ANY_INSTANCE).is_none());
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 1),
            NodeId(3),
            Duration::from_secs(1),
        );
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(3));
        assert_eq!(sd.find(&sim, 7, 1).unwrap().node, NodeId(3));
        assert!(sd.find(&sim, 7, 2).is_none());
        assert!(sd.find(&sim, 8, ANY_INSTANCE).is_none());
    }

    #[test]
    fn offers_expire_by_ttl() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 1),
            NodeId(3),
            Duration::from_millis(10),
        );
        sim.run_until(Instant::from_millis(5));
        assert!(sd.find(&sim, 7, 1).is_some());
        sim.run_until(Instant::from_millis(11));
        assert!(sd.find(&sim, 7, 1).is_none(), "expired");
    }

    #[test]
    fn stop_offer_withdraws() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(7, 1);
        sd.offer(&mut sim, inst, NodeId(3), Duration::from_secs(1));
        sd.stop_offer(&mut sim, inst);
        assert!(sd.find(&sim, 7, 1).is_none());
    }

    #[test]
    fn priority_selects_best_and_reroutes_on_withdrawal() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let primary = ServiceInstance::new(7, 1);
        let backup = ServiceInstance::new(7, 2);
        sd.offer_prioritized(&mut sim, backup, NodeId(5), Duration::from_secs(10), 1);
        sd.offer_prioritized(&mut sim, primary, NodeId(4), Duration::from_secs(10), 0);
        // Priority beats instance-id order and offer order.
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(4));
        sd.stop_offer(&mut sim, primary);
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(5));
        // The primary coming back outranks the backup again.
        sd.offer_prioritized(&mut sim, primary, NodeId(4), Duration::from_secs(10), 0);
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(4));
    }

    #[test]
    fn stop_offer_wipes_subscriptions_and_reoffer_starts_clean() {
        // SD churn regression: a StopOffer/re-offer cycle must rebuild
        // the subscriber set from scratch — notifications of the new
        // incarnation can never reach subscribers of the dead one.
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(7, 1);
        sd.offer(&mut sim, inst, NodeId(3), Duration::from_secs(10));
        sd.subscribe(inst, 1, NodeId(8));
        sd.subscribe(inst, 2, NodeId(9));
        assert_eq!(sd.subscribers(inst, 1), vec![NodeId(8)]);
        sd.stop_offer(&mut sim, inst);
        assert!(sd.subscribers(inst, 1).is_empty(), "stale subscriber kept");
        assert!(sd.subscribers(inst, 2).is_empty(), "stale subscriber kept");
        // A different instance of the same service is untouched.
        let other = ServiceInstance::new(7, 3);
        sd.subscribe(other, 1, NodeId(10));
        sd.stop_offer(&mut sim, inst);
        assert_eq!(sd.subscribers(other, 1), vec![NodeId(10)]);
        // Re-offer: the subscriber set is rebuilt deterministically by
        // fresh subscribe calls only.
        sd.offer(&mut sim, inst, NodeId(3), Duration::from_secs(10));
        assert!(sd.subscribers(inst, 1).is_empty());
        sd.subscribe(inst, 1, NodeId(11));
        assert_eq!(sd.subscribers(inst, 1), vec![NodeId(11)]);
    }

    #[test]
    fn find_async_after_stop_offer_observes_the_new_offer() {
        // SD churn regression: a find resolving after a StopOffer must
        // see the replacement offer, never the dead one.
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(9, 1);
        sd.offer(&mut sim, inst, NodeId(1), Duration::from_secs(10));
        sd.stop_offer(&mut sim, inst);
        let hit = Rc::new(RefCell::new(None));
        let sink = hit.clone();
        sd.find_async(&mut sim, 9, ANY_INSTANCE, move |sim, offer| {
            *sink.borrow_mut() = Some((sim.now(), offer.node));
        });
        assert!(hit.borrow().is_none(), "dead offer must not resolve");
        let sd2 = sd.clone();
        sim.schedule_at(Instant::from_millis(3), move |sim| {
            sd2.offer(sim, inst, NodeId(2), Duration::from_secs(10));
        });
        sim.run_to_completion();
        assert_eq!(*hit.borrow(), Some((Instant::from_millis(3), NodeId(2))));
    }

    #[test]
    fn watch_fires_on_offer_withdrawal_and_expiry() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let primary = ServiceInstance::new(7, 1);
        let backup = ServiceInstance::new(7, 2);
        type BestLog = Vec<(Instant, Option<(u16, u16)>)>;
        let log: Rc<RefCell<BestLog>> = Rc::new(RefCell::new(Vec::new()));
        let sink = log.clone();
        sd.watch(&mut sim, 7, ANY_INSTANCE, move |sim, best| {
            sink.borrow_mut().push((
                sim.now(),
                best.map(|o| (o.instance.instance, u16::from(o.priority))),
            ));
        });
        // Initial state: nothing offered.
        assert_eq!(*log.borrow(), vec![(Instant::EPOCH, None)]);
        // Backup first, then primary takes over by priority.
        sd.offer_prioritized(&mut sim, backup, NodeId(5), Duration::from_secs(60), 1);
        sd.offer_prioritized(&mut sim, primary, NodeId(4), Duration::from_millis(10), 0);
        // Renewing the backup does not change the best: no spurious fire.
        sd.offer_prioritized(&mut sim, backup, NodeId(5), Duration::from_secs(60), 1);
        // The primary's TTL lapses without renewal: failover to the
        // backup exactly one nanosecond past the deadline.
        sim.run_until(Instant::from_secs(1));
        assert_eq!(
            *log.borrow(),
            vec![
                (Instant::EPOCH, None),
                (Instant::EPOCH, Some((2, 1))),
                (Instant::EPOCH, Some((1, 0))),
                (
                    Instant::from_millis(10) + Duration::from_nanos(1),
                    Some((2, 1))
                ),
            ]
        );
        // Expiry also wiped the dead instance's subscriptions.
        assert!(sd.subscribers(primary, 1).is_empty());
    }

    #[test]
    fn watch_renewal_keeps_the_offer_alive() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(7, 1);
        let changes = Rc::new(RefCell::new(0u32));
        let sink = changes.clone();
        sd.watch(&mut sim, 7, ANY_INSTANCE, move |_, _| {
            *sink.borrow_mut() += 1;
        });
        sd.offer(&mut sim, inst, NodeId(3), Duration::from_millis(10));
        // Renew every 5 ms for 40 ms: the stale expiry checks fire but
        // must not withdraw the renewed offer.
        for k in 1..=8u64 {
            let sd2 = sd.clone();
            sim.schedule_at(Instant::from_millis(5 * k), move |sim| {
                sd2.offer(sim, inst, NodeId(3), Duration::from_millis(10));
            });
        }
        sim.run_until(Instant::from_millis(45));
        assert!(sd.find(&sim, 7, 1).is_some(), "renewals keep it alive");
        // 1 initial (None) + 1 first offer; renewals change nothing.
        assert_eq!(*changes.borrow(), 2);
        // Stop renewing: the last TTL lapses at 40 + 10 ms.
        sim.run_until(Instant::from_secs(1));
        assert!(sd.find(&sim, 7, 1).is_none());
        assert_eq!(*changes.borrow(), 3);
    }

    #[test]
    fn find_async_fires_on_later_offer() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let hit = Rc::new(RefCell::new(None));
        let sink = hit.clone();
        sd.find_async(&mut sim, 9, ANY_INSTANCE, move |sim, offer| {
            *sink.borrow_mut() = Some((sim.now(), offer.node));
        });
        assert!(hit.borrow().is_none());
        let sd2 = sd.clone();
        sim.schedule_at(Instant::from_millis(5), move |sim| {
            sd2.offer(
                sim,
                ServiceInstance::new(9, 0),
                NodeId(1),
                Duration::from_secs(1),
            );
        });
        sim.run_to_completion();
        assert_eq!(*hit.borrow(), Some((Instant::from_millis(5), NodeId(1))));
    }

    #[test]
    fn find_async_fires_immediately_when_offered() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        sd.offer(
            &mut sim,
            ServiceInstance::new(9, 0),
            NodeId(1),
            Duration::from_secs(1),
        );
        let hit = Rc::new(RefCell::new(false));
        let sink = hit.clone();
        sd.find_async(&mut sim, 9, 0, move |_, _| *sink.borrow_mut() = true);
        assert!(*hit.borrow());
    }

    #[test]
    fn deterministic_choice_among_multiple_offers() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 2),
            NodeId(5),
            Duration::from_secs(1),
        );
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 1),
            NodeId(4),
            Duration::from_secs(1),
        );
        // Lowest instance id wins regardless of offer order.
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(4));
    }

    #[test]
    fn subscriptions_are_idempotent_and_sorted() {
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(7, 1);
        sd.subscribe(inst, 1, NodeId(5));
        sd.subscribe(inst, 1, NodeId(2));
        sd.subscribe(inst, 1, NodeId(5));
        assert_eq!(sd.subscribers(inst, 1), vec![NodeId(2), NodeId(5)]);
        sd.unsubscribe(inst, 1, NodeId(2));
        assert_eq!(sd.subscribers(inst, 1), vec![NodeId(5)]);
        assert!(sd.subscribers(inst, 2).is_empty());
    }
}
