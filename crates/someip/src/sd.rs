//! SOME/IP service discovery (SOME/IP-SD), simplified.
//!
//! "SWCs provide or request services as needed; the binding between
//! clients and servers is determined at runtime by the middleware through
//! service discovery. The dynamic binding of services is the core
//! mechanism for providing adaptivity in AP" (paper §II.A).
//!
//! [`SdRegistry`] models the discovery domain one multicast segment would
//! span: servers *offer* `(service, instance)` pairs with a TTL, clients
//! *find* instances (optionally asynchronously — the callback fires when a
//! matching offer appears) and *subscribe* to eventgroups.

use dear_sim::{NodeId, Simulation};
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Identifies a concrete instance of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceInstance {
    /// Service interface id.
    pub service: u16,
    /// Instance id (`ANY_INSTANCE` matches any in find operations).
    pub instance: u16,
}

/// Wildcard instance id accepted by find/subscribe operations.
pub const ANY_INSTANCE: u16 = 0xFFFF;

impl ServiceInstance {
    /// Creates a service-instance id.
    #[must_use]
    pub const fn new(service: u16, instance: u16) -> Self {
        ServiceInstance { service, instance }
    }
}

impl fmt::Display for ServiceInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}:{:04x}", self.service, self.instance)
    }
}

/// An active service offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// The offered instance.
    pub instance: ServiceInstance,
    /// Node hosting the server.
    pub node: NodeId,
    /// Offer expiry (true simulation time).
    pub valid_until: Instant,
}

type FindCallback = Box<dyn FnOnce(&mut Simulation, Offer)>;

#[derive(Default)]
struct SdInner {
    // BTreeMaps, not HashMaps: registry iteration order feeds find() and
    // notification fan-out, so it must not depend on hasher state — a
    // latent determinism hazard in a determinism repo.
    offers: BTreeMap<ServiceInstance, Offer>,
    /// Pending async finds: (service, instance-pattern, callback).
    waiting: Vec<(u16, u16, FindCallback)>,
    /// Subscriptions: (service, instance, eventgroup) -> subscriber nodes.
    subscriptions: BTreeMap<(u16, u16, u16), Vec<NodeId>>,
}

/// A shared handle to the discovery domain.
///
/// # Examples
///
/// ```
/// use dear_sim::{NodeId, Simulation};
/// use dear_someip::{SdRegistry, ServiceInstance};
/// use dear_time::Duration;
///
/// let mut sim = Simulation::new(0);
/// let sd = SdRegistry::new();
/// sd.offer(&mut sim, ServiceInstance::new(0x1234, 1), NodeId(2), Duration::from_secs(5));
/// let offer = sd.find(&sim, 0x1234, dear_someip::ANY_INSTANCE).unwrap();
/// assert_eq!(offer.node, NodeId(2));
/// ```
#[derive(Clone, Default)]
pub struct SdRegistry(Rc<RefCell<SdInner>>);

impl fmt::Debug for SdRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("SdRegistry")
            .field("offers", &inner.offers.len())
            .field("waiting_finds", &inner.waiting.len())
            .field("subscriptions", &inner.subscriptions.len())
            .finish()
    }
}

impl SdRegistry {
    /// Creates an empty discovery domain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a service instance from `node` for `ttl`.
    ///
    /// Pending asynchronous finds matching the offer fire immediately
    /// (at the current simulation time).
    pub fn offer(
        &self,
        sim: &mut Simulation,
        instance: ServiceInstance,
        node: NodeId,
        ttl: Duration,
    ) {
        let offer = Offer {
            instance,
            node,
            valid_until: sim.now().saturating_add(ttl),
        };
        let ready: Vec<FindCallback> = {
            let mut inner = self.0.borrow_mut();
            inner.offers.insert(instance, offer);
            let mut ready = Vec::new();
            let mut remaining = Vec::new();
            for (service, pattern, cb) in inner.waiting.drain(..) {
                if service == instance.service
                    && (pattern == ANY_INSTANCE || pattern == instance.instance)
                {
                    ready.push(cb);
                } else {
                    remaining.push((service, pattern, cb));
                }
            }
            inner.waiting = remaining;
            ready
        };
        for cb in ready {
            cb(sim, offer);
        }
    }

    /// Withdraws an offer (SOME/IP-SD StopOffer).
    pub fn stop_offer(&self, instance: ServiceInstance) {
        self.0.borrow_mut().offers.remove(&instance);
    }

    /// Finds a currently valid offer. `instance` may be [`ANY_INSTANCE`].
    #[must_use]
    pub fn find(&self, sim: &Simulation, service: u16, instance: u16) -> Option<Offer> {
        // Deterministic choice: the registry iterates in (service,
        // instance) order, so the first match is the lowest instance id.
        let inner = self.0.borrow();
        inner
            .offers
            .values()
            .find(|o| {
                o.instance.service == service
                    && (instance == ANY_INSTANCE || o.instance.instance == instance)
                    && o.valid_until >= sim.now()
            })
            .copied()
    }

    /// Finds asynchronously: `callback` fires now if a matching offer
    /// exists, or as soon as one appears.
    pub fn find_async(
        &self,
        sim: &mut Simulation,
        service: u16,
        instance: u16,
        callback: impl FnOnce(&mut Simulation, Offer) + 'static,
    ) {
        if let Some(offer) = self.find(sim, service, instance) {
            callback(sim, offer);
        } else {
            self.0
                .borrow_mut()
                .waiting
                .push((service, instance, Box::new(callback)));
        }
    }

    /// Subscribes `subscriber` to an eventgroup of a service instance.
    ///
    /// Duplicate subscriptions are idempotent.
    pub fn subscribe(&self, instance: ServiceInstance, eventgroup: u16, subscriber: NodeId) {
        let mut inner = self.0.borrow_mut();
        let subs = inner
            .subscriptions
            .entry((instance.service, instance.instance, eventgroup))
            .or_default();
        if !subs.contains(&subscriber) {
            subs.push(subscriber);
            subs.sort_unstable();
        }
    }

    /// Removes a subscription.
    pub fn unsubscribe(&self, instance: ServiceInstance, eventgroup: u16, subscriber: NodeId) {
        if let Some(subs) = self.0.borrow_mut().subscriptions.get_mut(&(
            instance.service,
            instance.instance,
            eventgroup,
        )) {
            subs.retain(|&n| n != subscriber);
        }
    }

    /// Current subscribers of an eventgroup (sorted, deterministic).
    #[must_use]
    pub fn subscribers(&self, instance: ServiceInstance, eventgroup: u16) -> Vec<NodeId> {
        self.0
            .borrow()
            .subscriptions
            .get(&(instance.service, instance.instance, eventgroup))
            .cloned()
            .unwrap_or_default()
    }

    /// Number of currently stored offers (including possibly expired ones
    /// that have not been purged).
    #[must_use]
    pub fn offer_count(&self) -> usize {
        self.0.borrow().offers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_then_find() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        assert!(sd.find(&sim, 7, ANY_INSTANCE).is_none());
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 1),
            NodeId(3),
            Duration::from_secs(1),
        );
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(3));
        assert_eq!(sd.find(&sim, 7, 1).unwrap().node, NodeId(3));
        assert!(sd.find(&sim, 7, 2).is_none());
        assert!(sd.find(&sim, 8, ANY_INSTANCE).is_none());
    }

    #[test]
    fn offers_expire_by_ttl() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 1),
            NodeId(3),
            Duration::from_millis(10),
        );
        sim.run_until(Instant::from_millis(5));
        assert!(sd.find(&sim, 7, 1).is_some());
        sim.run_until(Instant::from_millis(11));
        assert!(sd.find(&sim, 7, 1).is_none(), "expired");
    }

    #[test]
    fn stop_offer_withdraws() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(7, 1);
        sd.offer(&mut sim, inst, NodeId(3), Duration::from_secs(1));
        sd.stop_offer(inst);
        assert!(sd.find(&sim, 7, 1).is_none());
    }

    #[test]
    fn find_async_fires_on_later_offer() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        let hit = Rc::new(RefCell::new(None));
        let sink = hit.clone();
        sd.find_async(&mut sim, 9, ANY_INSTANCE, move |sim, offer| {
            *sink.borrow_mut() = Some((sim.now(), offer.node));
        });
        assert!(hit.borrow().is_none());
        let sd2 = sd.clone();
        sim.schedule_at(Instant::from_millis(5), move |sim| {
            sd2.offer(
                sim,
                ServiceInstance::new(9, 0),
                NodeId(1),
                Duration::from_secs(1),
            );
        });
        sim.run_to_completion();
        assert_eq!(*hit.borrow(), Some((Instant::from_millis(5), NodeId(1))));
    }

    #[test]
    fn find_async_fires_immediately_when_offered() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        sd.offer(
            &mut sim,
            ServiceInstance::new(9, 0),
            NodeId(1),
            Duration::from_secs(1),
        );
        let hit = Rc::new(RefCell::new(false));
        let sink = hit.clone();
        sd.find_async(&mut sim, 9, 0, move |_, _| *sink.borrow_mut() = true);
        assert!(*hit.borrow());
    }

    #[test]
    fn deterministic_choice_among_multiple_offers() {
        let mut sim = Simulation::new(0);
        let sd = SdRegistry::new();
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 2),
            NodeId(5),
            Duration::from_secs(1),
        );
        sd.offer(
            &mut sim,
            ServiceInstance::new(7, 1),
            NodeId(4),
            Duration::from_secs(1),
        );
        // Lowest instance id wins regardless of offer order.
        assert_eq!(sd.find(&sim, 7, ANY_INSTANCE).unwrap().node, NodeId(4));
    }

    #[test]
    fn subscriptions_are_idempotent_and_sorted() {
        let sd = SdRegistry::new();
        let inst = ServiceInstance::new(7, 1);
        sd.subscribe(inst, 1, NodeId(5));
        sd.subscribe(inst, 1, NodeId(2));
        sd.subscribe(inst, 1, NodeId(5));
        assert_eq!(sd.subscribers(inst, 1), vec![NodeId(2), NodeId(5)]);
        sd.unsubscribe(inst, 1, NodeId(2));
        assert_eq!(sd.subscribers(inst, 1), vec![NodeId(5)]);
        assert!(sd.subscribers(inst, 2).is_empty());
    }
}
