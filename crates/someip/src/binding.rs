//! The SOME/IP binding: per-node endpoint for requests, responses and
//! event notifications — including the DEAR tag extension.
//!
//! One [`Binding`] models the middleware library linked into an AP process.
//! It owns the node's pending-request table, method handler registry and
//! event handler registry, and is registered as the node's network frame
//! receiver.
//!
//! **Timestamp bypass** (paper §III.B, Figure 3): the DEAR transactors
//! communicate tags to the binding out-of-band. Before invoking a regular,
//! tag-agnostic proxy/skeleton call, a transactor deposits the tag via
//! [`Binding::set_outgoing_tag`]; the modified binding pops it and appends
//! it to the outgoing message (steps 2→5 and 13→16). On reception, the
//! binding pushes the received tag into the incoming bypass *before*
//! dispatching the payload (steps 7/18), where the receiving transactor
//! picks it up with [`Binding::take_incoming_tag`] (steps 10/21).

use crate::sd::{Offer, SdRegistry, ServiceInstance};
use crate::wire::{MessageId, MessageType, RequestId, ReturnCode, SomeIpMessage, WireTag};
use dear_sim::{Frame, FrameBuf, FramePool, NetworkHandle, NodeId, Simulation};
use dear_time::Duration;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Errors surfaced by binding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingError {
    /// No valid offer for the requested service instance was found.
    ServiceNotFound {
        /// Requested service id.
        service: u16,
        /// Requested instance id (possibly `ANY_INSTANCE`).
        instance: u16,
    },
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::ServiceNotFound { service, instance } => {
                write!(
                    f,
                    "no offer found for service {service:04x} instance {instance:04x}"
                )
            }
        }
    }
}

impl Error for BindingError {}

/// Statistics for one binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BindingStats {
    /// Requests sent.
    pub requests_sent: u64,
    /// Responses (including errors) received.
    pub responses_received: u64,
    /// Notifications sent (one per subscriber).
    pub notifications_sent: u64,
    /// Notifications received and dispatched.
    pub notifications_received: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
}

impl fmt::Display for BindingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} responses={} notif_sent={} notif_received={} decode_errors={}",
            self.requests_sent,
            self.responses_received,
            self.notifications_sent,
            self.notifications_received,
            self.decode_errors
        )
    }
}

type ResponseCallback = Box<dyn FnOnce(&mut Simulation, SomeIpMessage)>;
type MethodHandler = Rc<dyn Fn(&mut Simulation, SomeIpMessage, Responder)>;
type EventHandler = Rc<dyn Fn(&mut Simulation, SomeIpMessage)>;

struct BindingInner {
    node: NodeId,
    net: NetworkHandle,
    sd: SdRegistry,
    /// Recycled wire buffers for every frame this binding assembles.
    pool: FramePool,
    client_id: u16,
    next_session: u16,
    // BTreeMaps keep every registry's iteration order independent of
    // hasher state (determinism hardening; see `SdInner`).
    pending: BTreeMap<RequestId, ResponseCallback>,
    methods: BTreeMap<(u16, u16), MethodHandler>,
    event_handlers: BTreeMap<(u16, u16), EventHandler>,
    outgoing_tags: VecDeque<WireTag>,
    incoming_tags: VecDeque<WireTag>,
    stats: BindingStats,
}

/// A shared handle to a node's SOME/IP binding.
///
/// # Examples
///
/// ```
/// use dear_sim::{LinkConfig, NetworkHandle, NodeId, Simulation};
/// use dear_someip::{Binding, SdRegistry, ServiceInstance};
/// use dear_time::Duration;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(1);
/// let net = NetworkHandle::new(LinkConfig::ideal(Duration::from_micros(100)), sim.fork_rng("net"));
/// let sd = SdRegistry::new();
///
/// // Server on node 1 offering service 0x50, method 0x01 = "double".
/// let server = Binding::new(&net, &sd, NodeId(1), 0x11);
/// server.register_method(0x50, 0x01, |sim, req, responder| {
///     let v = req.payload[0];
///     responder.reply(sim, vec![v * 2]);
/// });
/// server.offer(&mut sim, ServiceInstance::new(0x50, 1), Duration::from_secs(10));
///
/// // Client on node 2.
/// let client = Binding::new(&net, &sd, NodeId(2), 0x22);
/// let got = Rc::new(RefCell::new(None));
/// let sink = got.clone();
/// client.call(&mut sim, 0x50, dear_someip::ANY_INSTANCE, 0x01, vec![21], move |_sim, resp| {
///     *sink.borrow_mut() = Some(resp.payload[0]);
/// }).unwrap();
///
/// sim.run_to_completion();
/// assert_eq!(*got.borrow(), Some(42));
/// ```
#[derive(Clone)]
pub struct Binding(Rc<RefCell<BindingInner>>);

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("Binding")
            .field("node", &inner.node)
            .field("client_id", &inner.client_id)
            .field("pending", &inner.pending.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Binding {
    /// Creates a binding for `node` and registers it as the node's frame
    /// receiver.
    ///
    /// `client_id` is the SOME/IP client id used in outgoing request ids.
    #[must_use]
    pub fn new(net: &NetworkHandle, sd: &SdRegistry, node: NodeId, client_id: u16) -> Self {
        let binding = Binding(Rc::new(RefCell::new(BindingInner {
            node,
            net: net.clone(),
            sd: sd.clone(),
            pool: FramePool::new(),
            client_id,
            next_session: 1,
            pending: BTreeMap::new(),
            methods: BTreeMap::new(),
            event_handlers: BTreeMap::new(),
            outgoing_tags: VecDeque::new(),
            incoming_tags: VecDeque::new(),
            stats: BindingStats::default(),
        })));
        let recv = binding.clone();
        net.set_receiver(node, move |sim, frame| recv.on_frame(sim, frame));
        binding
    }

    /// The node this binding serves.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.0.borrow().node
    }

    /// The discovery registry this binding resolves against (shared
    /// handle). Failover layers use it to watch redundant offers and to
    /// move subscriptions between provider instances.
    #[must_use]
    pub fn sd(&self) -> SdRegistry {
        self.0.borrow().sd.clone()
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> BindingStats {
        self.0.borrow().stats
    }

    /// The binding's frame pool (shared handle). Senders that serialize
    /// payloads through a [`PayloadWriter::pooled`] writer backed by this
    /// pool get a fully zero-copy, allocation-free path onto the wire.
    ///
    /// [`PayloadWriter::pooled`]: crate::PayloadWriter::pooled
    #[must_use]
    pub fn pool(&self) -> FramePool {
        self.0.borrow().pool.clone()
    }

    // --- DEAR timestamp bypass -------------------------------------------

    /// Deposits a tag to be attached to the *next* outgoing message
    /// (transactor → binding direction of the timestamp bypass).
    pub fn set_outgoing_tag(&self, tag: WireTag) {
        self.0.borrow_mut().outgoing_tags.push_back(tag);
    }

    /// Retrieves the tag of the most recently received tagged message
    /// (binding → transactor direction of the timestamp bypass).
    #[must_use]
    pub fn take_incoming_tag(&self) -> Option<WireTag> {
        self.0.borrow_mut().incoming_tags.pop_front()
    }

    /// Discards one deposited outgoing tag (used when the operation the
    /// tag was deposited for failed before transmission).
    pub fn discard_outgoing_tag(&self) {
        self.0.borrow_mut().outgoing_tags.pop_front();
    }

    // ---

    /// Offers a service instance hosted on this node.
    pub fn offer(&self, sim: &mut Simulation, instance: ServiceInstance, ttl: Duration) {
        let (sd, node) = {
            let inner = self.0.borrow();
            (inner.sd.clone(), inner.node)
        };
        sd.offer(sim, instance, node, ttl);
    }

    /// Registers the handler for a served method.
    ///
    /// The handler receives the request message and a [`Responder`] that
    /// may reply immediately or be stored and used later (the AP skeleton
    /// promise/future pattern).
    pub fn register_method(
        &self,
        service: u16,
        method: u16,
        handler: impl Fn(&mut Simulation, SomeIpMessage, Responder) + 'static,
    ) {
        self.0
            .borrow_mut()
            .methods
            .insert((service, method), Rc::new(handler));
    }

    /// Registers the handler for a subscribed event.
    pub fn on_event(
        &self,
        service: u16,
        event: u16,
        handler: impl Fn(&mut Simulation, SomeIpMessage) + 'static,
    ) {
        self.0
            .borrow_mut()
            .event_handlers
            .insert((service, event), Rc::new(handler));
    }

    /// Subscribes this node to an eventgroup of a service instance.
    pub fn subscribe(&self, instance: ServiceInstance, eventgroup: u16) {
        let (sd, node) = {
            let inner = self.0.borrow();
            (inner.sd.clone(), inner.node)
        };
        sd.subscribe(instance, eventgroup, node);
    }

    /// Sends a method call; `on_response` fires when the response (or
    /// error response) arrives.
    ///
    /// # Errors
    ///
    /// Returns [`BindingError::ServiceNotFound`] if discovery has no valid
    /// offer.
    pub fn call(
        &self,
        sim: &mut Simulation,
        service: u16,
        instance: u16,
        method: u16,
        payload: impl Into<FrameBuf>,
        on_response: impl FnOnce(&mut Simulation, SomeIpMessage) + 'static,
    ) -> Result<RequestId, BindingError> {
        let offer = self.resolve(sim, service, instance)?;
        let (frame, request_id) = {
            let mut inner = self.0.borrow_mut();
            let request_id = inner.alloc_request_id();
            let mut msg =
                SomeIpMessage::request(MessageId::new(service, method), request_id, payload);
            if let Some(tag) = inner.outgoing_tags.pop_front() {
                msg = msg.with_tag(tag);
            }
            inner.pending.insert(request_id, Box::new(on_response));
            inner.stats.requests_sent += 1;
            (
                Frame {
                    src: inner.node,
                    dst: offer.node,
                    payload: msg.into_frame(&inner.pool),
                },
                request_id,
            )
        };
        let net = self.0.borrow().net.clone();
        net.send(sim, frame);
        Ok(request_id)
    }

    /// Sends a fire-and-forget method call (`REQUEST_NO_RETURN`).
    ///
    /// # Errors
    ///
    /// Returns [`BindingError::ServiceNotFound`] if discovery has no valid
    /// offer.
    pub fn call_no_return(
        &self,
        sim: &mut Simulation,
        service: u16,
        instance: u16,
        method: u16,
        payload: impl Into<FrameBuf>,
    ) -> Result<(), BindingError> {
        let offer = self.resolve(sim, service, instance)?;
        let frame = {
            let mut inner = self.0.borrow_mut();
            let request_id = inner.alloc_request_id();
            let mut msg =
                SomeIpMessage::request(MessageId::new(service, method), request_id, payload);
            msg.message_type = MessageType::RequestNoReturn;
            if let Some(tag) = inner.outgoing_tags.pop_front() {
                msg = msg.with_tag(tag);
            }
            inner.stats.requests_sent += 1;
            Frame {
                src: inner.node,
                dst: offer.node,
                payload: msg.into_frame(&inner.pool),
            }
        };
        let net = self.0.borrow().net.clone();
        net.send(sim, frame);
        Ok(())
    }

    /// Sends an event notification to every subscriber of the eventgroup.
    ///
    /// An outgoing bypass tag, if set, is attached to all copies (it is
    /// one event occurrence).
    pub fn notify(
        &self,
        sim: &mut Simulation,
        instance: ServiceInstance,
        eventgroup: u16,
        event: u16,
        payload: impl Into<FrameBuf>,
    ) {
        let frames = {
            let mut inner = self.0.borrow_mut();
            let subscribers = inner.sd.subscribers(instance, eventgroup);
            let tag = inner.outgoing_tags.pop_front();
            let mut msg =
                SomeIpMessage::notification(MessageId::new(instance.service, event), payload);
            if let Some(tag) = tag {
                msg = msg.with_tag(tag);
            }
            // One encode for the whole fan-out; every subscriber's frame
            // is a view of the same buffer.
            let bytes = msg.into_frame(&inner.pool);
            let frames: Vec<Frame> = subscribers
                .iter()
                .map(|&dst| Frame {
                    src: inner.node,
                    dst,
                    payload: bytes.clone(),
                })
                .collect();
            inner.stats.notifications_sent += frames.len() as u64;
            frames
        };
        let net = self.0.borrow().net.clone();
        for frame in frames {
            net.send(sim, frame);
        }
    }

    fn resolve(
        &self,
        sim: &Simulation,
        service: u16,
        instance: u16,
    ) -> Result<Offer, BindingError> {
        let sd = self.0.borrow().sd.clone();
        sd.find(sim, service, instance)
            .ok_or(BindingError::ServiceNotFound { service, instance })
    }

    fn on_frame(&self, sim: &mut Simulation, frame: Frame) {
        // Zero-copy decode: the message's payload is a view into the
        // received frame's buffer, read in place by every layer above.
        let msg = match SomeIpMessage::decode_frame(&frame.payload) {
            Ok(m) => m,
            Err(_) => {
                self.0.borrow_mut().stats.decode_errors += 1;
                return;
            }
        };
        // Feed the incoming timestamp bypass before dispatching (Fig. 3
        // steps 7 and 18).
        if let Some(tag) = msg.tag {
            self.0.borrow_mut().incoming_tags.push_back(tag);
        }
        match msg.message_type {
            MessageType::Request | MessageType::RequestNoReturn => {
                let wants_response = msg.message_type == MessageType::Request;
                let handler = self
                    .0
                    .borrow()
                    .methods
                    .get(&(msg.message_id.service, msg.message_id.method))
                    .cloned();
                let responder = Responder {
                    binding: self.clone(),
                    reply_to: frame.src,
                    request: msg.clone(),
                    wants_response,
                };
                match handler {
                    Some(h) => h(sim, msg, responder),
                    None if wants_response => {
                        let has_service = self
                            .0
                            .borrow()
                            .methods
                            .keys()
                            .any(|&(s, _)| s == msg.message_id.service);
                        let code = if has_service {
                            ReturnCode::UnknownMethod
                        } else {
                            ReturnCode::UnknownService
                        };
                        responder.reply_error(sim, code);
                    }
                    None => {}
                }
            }
            MessageType::Response | MessageType::Error => {
                let cb = self.0.borrow_mut().pending.remove(&msg.request_id);
                if let Some(cb) = cb {
                    self.0.borrow_mut().stats.responses_received += 1;
                    cb(sim, msg);
                }
            }
            MessageType::Notification => {
                let handler = self
                    .0
                    .borrow()
                    .event_handlers
                    .get(&(msg.message_id.service, msg.message_id.method))
                    .cloned();
                if let Some(h) = handler {
                    self.0.borrow_mut().stats.notifications_received += 1;
                    h(sim, msg);
                }
            }
        }
    }
}

impl BindingInner {
    fn alloc_request_id(&mut self) -> RequestId {
        let id = RequestId::new(self.client_id, self.next_session);
        self.next_session = self.next_session.wrapping_add(1);
        if self.next_session == 0 {
            self.next_session = 1;
        }
        id
    }
}

/// Replies to one received method call.
///
/// Implements the AP skeleton pattern where the method implementation
/// returns a future: the responder can be captured and resolved later
/// (e.g. after simulated compute time).
pub struct Responder {
    binding: Binding,
    reply_to: NodeId,
    request: SomeIpMessage,
    wants_response: bool,
}

impl fmt::Debug for Responder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Responder(to={}, req={})",
            self.reply_to, self.request.request_id
        )
    }
}

impl Responder {
    /// Sends a successful response carrying `payload`.
    ///
    /// An outgoing bypass tag, if deposited, is attached (Fig. 3 step 16).
    /// No-op for fire-and-forget requests.
    pub fn reply(self, sim: &mut Simulation, payload: impl Into<FrameBuf>) {
        if !self.wants_response {
            return;
        }
        let frame = {
            let mut inner = self.binding.0.borrow_mut();
            let mut msg = SomeIpMessage::response_to(&self.request, payload);
            if let Some(tag) = inner.outgoing_tags.pop_front() {
                msg = msg.with_tag(tag);
            }
            Frame {
                src: inner.node,
                dst: self.reply_to,
                payload: msg.into_frame(&inner.pool),
            }
        };
        let net = self.binding.0.borrow().net.clone();
        net.send(sim, frame);
    }

    /// Sends an error response with the given return code.
    pub fn reply_error(self, sim: &mut Simulation, code: ReturnCode) {
        if !self.wants_response {
            return;
        }
        let frame = {
            let inner = self.binding.0.borrow();
            let msg = SomeIpMessage::error_to(&self.request, code);
            Frame {
                src: inner.node,
                dst: self.reply_to,
                payload: msg.into_frame(&inner.pool),
            }
        };
        let net = self.binding.0.borrow().net.clone();
        net.send(sim, frame);
    }

    /// The request being answered.
    #[must_use]
    pub fn request(&self) -> &SomeIpMessage {
        &self.request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sd::ANY_INSTANCE;
    use dear_sim::LinkConfig;
    use dear_time::Instant;

    fn setup(seed: u64) -> (Simulation, NetworkHandle, SdRegistry) {
        let sim = Simulation::new(seed);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(500)),
            sim.fork_rng("net"),
        );
        (sim, net, SdRegistry::new())
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut sim, net, sd) = setup(1);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        server.register_method(0x50, 1, |sim, req, responder| {
            let v = req.payload[0];
            responder.reply(sim, vec![v + 1]);
        });
        server.offer(
            &mut sim,
            ServiceInstance::new(0x50, 1),
            Duration::from_secs(10),
        );

        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        let got = Rc::new(RefCell::new(None));
        let sink = got.clone();
        client
            .call(
                &mut sim,
                0x50,
                ANY_INSTANCE,
                1,
                vec![41],
                move |sim, resp| {
                    *sink.borrow_mut() = Some((sim.now(), resp.payload[0], resp.return_code));
                },
            )
            .unwrap();
        sim.run_to_completion();
        let (at, v, rc) = got.borrow().unwrap();
        assert_eq!(v, 42);
        assert_eq!(rc, ReturnCode::Ok);
        assert_eq!(at, Instant::from_millis(1), "two 500us hops");
        assert_eq!(client.stats().requests_sent, 1);
        assert_eq!(client.stats().responses_received, 1);
    }

    #[test]
    fn unknown_service_and_method_errors() {
        let (mut sim, net, sd) = setup(2);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        server.register_method(0x50, 1, |sim, _req, responder| {
            responder.reply(sim, vec![]);
        });
        server.offer(
            &mut sim,
            ServiceInstance::new(0x50, 1),
            Duration::from_secs(10),
        );
        // Also offer a service id the server has no handlers for.
        server.offer(
            &mut sim,
            ServiceInstance::new(0x51, 1),
            Duration::from_secs(10),
        );

        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        let codes = Rc::new(RefCell::new(Vec::new()));
        let sink = codes.clone();
        client
            .call(&mut sim, 0x50, 1, 99, vec![], move |_s, resp| {
                sink.borrow_mut().push(resp.return_code);
            })
            .unwrap();
        let sink = codes.clone();
        client
            .call(&mut sim, 0x51, 1, 1, vec![], move |_s, resp| {
                sink.borrow_mut().push(resp.return_code);
            })
            .unwrap();
        sim.run_to_completion();
        assert_eq!(
            *codes.borrow(),
            vec![ReturnCode::UnknownMethod, ReturnCode::UnknownService]
        );
    }

    #[test]
    fn call_without_offer_fails_fast() {
        let (mut sim, net, sd) = setup(3);
        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        let err = client
            .call(&mut sim, 0x99, ANY_INSTANCE, 1, vec![], |_, _| {})
            .unwrap_err();
        assert_eq!(
            err,
            BindingError::ServiceNotFound {
                service: 0x99,
                instance: ANY_INSTANCE
            }
        );
    }

    #[test]
    fn notifications_fan_out_to_subscribers() {
        let (mut sim, net, sd) = setup(4);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        let inst = ServiceInstance::new(0x60, 1);
        server.offer(&mut sim, inst, Duration::from_secs(10));

        let hits = Rc::new(RefCell::new(Vec::new()));
        let mut clients = Vec::new();
        for i in 2..4u16 {
            let c = Binding::new(&net, &sd, NodeId(i), 0x20 + i);
            c.subscribe(inst, 1);
            let sink = hits.clone();
            c.on_event(0x60, 0x8001, move |_, msg| {
                sink.borrow_mut().push((i, msg.payload.to_vec()));
            });
            clients.push(c);
        }
        server.notify(&mut sim, inst, 1, 0x8001, vec![7, 8]);
        sim.run_to_completion();
        let mut got = hits.borrow().clone();
        got.sort();
        assert_eq!(got, vec![(2, vec![7, 8]), (3, vec![7, 8])]);
        assert_eq!(server.stats().notifications_sent, 2);
    }

    #[test]
    fn timestamp_bypass_carries_tags_end_to_end() {
        let (mut sim, net, sd) = setup(5);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        let inst = ServiceInstance::new(0x50, 1);
        let server2 = server.clone();
        server.register_method(0x50, 1, move |sim, _req, responder| {
            // Server-side transactor behaviour: read the incoming tag,
            // deposit a response tag, reply.
            let got = server2.take_incoming_tag();
            assert_eq!(got, Some(WireTag::new(1_000_000, 2)));
            server2.set_outgoing_tag(WireTag::new(2_000_000, 0));
            responder.reply(sim, vec![1]);
        });
        server.offer(&mut sim, inst, Duration::from_secs(10));

        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        let got_tag = Rc::new(RefCell::new(None));
        let sink = got_tag.clone();
        let client2 = client.clone();
        // Client-side transactor: deposit tag, then make the plain call.
        client.set_outgoing_tag(WireTag::new(1_000_000, 2));
        client
            .call(&mut sim, 0x50, 1, 1, vec![], move |_s, resp| {
                assert_eq!(resp.tag, Some(WireTag::new(2_000_000, 0)));
                *sink.borrow_mut() = client2.take_incoming_tag();
            })
            .unwrap();
        sim.run_to_completion();
        assert_eq!(*got_tag.borrow(), Some(WireTag::new(2_000_000, 0)));
    }

    #[test]
    fn untagged_messages_have_no_incoming_tag() {
        let (mut sim, net, sd) = setup(6);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        let inst = ServiceInstance::new(0x50, 1);
        server.register_method(0x50, 1, |sim, _req, r| r.reply(sim, vec![]));
        server.offer(&mut sim, inst, Duration::from_secs(10));
        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        client
            .call(&mut sim, 0x50, 1, 1, vec![], |_, _| {})
            .unwrap();
        sim.run_to_completion();
        assert_eq!(server.take_incoming_tag(), None);
        assert_eq!(client.take_incoming_tag(), None);
    }

    #[test]
    fn fire_and_forget_reaches_handler_without_response() {
        let (mut sim, net, sd) = setup(7);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        let inst = ServiceInstance::new(0x50, 1);
        let hits = Rc::new(RefCell::new(0));
        let sink = hits.clone();
        server.register_method(0x50, 2, move |_s, _req, _r| {
            *sink.borrow_mut() += 1;
        });
        server.offer(&mut sim, inst, Duration::from_secs(10));
        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        client
            .call_no_return(&mut sim, 0x50, 1, 2, vec![1])
            .unwrap();
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(client.stats().responses_received, 0);
    }

    #[test]
    fn deferred_reply_supports_future_pattern() {
        let (mut sim, net, sd) = setup(8);
        let server = Binding::new(&net, &sd, NodeId(1), 0x10);
        let inst = ServiceInstance::new(0x50, 1);
        server.register_method(0x50, 1, |sim, _req, responder| {
            // Simulate 5 ms of server-side compute before resolving the
            // promise.
            sim.schedule_in(Duration::from_millis(5), move |sim| {
                responder.reply(sim, vec![99]);
            });
        });
        server.offer(&mut sim, inst, Duration::from_secs(10));
        let client = Binding::new(&net, &sd, NodeId(2), 0x20);
        let got = Rc::new(RefCell::new(None));
        let sink = got.clone();
        client
            .call(&mut sim, 0x50, 1, 1, vec![], move |sim, resp| {
                *sink.borrow_mut() = Some((sim.now(), resp.payload[0]));
            })
            .unwrap();
        sim.run_to_completion();
        let (at, v) = got.borrow().unwrap();
        assert_eq!(v, 99);
        assert_eq!(at, Instant::from_millis(6), "2 hops + 5ms compute");
    }
}
