//! # dear-someip — SOME/IP middleware simulation with the DEAR tag extension
//!
//! AUTOSAR AP suggests SOME/IP as its communication middleware (paper
//! §II.A). This crate implements, over the `dear-sim` network:
//!
//! * the SOME/IP **wire format** ([`SomeIpMessage`], 16-byte header,
//!   big-endian payloads) including request/response correlation and
//!   error return codes;
//! * **service discovery** ([`SdRegistry`]): offer/find/subscribe with
//!   TTLs — the dynamic binding that makes AP "adaptive";
//! * the per-node **binding** ([`Binding`]): pending-request tables,
//!   method/event handler dispatch, fan-out notifications;
//! * the paper's **modified binding** (§III.B): an optional logical
//!   timestamp ([`WireTag`]) appended to outgoing messages and recovered
//!   on reception, fed through the **timestamp bypass**
//!   ([`Binding::set_outgoing_tag`] / [`Binding::take_incoming_tag`]) so
//!   that the standard proxy/skeleton interfaces remain unchanged;
//! * the **coordination service** ([`CoordMsg`]): the NET/TAG/PTAG/LTC
//!   control messages a centralized coordinator (`dear-federation`'s RTI)
//!   exchanges with federates, carried as ordinary SOME/IP methods and
//!   event notifications;
//! * a **zero-copy data path**: payloads live in pooled,
//!   reference-counted [`FrameBuf`] buffers (re-exported from
//!   `dear-sim`). A pooled [`PayloadWriter`] reserves header headroom,
//!   [`SomeIpMessage::into_frame`] wraps the wire header around the
//!   payload in place, and [`SomeIpMessage::decode_frame`] yields a
//!   payload that is a view into the received frame — end to end, the
//!   payload bytes are written once and read in place.
//!
//! See the [`Binding`] example for a complete client/server round trip.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binding;
mod coord;
mod payload;
mod sd;
mod wire;

pub use binding::{Binding, BindingError, BindingStats, Responder};
// The frame types are defined in `dear-sim` (the network layer queues
// them), but they are the middleware's payload currency, so they are
// re-exported here for the layers above.
pub use coord::{
    coord_eventgroup, CoordBatch, CoordBatchView, CoordError, CoordKind, CoordMsg,
    COORD_BATCH_HEADER_LEN, COORD_BATCH_MARKER, COORD_EVENT, COORD_EVENTGROUP_BASE, COORD_INSTANCE,
    COORD_METHOD, COORD_PAYLOAD_LEN, COORD_SERVICE, DNET_NET_LATTICE, DNET_SINK, TAG_NEVER,
};
pub use dear_sim::{FrameBuf, FrameMut, FramePool, FramePoolStats};
pub use payload::{PayloadError, PayloadReader, PayloadWriter};
pub use sd::{Offer, SdRegistry, ServiceInstance, ANY_INSTANCE};
pub use wire::{
    MessageId, MessageType, RequestId, ReturnCode, SomeIpMessage, WireError, WireTag, HEADER_LEN,
    PROTOCOL_VERSION, PROTOCOL_VERSION_DEAR, TAG_MAGIC, TAG_TRAILER_LEN,
};
