//! The centralized-coordination service: wire messages exchanged between
//! federates and an RTI (run-time infrastructure) over SOME/IP.
//!
//! The decentralized DEAR transactors coordinate purely through the
//! `t + D + L + E` tag algebra. The Lingua Franca ecosystem the paper
//! builds on also defines a *centralized* coordinator that exchanges
//! NET/TAG/PTAG/LTC control messages with every federate. This module
//! defines those control messages and their SOME/IP carriage:
//!
//! * federate → RTI messages travel as fire-and-forget method calls on
//!   [`COORD_SERVICE`] / [`COORD_METHOD`];
//! * RTI → federate grants travel as event notifications on
//!   [`COORD_EVENT`], unicast through a per-federate eventgroup
//!   ([`coord_eventgroup`]).
//!
//! The payload encoding is a fixed 27-byte big-endian record so that
//! encode→decode is a bijection (property-tested in
//! `tests/coord_roundtrip.rs`).
//!
//! ## Batched frames (hierarchical coordination)
//!
//! A sharded federation (zone coordinators rolling up to a root, see
//! `dear-federation`) exchanges *many* records per hop: a zone's roll-up,
//! the root's floor broadcast, a zone's grant fan-out. [`CoordBatch`]
//! packs any number of records into **one** pooled frame — a leading
//! [`COORD_BATCH_MARKER`] byte (disjoint from every [`CoordKind`] value),
//! a `u16` record count, then the fixed records back to back — so a
//! roll-up is one frame, not N, and the refcounted [`FrameBuf`] fan-out
//! from the zero-copy data path serves every subscriber without copying.

use crate::wire::{WireTag, HEADER_LEN};
use dear_sim::{FrameBuf, FrameMut, FramePool};
use std::error::Error;
use std::fmt;

/// Service id of the coordination service offered by the RTI.
pub const COORD_SERVICE: u16 = 0xFEDE;
/// Instance id of the coordination service.
pub const COORD_INSTANCE: u16 = 0x0001;
/// Method id used for federate → RTI control messages.
pub const COORD_METHOD: u16 = 0x0001;
/// Event id used for RTI → federate grant notifications.
pub const COORD_EVENT: u16 = 0x8001;
/// Base of the per-federate unicast eventgroup range.
pub const COORD_EVENTGROUP_BASE: u16 = 0x4000;

/// Encoded size of every coordination payload in bytes.
pub const COORD_PAYLOAD_LEN: usize = 27;

/// Leading byte of a batched coordination frame. Disjoint from every
/// [`CoordKind`] discriminant so a receiver can tell a batch from a
/// single record by its first byte.
pub const COORD_BATCH_MARKER: u8 = 0x42;

/// Bytes of batch framing before the first record (marker + `u16` count).
pub const COORD_BATCH_HEADER_LEN: usize = 3;

/// Sentinel tag meaning "no pending event" in NET reports.
pub const TAG_NEVER: WireTag = WireTag::new(u64::MAX, u32::MAX);

/// The eventgroup through which one federate receives its grants.
#[must_use]
pub const fn coord_eventgroup(federate: u16) -> u16 {
    COORD_EVENTGROUP_BASE + federate
}

/// Discriminant of a coordination message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CoordKind {
    /// Federate → RTI: the federate has started and is reachable.
    Join = 1,
    /// Federate → RTI: next-event tag report (plus a fence, see
    /// [`CoordMsg::fence`]).
    Net = 2,
    /// Federate → RTI: logical tag complete.
    Ltc = 3,
    /// RTI → federate: tag advance grant (exclusive bound).
    Tag = 4,
    /// RTI → federate: provisional tag advance grant (inclusive, breaks
    /// zero-delay cycles).
    Ptag = 5,
    /// Federate → RTI: the federate has shut down and imposes no further
    /// constraints.
    Resign = 6,
    /// Zone ↔ root (hierarchical coordination): a zone-floor report. The
    /// `federate` field carries the **zone id**; `tag` is the zone's
    /// floor — the earliest tag any of its members may still process or
    /// send at. Upward it is the zone's roll-up; downward it is the
    /// root's relay of an upstream zone's floor.
    Floor = 7,
    /// Coordinator → federate: downstream-next-event-tag suppression
    /// state. `tag` is the horizon below which the federate's reports
    /// still matter ([`TAG_NEVER`] = unbounded); `fence.microstep`
    /// carries [`DNET_NET_LATTICE`]/[`DNET_SINK`] flag bits telling the
    /// federate which control reports it may skip.
    Dnet = 8,
    /// Federate → coordinator: declaration of the federate's periodic
    /// event lattice. `tag.nanos` is the lattice `g` in nanoseconds —
    /// a promise that every locally originated event tag is a whole
    /// multiple of `g` at microstep zero, letting the coordinator leap
    /// a stale next-event tag whole periods ahead by itself.
    Period = 9,
    /// Federate → coordinator (crash recovery): a dead federate has
    /// replayed its durable log and asks to re-enter the federation.
    /// `tag` is its last processed tag (the recovered LTC high-water
    /// mark); `fence.microstep` carries the federate's **incarnation
    /// number**, which must exceed the coordinator's stored incarnation —
    /// stale duplicates (a pre-crash frame still in flight, a repeated
    /// rejoin) are dropped by the guard. Upward through the hierarchy it
    /// also carries a zone/root floor *retreat*: the explicit,
    /// generation-guarded exception to the Floor record's monotonicity.
    Rejoin = 10,
}

/// [`CoordKind::Dnet`] flag: the coordinator knows the federate's
/// periodic lattice, so NET reports whose head merely confirms the
/// lattice prediction carry no information and may be skipped.
pub const DNET_NET_LATTICE: u32 = 1 << 0;

/// [`CoordKind::Dnet`] flag: the federate has no downstream edges at this
/// coordinator — its floor constrains nobody, so both NET and LTC
/// reports may be skipped entirely (heartbeats still flow).
pub const DNET_SINK: u32 = 1 << 1;

impl CoordKind {
    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// Returns [`CoordError::UnknownKind`] for unassigned values.
    pub fn from_u8(v: u8) -> Result<Self, CoordError> {
        match v {
            1 => Ok(CoordKind::Join),
            2 => Ok(CoordKind::Net),
            3 => Ok(CoordKind::Ltc),
            4 => Ok(CoordKind::Tag),
            5 => Ok(CoordKind::Ptag),
            6 => Ok(CoordKind::Resign),
            7 => Ok(CoordKind::Floor),
            8 => Ok(CoordKind::Dnet),
            9 => Ok(CoordKind::Period),
            10 => Ok(CoordKind::Rejoin),
            other => Err(CoordError::UnknownKind(other)),
        }
    }

    /// A stable lowercase label for telemetry keys (e.g.
    /// `coord/sent/ltc`) and log lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CoordKind::Join => "join",
            CoordKind::Net => "net",
            CoordKind::Ltc => "ltc",
            CoordKind::Tag => "tag",
            CoordKind::Ptag => "ptag",
            CoordKind::Resign => "resign",
            CoordKind::Floor => "floor",
            CoordKind::Dnet => "dnet",
            CoordKind::Period => "period",
            CoordKind::Rejoin => "rejoin",
        }
    }
}

/// Errors produced while decoding coordination payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordError {
    /// The payload is not exactly [`COORD_PAYLOAD_LEN`] bytes.
    BadLength(usize),
    /// Unknown message kind byte.
    UnknownKind(u8),
    /// The payload does not start with [`COORD_BATCH_MARKER`].
    NotABatch(u8),
    /// A batch payload's length does not match its framing
    /// (header + `count` × [`COORD_PAYLOAD_LEN`]).
    BadBatchLength {
        /// Record count declared in the batch header.
        declared: u16,
        /// Total payload length received.
        got: usize,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::BadLength(got) => {
                write!(
                    f,
                    "coordination payload must be {COORD_PAYLOAD_LEN} bytes, got {got}"
                )
            }
            CoordError::UnknownKind(v) => write!(f, "unknown coordination kind 0x{v:02x}"),
            CoordError::NotABatch(v) => {
                write!(
                    f,
                    "batch frames start with 0x{COORD_BATCH_MARKER:02x}, got 0x{v:02x}"
                )
            }
            CoordError::BadBatchLength { declared, got } => {
                write!(
                    f,
                    "batch declares {declared} records ({} bytes), got {got} bytes",
                    COORD_BATCH_HEADER_LEN + *declared as usize * COORD_PAYLOAD_LEN
                )
            }
        }
    }
}

impl Error for CoordError {}

/// One coordination control message.
///
/// All kinds share the same record layout; fields irrelevant to a kind are
/// zero on the wire and ignored on reception:
///
/// ```text
/// +------+-------------+-----------------------+-----------------------+
/// | kind | federate u16| tag (u64 ns, u32 step)| fence (u64 ns, u32)   |
/// +------+-------------+-----------------------+-----------------------+
/// ```
///
/// * `tag` — NET: the earliest pending event tag ([`TAG_NEVER`] if idle);
///   LTC: the completed tag; TAG/PTAG: the granted bound; Join: unused.
/// * `fence` — NET only: a promise that no *new* event (physical
///   injection or network arrival) will be created with a tag below the
///   fence. Together `min(tag, fence)` lower-bounds every tag the
///   federate may still process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordMsg {
    /// What this message means.
    pub kind: CoordKind,
    /// The federate this message concerns.
    pub federate: u16,
    /// Kind-dependent primary tag.
    pub tag: WireTag,
    /// NET-only fence tag (zero otherwise).
    pub fence: WireTag,
}

impl CoordMsg {
    /// Creates a message with a zero fence.
    #[must_use]
    pub const fn new(kind: CoordKind, federate: u16, tag: WireTag) -> Self {
        CoordMsg {
            kind,
            federate,
            tag,
            fence: WireTag::new(0, 0),
        }
    }

    /// Creates a NET report carrying both the pending head and the fence.
    #[must_use]
    pub const fn net(federate: u16, head: WireTag, fence: WireTag) -> Self {
        CoordMsg {
            kind: CoordKind::Net,
            federate,
            tag: head,
            fence,
        }
    }

    /// The fixed 27-byte record.
    fn record(&self) -> [u8; COORD_PAYLOAD_LEN] {
        let mut r = [0u8; COORD_PAYLOAD_LEN];
        r[0] = self.kind as u8;
        r[1..3].copy_from_slice(&self.federate.to_be_bytes());
        r[3..11].copy_from_slice(&self.tag.nanos.to_be_bytes());
        r[11..15].copy_from_slice(&self.tag.microstep.to_be_bytes());
        r[15..23].copy_from_slice(&self.fence.nanos.to_be_bytes());
        r[23..27].copy_from_slice(&self.fence.microstep.to_be_bytes());
        r
    }

    /// Serializes the payload record to owned bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.record().to_vec()
    }

    /// Serializes the payload record into a recycled pool buffer with
    /// SOME/IP header headroom, so the binding puts the control message
    /// on the wire without further copies or allocations. This is the
    /// path the RTI and the coordinated platforms use for all NET, TAG,
    /// PTAG and LTC traffic.
    #[must_use]
    pub fn encode_into(&self, pool: &FramePool) -> FrameBuf {
        let mut buf = pool.acquire();
        buf.reserve_headroom(HEADER_LEN);
        buf.extend_from_slice(&self.record());
        buf.freeze()
    }

    /// Parses a payload record.
    ///
    /// # Errors
    ///
    /// Returns a [`CoordError`] on wrong length or unknown kind.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoordError> {
        if bytes.len() != COORD_PAYLOAD_LEN {
            return Err(CoordError::BadLength(bytes.len()));
        }
        let kind = CoordKind::from_u8(bytes[0])?;
        let be16 = |i: usize| u16::from_be_bytes([bytes[i], bytes[i + 1]]);
        let be64 = |i: usize| u64::from_be_bytes(bytes[i..i + 8].try_into().expect("slice len"));
        let be32 = |i: usize| u32::from_be_bytes(bytes[i..i + 4].try_into().expect("slice len"));
        Ok(CoordMsg {
            kind,
            federate: be16(1),
            tag: WireTag::new(be64(3), be32(11)),
            fence: WireTag::new(be64(15), be32(23)),
        })
    }
}

impl fmt::Display for CoordMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}(fed={}, tag={})",
            self.kind, self.federate, self.tag
        )
    }
}

/// A batched coordination frame: many [`CoordMsg`] records in one pooled
/// payload (see the module docs). Built incrementally so a coordinator
/// can pack a whole recompute round — grants, floors, liveness records —
/// into a single [`FrameBuf`] without intermediate collections.
#[derive(Debug)]
pub struct CoordBatch {
    buf: FrameMut,
    count: u16,
}

impl CoordBatch {
    /// Starts an empty batch in a recycled pool buffer with SOME/IP
    /// header headroom (the same zero-copy path as
    /// [`CoordMsg::encode_into`]).
    #[must_use]
    pub fn pooled(pool: &FramePool) -> Self {
        let mut buf = pool.acquire();
        buf.reserve_headroom(HEADER_LEN);
        buf.extend_from_slice(&[COORD_BATCH_MARKER, 0, 0]);
        CoordBatch { buf, count: 0 }
    }

    /// Appends one record.
    ///
    /// # Panics
    ///
    /// Panics past `u16::MAX` records — far beyond any federation the
    /// id space admits.
    pub fn push(&mut self, msg: &CoordMsg) {
        self.count = self.count.checked_add(1).expect("batch record count");
        self.buf.extend_from_slice(&msg.record());
    }

    /// Records appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.count)
    }

    /// Whether no record has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the batch: patches the count into the header and freezes
    /// the buffer into a shareable frame view.
    #[must_use]
    pub fn freeze(mut self) -> FrameBuf {
        let count = self.count.to_be_bytes();
        self.buf.as_mut_slice()[1..3].copy_from_slice(&count);
        self.buf.freeze()
    }

    /// Parses a batch payload into a zero-copy record view.
    ///
    /// Validates the framing (marker, declared count vs actual length)
    /// and every record's kind byte up front, so iteration over the view
    /// is infallible.
    ///
    /// # Errors
    ///
    /// Returns [`CoordError::NotABatch`] when the payload does not start
    /// with the marker, [`CoordError::BadBatchLength`] on framing
    /// mismatch and [`CoordError::UnknownKind`] for any bad record.
    pub fn decode(bytes: &[u8]) -> Result<CoordBatchView<'_>, CoordError> {
        if bytes.len() < COORD_BATCH_HEADER_LEN {
            return Err(CoordError::BadLength(bytes.len()));
        }
        if bytes[0] != COORD_BATCH_MARKER {
            return Err(CoordError::NotABatch(bytes[0]));
        }
        let declared = u16::from_be_bytes([bytes[1], bytes[2]]);
        let expected = COORD_BATCH_HEADER_LEN + usize::from(declared) * COORD_PAYLOAD_LEN;
        if bytes.len() != expected {
            return Err(CoordError::BadBatchLength {
                declared,
                got: bytes.len(),
            });
        }
        let records = &bytes[COORD_BATCH_HEADER_LEN..];
        for i in 0..usize::from(declared) {
            CoordKind::from_u8(records[i * COORD_PAYLOAD_LEN])?;
        }
        Ok(CoordBatchView { records })
    }
}

/// A validated, zero-copy view over the records of a [`CoordBatch`]
/// payload. Iterate it (or index with [`CoordBatchView::get`]) to read
/// the records in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordBatchView<'a> {
    records: &'a [u8],
}

impl CoordBatchView<'_> {
    /// Number of records in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len() / COORD_PAYLOAD_LEN
    }

    /// Whether the batch holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `i`-th record, or `None` past the end.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<CoordMsg> {
        let start = i.checked_mul(COORD_PAYLOAD_LEN)?;
        let bytes = self.records.get(start..start + COORD_PAYLOAD_LEN)?;
        // Kinds were validated in `decode`; length is exact by slicing.
        Some(CoordMsg::decode(bytes).expect("validated record"))
    }

    /// Iterates the records in wire order.
    pub fn iter(&self) -> impl Iterator<Item = CoordMsg> + '_ {
        self.records
            .chunks_exact(COORD_PAYLOAD_LEN)
            .map(|b| CoordMsg::decode(b).expect("validated record"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_fixed_size_and_roundtrips() {
        let msg = CoordMsg::net(7, WireTag::new(1_000_000, 3), WireTag::new(900_000, 0));
        let bytes = msg.encode();
        assert_eq!(bytes.len(), COORD_PAYLOAD_LEN);
        assert_eq!(CoordMsg::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in [
            CoordKind::Join,
            CoordKind::Net,
            CoordKind::Ltc,
            CoordKind::Tag,
            CoordKind::Ptag,
            CoordKind::Resign,
            CoordKind::Floor,
            CoordKind::Dnet,
            CoordKind::Period,
            CoordKind::Rejoin,
        ] {
            let msg = CoordMsg::new(kind, 42, WireTag::new(5, 1));
            assert_eq!(CoordMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn decode_rejects_bad_length_and_kind() {
        assert_eq!(CoordMsg::decode(&[]), Err(CoordError::BadLength(0)));
        let mut bytes = CoordMsg::new(CoordKind::Net, 1, TAG_NEVER).encode();
        bytes.push(0);
        assert_eq!(
            CoordMsg::decode(&bytes),
            Err(CoordError::BadLength(COORD_PAYLOAD_LEN + 1))
        );
        let mut bytes = CoordMsg::new(CoordKind::Net, 1, TAG_NEVER).encode();
        bytes[0] = 0x7F;
        assert_eq!(CoordMsg::decode(&bytes), Err(CoordError::UnknownKind(0x7F)));
    }

    #[test]
    fn eventgroups_are_per_federate() {
        assert_ne!(coord_eventgroup(0), coord_eventgroup(1));
        assert_eq!(coord_eventgroup(3), COORD_EVENTGROUP_BASE + 3);
    }

    #[test]
    fn batch_roundtrips_and_recycles() {
        let pool = FramePool::new();
        let records = [
            CoordMsg::net(3, WireTag::new(10, 0), WireTag::new(5, 0)),
            CoordMsg::new(CoordKind::Tag, 7, WireTag::new(99, 2)),
            CoordMsg::new(CoordKind::Floor, 1, WireTag::new(42, 0)),
        ];
        for round in 0..3 {
            let mut batch = CoordBatch::pooled(&pool);
            assert!(batch.is_empty());
            for r in &records {
                batch.push(r);
            }
            assert_eq!(batch.len(), 3);
            let frame = batch.freeze();
            assert_eq!(
                frame.len(),
                COORD_BATCH_HEADER_LEN + 3 * COORD_PAYLOAD_LEN,
                "round {round}"
            );
            let view = CoordBatch::decode(&frame).unwrap();
            assert_eq!(view.len(), 3);
            assert_eq!(view.iter().collect::<Vec<_>>(), records);
            assert_eq!(view.get(1), Some(records[1]));
            assert_eq!(view.get(3), None);
        }
        assert_eq!(pool.stats().created, 1, "one buffer serves every round");
        assert_eq!(pool.stats().reused, 2);
    }

    #[test]
    fn empty_batch_is_valid() {
        let pool = FramePool::new();
        let frame = CoordBatch::pooled(&pool).freeze();
        let view = CoordBatch::decode(&frame).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
    }

    #[test]
    fn batch_decode_rejects_bad_framing() {
        // Not a batch: single records keep decoding as before.
        let single = CoordMsg::new(CoordKind::Net, 1, TAG_NEVER).encode();
        assert_eq!(
            CoordBatch::decode(&single),
            Err(CoordError::NotABatch(CoordKind::Net as u8))
        );
        // Truncated header.
        assert_eq!(
            CoordBatch::decode(&[COORD_BATCH_MARKER]),
            Err(CoordError::BadLength(1))
        );
        // Count/length mismatch.
        let pool = FramePool::new();
        let mut batch = CoordBatch::pooled(&pool);
        batch.push(&CoordMsg::new(CoordKind::Ltc, 0, TAG_NEVER));
        let frame = batch.freeze();
        let mut bytes = frame.to_vec();
        bytes.push(0);
        assert_eq!(
            CoordBatch::decode(&bytes),
            Err(CoordError::BadBatchLength {
                declared: 1,
                got: bytes.len()
            })
        );
        // Bad record kind inside an otherwise well-framed batch.
        let mut bytes = frame.to_vec();
        bytes[COORD_BATCH_HEADER_LEN] = 0x7F;
        assert_eq!(
            CoordBatch::decode(&bytes),
            Err(CoordError::UnknownKind(0x7F))
        );
    }

    #[test]
    fn batch_marker_is_disjoint_from_kinds() {
        for k in 1..=10u8 {
            assert_ne!(k, COORD_BATCH_MARKER);
            CoordKind::from_u8(k).unwrap();
        }
    }
}
