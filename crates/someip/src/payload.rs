//! Payload serialization helpers.
//!
//! SOME/IP serializes arguments in network byte order (big-endian).
//! [`PayloadWriter`] and [`PayloadReader`] provide the primitive codec the
//! generated proxies/skeletons in `dear-ara` build on.
//!
//! Writers fill [`FrameBuf`] buffers: a [pooled](PayloadWriter::pooled)
//! writer recycles buffers from a [`FramePool`] and reserves wire-header
//! headroom so the binding can assemble the full SOME/IP frame around the
//! payload without copying it. Readers borrow — [`PayloadReader`] works
//! on any byte slice, including a [`FrameBuf`] view into a received
//! frame.

use crate::wire::HEADER_LEN;
use dear_sim::{FrameBuf, FrameMut, FramePool};
use std::error::Error;
use std::fmt;

/// Errors raised while reading a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// The payload ended before the requested field.
    UnexpectedEnd {
        /// Bytes requested.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// `finish` was called with unconsumed bytes remaining.
    TrailingBytes(usize),
    /// A length prefix exceeded the remaining payload.
    LengthOutOfBounds(u32),
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "payload ended: needed {needed} bytes, {remaining} remaining"
                )
            }
            PayloadError::InvalidUtf8 => write!(f, "string field is not valid utf-8"),
            PayloadError::TrailingBytes(n) => write!(f, "{n} unconsumed payload bytes"),
            PayloadError::LengthOutOfBounds(n) => {
                write!(f, "length prefix {n} exceeds remaining payload")
            }
        }
    }
}

impl Error for PayloadError {}

/// Serializes fields into a SOME/IP payload (big-endian).
///
/// # Examples
///
/// ```
/// use dear_someip::{PayloadReader, PayloadWriter};
///
/// let mut w = PayloadWriter::new();
/// w.write_u32(7).write_string("lane").write_bool(true);
/// let bytes = w.into_bytes();
///
/// let mut r = PayloadReader::new(&bytes);
/// assert_eq!(r.read_u32()?, 7);
/// assert_eq!(r.read_string()?, "lane");
/// assert!(r.read_bool()?);
/// r.finish()?;
/// # Ok::<(), dear_someip::PayloadError>(())
/// ```
#[derive(Debug)]
pub struct PayloadWriter {
    buf: FrameMut,
}

impl Default for PayloadWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadWriter {
    /// Creates an empty writer backed by a detached (pool-less) buffer.
    #[must_use]
    pub fn new() -> Self {
        PayloadWriter {
            buf: FrameMut::detached(),
        }
    }

    /// Creates a writer backed by a recycled pool buffer, with
    /// [`HEADER_LEN`] bytes of headroom reserved so the eventual
    /// [`SomeIpMessage::into_frame`](crate::SomeIpMessage::into_frame)
    /// can wrap the wire header around the payload in place.
    #[must_use]
    pub fn pooled(pool: &FramePool) -> Self {
        let mut buf = pool.acquire();
        buf.reserve_headroom(HEADER_LEN);
        PayloadWriter { buf }
    }

    /// Appends a `u8`.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u16`.
    pub fn write_u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `i32`.
    pub fn write_i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `i64`.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `f64`.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(u8::from(v));
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn write_string(&mut self, v: &str) -> &mut Self {
        self.write_u32(u32::try_from(v.len()).expect("string too long"));
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Appends a length-prefixed byte blob.
    pub fn write_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.write_u32(u32::try_from(v.len()).expect("blob too long"));
        self.buf.extend_from_slice(v);
        self
    }

    /// Finishes serialization, returning the payload as a shareable
    /// frame view (the zero-copy path).
    #[must_use]
    pub fn into_frame(self) -> FrameBuf {
        self.buf.freeze()
    }

    /// Finishes serialization, returning the payload as owned bytes.
    ///
    /// Compatibility path: this takes the buffer out of pool circulation
    /// (and, for pooled writers, shifts out the headroom). Prefer
    /// [`PayloadWriter::into_frame`] on hot paths.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.into_payload_vec()
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the payload is empty so far.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserializes fields from a SOME/IP payload (big-endian).
///
/// See [`PayloadWriter`] for a round-trip example.
#[derive(Debug, Clone)]
pub struct PayloadReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Creates a reader over payload bytes.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        PayloadReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PayloadError> {
        let remaining = self.data.len() - self.pos;
        if remaining < n {
            return Err(PayloadError::UnexpectedEnd {
                needed: n,
                remaining,
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`PayloadError::UnexpectedEnd`] if the payload is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_u16(&mut self) -> Result<u16, PayloadError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_u32(&mut self) -> Result<u32, PayloadError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_u64(&mut self) -> Result<u64, PayloadError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Reads an `i32`.
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_i32(&mut self) -> Result<i32, PayloadError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_i64(&mut self) -> Result<i64, PayloadError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Reads an `f64`.
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_f64(&mut self) -> Result<f64, PayloadError> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Reads a `bool` (any non-zero byte is `true`).
    ///
    /// # Errors
    ///
    /// See [`PayloadReader::read_u8`].
    pub fn read_bool(&mut self) -> Result<bool, PayloadError> {
        Ok(self.read_u8()? != 0)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`PayloadError::LengthOutOfBounds`] for oversized prefixes
    /// and [`PayloadError::InvalidUtf8`] for malformed contents.
    pub fn read_string(&mut self) -> Result<String, PayloadError> {
        let len = self.read_u32()?;
        let remaining = self.data.len() - self.pos;
        if len as usize > remaining {
            return Err(PayloadError::LengthOutOfBounds(len));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PayloadError::InvalidUtf8)
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`PayloadError::LengthOutOfBounds`] for oversized prefixes.
    pub fn read_bytes(&mut self) -> Result<Vec<u8>, PayloadError> {
        let len = self.read_u32()?;
        let remaining = self.data.len() - self.pos;
        if len as usize > remaining {
            return Err(PayloadError::LengthOutOfBounds(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Asserts that the whole payload was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`PayloadError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), PayloadError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PayloadError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = PayloadWriter::new();
        w.write_u8(1)
            .write_u16(2)
            .write_u32(3)
            .write_u64(4)
            .write_i32(-5)
            .write_i64(-6)
            .write_f64(7.5)
            .write_bool(true)
            .write_string("hello")
            .write_bytes(&[9, 9]);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 1);
        assert_eq!(r.read_u16().unwrap(), 2);
        assert_eq!(r.read_u32().unwrap(), 3);
        assert_eq!(r.read_u64().unwrap(), 4);
        assert_eq!(r.read_i32().unwrap(), -5);
        assert_eq!(r.read_i64().unwrap(), -6);
        assert_eq!(r.read_f64().unwrap(), 7.5);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_string().unwrap(), "hello");
        assert_eq!(r.read_bytes().unwrap(), vec![9, 9]);
        r.finish().unwrap();
    }

    #[test]
    fn big_endian_on_wire() {
        let mut w = PayloadWriter::new();
        w.write_u32(0x0102_0304);
        assert_eq!(w.into_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn short_reads_error() {
        let mut r = PayloadReader::new(&[1, 2]);
        assert!(matches!(
            r.read_u32(),
            Err(PayloadError::UnexpectedEnd {
                needed: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_errors() {
        let mut w = PayloadWriter::new();
        w.write_u32(100); // length prefix claiming 100 bytes
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.read_string(), Err(PayloadError::LengthOutOfBounds(100)));
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.read_bytes(), Err(PayloadError::LengthOutOfBounds(100)));
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut w = PayloadWriter::new();
        w.write_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.read_string(), Err(PayloadError::InvalidUtf8));
    }

    #[test]
    fn pooled_writer_recycles_and_matches_detached_output() {
        let pool = FramePool::new();
        let reference = {
            let mut w = PayloadWriter::new();
            w.write_u32(7).write_string("lane").write_bool(true);
            w.into_bytes()
        };
        for round in 0..3u64 {
            let mut w = PayloadWriter::pooled(&pool);
            w.write_u32(7).write_string("lane").write_bool(true);
            let frame = w.into_frame();
            assert_eq!(frame, reference, "round {round}");
            let mut r = PayloadReader::new(&frame);
            assert_eq!(r.read_u32().unwrap(), 7);
            assert_eq!(r.read_string().unwrap(), "lane");
            assert!(r.read_bool().unwrap());
            r.finish().unwrap();
        }
        // One buffer serviced all three rounds.
        assert_eq!(pool.stats().created, 1);
        assert_eq!(pool.stats().reused, 2);
    }

    #[test]
    fn finish_detects_trailing_bytes() {
        let r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.finish(), Err(PayloadError::TrailingBytes(3)));
    }

    proptest! {
        #[test]
        fn prop_string_roundtrip(s in "\\PC{0,64}") {
            let mut w = PayloadWriter::new();
            w.write_string(&s);
            let bytes = w.into_bytes();
            let mut r = PayloadReader::new(&bytes);
            prop_assert_eq!(r.read_string().unwrap(), s);
            prop_assert!(r.finish().is_ok());
        }

        #[test]
        fn prop_numeric_roundtrip(a in any::<u64>(), b in any::<i64>(), c in any::<f64>()) {
            let mut w = PayloadWriter::new();
            w.write_u64(a).write_i64(b).write_f64(c);
            let bytes = w.into_bytes();
            let mut r = PayloadReader::new(&bytes);
            prop_assert_eq!(r.read_u64().unwrap(), a);
            prop_assert_eq!(r.read_i64().unwrap(), b);
            let rc = r.read_f64().unwrap();
            prop_assert!(rc == c || (rc.is_nan() && c.is_nan()));
        }
    }
}
