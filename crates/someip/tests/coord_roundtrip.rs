//! Property tests for the coordination wire messages: encode→decode must
//! be the identity, and the decoder must never panic on arbitrary bytes —
//! mirroring the `fuzz_decode` guarantees for the data-plane frames.

use dear_sim::FramePool;
use dear_someip::{
    CoordBatch, CoordKind, CoordMsg, MessageId, SomeIpMessage, WireTag, COORD_BATCH_MARKER,
    COORD_METHOD, COORD_SERVICE,
};
use proptest::prelude::*;

fn kind(index: u8) -> CoordKind {
    CoordKind::from_u8(index % 10 + 1).expect("all ten kinds are assigned")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn payload_roundtrip(
        kind_index in any::<u8>(),
        federate in any::<u16>(),
        nanos in any::<u64>(), microstep in any::<u32>(),
        fence_nanos in any::<u64>(), fence_microstep in any::<u32>(),
    ) {
        let msg = CoordMsg {
            kind: kind(kind_index),
            federate,
            tag: WireTag::new(nanos, microstep),
            fence: WireTag::new(fence_nanos, fence_microstep),
        };
        prop_assert_eq!(CoordMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn roundtrip_through_a_full_someip_frame(
        kind_index in any::<u8>(),
        federate in any::<u16>(),
        nanos in any::<u64>(), microstep in any::<u32>(),
    ) {
        // The carriage the RTI client actually uses: the coordination
        // record as the payload of an ordinary SOME/IP message.
        let msg = CoordMsg::new(kind(kind_index), federate, WireTag::new(nanos, microstep));
        let frame = SomeIpMessage::notification(
            MessageId::new(COORD_SERVICE, COORD_METHOD),
            msg.encode(),
        );
        let decoded_frame = SomeIpMessage::decode(&frame.encode()).unwrap();
        prop_assert_eq!(CoordMsg::decode(&decoded_frame.payload).unwrap(), msg);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = CoordMsg::decode(&bytes);
    }

    #[test]
    fn batch_roundtrip(
        records in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u64>(), any::<u32>()),
            0..48,
        ),
    ) {
        // The zone-protocol carriage: N records packed behind the batch
        // marker must come back out in order, bit for bit.
        let msgs: Vec<CoordMsg> = records
            .iter()
            .map(|&(k, federate, nanos, microstep)| {
                CoordMsg::new(kind(k), federate, WireTag::new(nanos, microstep))
            })
            .collect();
        let pool = FramePool::new();
        let mut batch = CoordBatch::pooled(&pool);
        for msg in &msgs {
            batch.push(msg);
        }
        let frame = batch.freeze();
        let view = CoordBatch::decode(frame.as_slice()).unwrap();
        prop_assert_eq!(view.len(), msgs.len());
        prop_assert_eq!(view.iter().collect::<Vec<_>>(), msgs);
    }

    #[test]
    fn batch_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        force_marker in any::<bool>(),
    ) {
        // Arbitrary bytes, with and without a valid-looking marker — the
        // decoder errors cleanly on truncated or misdeclared counts.
        let mut bytes = bytes;
        if force_marker && !bytes.is_empty() {
            bytes[0] = COORD_BATCH_MARKER;
        }
        let _ = CoordBatch::decode(&bytes);
    }

    #[test]
    fn decode_of_mutated_valid_record_never_panics(
        kind_index in any::<u8>(),
        federate in any::<u16>(),
        nanos in any::<u64>(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = CoordMsg::new(kind(kind_index), federate, WireTag::new(nanos, 0)).encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        // Same length, so it decodes to *some* record or a clean unknown
        // kind error; either way no panic and no silent length confusion.
        let _ = CoordMsg::decode(&bytes);
    }
}
