//! The zero-copy frame path, property-tested against the reference
//! encoder.
//!
//! Two guarantees pin the refactor down:
//!
//! 1. **Byte identity** — `SomeIpMessage::into_frame` (pooled, in-place
//!    wire assembly) produces exactly the bytes of the allocating
//!    reference `encode()`, for arbitrary messages, with and without the
//!    DEAR tag trailer, for both pooled-headroom and detached payloads.
//! 2. **Recycling** — a drained pool serves subsequent rounds from its
//!    free list instead of allocating, and decoded payloads are views
//!    into the received frame (read in place, no copy).

use dear_someip::{
    FrameBuf, FramePool, MessageId, MessageType, PayloadWriter, RequestId, ReturnCode,
    SomeIpMessage, WireTag, HEADER_LEN,
};
use proptest::prelude::*;

fn message(
    ids: [u16; 4],
    iface: u8,
    payload: impl Into<FrameBuf>,
    tag: Option<WireTag>,
) -> SomeIpMessage {
    let [service, method, client, session] = ids;
    SomeIpMessage {
        message_id: MessageId::new(service, method),
        request_id: RequestId::new(client, session),
        interface_version: iface,
        message_type: MessageType::Request,
        return_code: ReturnCode::Ok,
        payload: payload.into(),
        tag: tag.map(|t| WireTag::new(t.nanos, t.microstep)),
    }
}

proptest! {
    /// Pooled in-place assembly == reference encoder, detached payloads.
    #[test]
    fn prop_into_frame_matches_encode_detached(
        service in any::<u16>(), method in any::<u16>(),
        client in any::<u16>(), session in any::<u16>(),
        iface in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        tag in proptest::option::of((any::<u64>(), any::<u32>())),
    ) {
        let pool = FramePool::new();
        let ids = [service, method, client, session];
        let msg = message(ids, iface, payload, tag.map(|(n, m)| WireTag::new(n, m)));
        let reference = msg.encode();
        let frame = msg.clone().into_frame(&pool);
        prop_assert_eq!(&frame[..], &reference[..]);
        let decoded = SomeIpMessage::decode_frame(&frame).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Pooled in-place assembly == reference encoder, headroom payloads
    /// (the genuinely zero-copy path).
    #[test]
    fn prop_into_frame_matches_encode_pooled(
        service in any::<u16>(), method in any::<u16>(),
        client in any::<u16>(), session in any::<u16>(),
        iface in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        tag in proptest::option::of((any::<u64>(), any::<u32>())),
    ) {
        let pool = FramePool::new();
        let mut w = PayloadWriter::pooled(&pool);
        for &b in &payload {
            w.write_u8(b);
        }
        let ids = [service, method, client, session];
        let msg = message(ids, iface, w.into_frame(), tag.map(|(n, m)| WireTag::new(n, m)));
        let reference = msg.encode();
        let frame = msg.into_frame(&pool);
        prop_assert_eq!(&frame[..], &reference[..]);
        // In-place assembly: the pool never had to hand out a second
        // buffer for the wire frame.
        prop_assert_eq!(pool.stats().created, 1);
    }
}

#[test]
fn drained_pool_reuses_buffers_instead_of_allocating() {
    let pool = FramePool::new();
    let rounds = 50u64;
    for round in 0..rounds {
        let mut w = PayloadWriter::pooled(&pool);
        w.write_u64(round).write_bytes(&[0xAB; 64]);
        let msg = SomeIpMessage::notification(MessageId::new(0x60, 0x8001), w.into_frame())
            .with_tag(WireTag::new(round, 0));
        let frame = msg.into_frame(&pool);
        let decoded = SomeIpMessage::decode_frame(&frame).unwrap();
        assert_eq!(decoded.tag, Some(WireTag::new(round, 0)));
        // frame + decoded views drop here -> buffer returns to the pool.
    }
    let stats = pool.stats();
    assert_eq!(
        stats.created, 1,
        "steady state must run on one recycled buffer, created {stats:?}"
    );
    assert_eq!(stats.reused, rounds - 1);
    assert_eq!(stats.recycled, rounds);
    assert_eq!(pool.free_count(), 1);
}

#[test]
fn decoded_payload_is_a_view_into_the_frame() {
    let pool = FramePool::new();
    let mut w = PayloadWriter::pooled(&pool);
    w.write_bytes(&[7; 32]);
    let msg = SomeIpMessage::notification(MessageId::new(1, 0x8001), w.into_frame());
    let frame = msg.into_frame(&pool);
    let decoded = SomeIpMessage::decode_frame(&frame).unwrap();
    // Read in place: the payload view's first byte *is* the frame byte
    // right after the header — same address, not a copy.
    assert!(std::ptr::eq(
        &decoded.payload.as_slice()[0],
        &frame.as_slice()[HEADER_LEN]
    ));
}

#[test]
fn fan_out_shares_one_encode() {
    // Sanity check at the API level: cloning a frame for N subscribers
    // shares the buffer (the binding's notify path relies on this).
    let pool = FramePool::new();
    let mut w = PayloadWriter::pooled(&pool);
    w.write_u32(9);
    let frame =
        SomeIpMessage::notification(MessageId::new(1, 0x8001), w.into_frame()).into_frame(&pool);
    let copies: Vec<FrameBuf> = (0..8).map(|_| frame.clone()).collect();
    for c in &copies {
        assert!(std::ptr::eq(&c.as_slice()[0], &frame.as_slice()[0]));
    }
    assert_eq!(pool.stats().created, 1);
}
