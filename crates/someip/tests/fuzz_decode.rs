//! Robustness: the SOME/IP decoder must never panic, whatever bytes the
//! network delivers — malformed frames become `Err`, not crashes.

use dear_someip::{MessageId, RequestId, SomeIpMessage, WireTag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SomeIpMessage::decode(&bytes);
    }

    #[test]
    fn decode_of_mutated_valid_frame_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        tagged in any::<bool>(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let mut msg = SomeIpMessage::request(
            MessageId::new(0x1234, 0x01),
            RequestId::new(0x11, 0x22),
            payload,
        );
        if tagged {
            msg = msg.with_tag(WireTag::new(42, 7));
        }
        let mut bytes = msg.encode();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        // Either it still decodes (the flip hit the payload) or it errors
        // cleanly; both are fine, panicking is not.
        let _ = SomeIpMessage::decode(&bytes);
    }

    #[test]
    fn valid_frames_always_roundtrip_even_with_extreme_fields(
        service in any::<u16>(), method in any::<u16>(),
        client in any::<u16>(), session in any::<u16>(),
        payload_len in 0usize..1024,
    ) {
        let msg = SomeIpMessage::request(
            MessageId::new(service, method),
            RequestId::new(client, session),
            vec![0x5A; payload_len],
        );
        let decoded = SomeIpMessage::decode(&msg.encode()).expect("own frames decode");
        prop_assert_eq!(decoded, msg);
    }
}
