//! The pluggable coordination layer: a platform-driver abstraction that
//! lets the same transactors and scenarios run under either of DEAR's two
//! coordination strategies.
//!
//! * **Decentralized** (paper §III.A): each platform locally gates tags
//!   against its physical clock; safety comes from the `t + D + L + E`
//!   safe-to-process offset. Implemented by [`FederatedPlatform`].
//! * **Centralized**: a run-time infrastructure (RTI) tracks every
//!   federate's next-event tag and explicitly grants tag advances
//!   (NET/TAG/PTAG/LTC). Implemented by `dear-federation`'s
//!   `CoordinatedPlatform`, which layers the grant protocol *on top of*
//!   the same clock gating, so both drivers produce bit-identical event
//!   traces.
//!
//! Transactor `bind` methods accept any [`PlatformDriver`], which is what
//! makes the coordination layer pluggable: scenario code chooses a
//! [`Coordination`] strategy and constructs the matching driver; nothing
//! else changes.
//!
//! [`FederatedPlatform`]: crate::FederatedPlatform

use crate::config::{DearConfig, UntaggedPolicy};
use crate::outbox::OutboundMsg;
use crate::stats::TransactorStats;
use dear_core::{PhysicalAction, ReactionId, Runtime, RuntimeError, RuntimeStats, Tag};
use dear_sim::{LatencyModel, Simulation};
use dear_someip::{FrameBuf, WireTag};
use std::fmt;

/// Which coordination strategy a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Coordination {
    /// PTIDES-style local gating via the `t + D + L + E` offset.
    #[default]
    Decentralized,
    /// RTI-granted tag advances (NET/TAG/PTAG/LTC protocol).
    Centralized,
}

impl fmt::Display for Coordination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coordination::Decentralized => f.write_str("decentralized"),
            Coordination::Centralized => f.write_str("centralized"),
        }
    }
}

/// A platform driver a transactor can bind to.
///
/// Implementors own a reactor [`Runtime`] plus the platform's clock and
/// outbox, and decide *when* the runtime may process tags (that is the
/// coordination strategy). Handles are cheap to clone and shared.
pub trait PlatformDriver: Clone + 'static {
    /// The platform's name.
    fn driver_name(&self) -> String;

    /// Registers the interpreter for an outbox route.
    fn register_route(&self, route: u32, handler: impl Fn(&mut Simulation, OutboundMsg) + 'static);

    /// Attaches a modelled compute cost to a reaction.
    fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel);

    /// Runs a closure with mutable access to the runtime (tracing,
    /// workers, statistics).
    fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R;

    /// Runtime statistics snapshot.
    fn runtime_stats(&self) -> RuntimeStats {
        self.with_runtime(|rt| rt.stats())
    }

    /// Starts the runtime and arms the first wake-up.
    fn start(&self, sim: &mut Simulation);

    /// Injects a payload into a physical action at an exact tag — the
    /// PTIDES "schedule an action with tag `t + D + L + E`" step.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's error when the tag is no longer safe to
    /// process (counted by the runtime) or the runtime is not running.
    fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), RuntimeError>;

    /// Injects a payload tagged with the local physical arrival time.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's error when the runtime is not running.
    fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, RuntimeError>;

    /// Delivers a received message to a physical action according to the
    /// DEAR rules: tagged messages are released at `wire_tag + L + E`;
    /// untagged messages follow the configured [`UntaggedPolicy`].
    fn deliver(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<FrameBuf>,
        payload: FrameBuf,
        wire_tag: Option<WireTag>,
        cfg: &DearConfig,
        stats: &TransactorStats,
    ) {
        match wire_tag {
            Some(w) => {
                let base = crate::config::wire_to_tag(w);
                let release = Tag::new(base.time + cfg.stp_offset(), base.microstep);
                if self.inject_at(sim, action, payload, release).is_err() {
                    stats.record_stp_violation();
                }
            }
            None => match cfg.untagged {
                UntaggedPolicy::Fail => stats.record_untagged_dropped(),
                UntaggedPolicy::PhysicalTime => {
                    if self.inject_now(sim, action, payload).is_err() {
                        stats.record_stp_violation();
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_default_and_display() {
        assert_eq!(Coordination::default(), Coordination::Decentralized);
        assert_eq!(Coordination::Decentralized.to_string(), "decentralized");
        assert_eq!(Coordination::Centralized.to_string(), "centralized");
    }
}
