//! Event transactors: publisher (server) and subscriber (client) roles.
//!
//! "Analogous to methods, a similar pair of transactors for interacting
//! with AP events in the role of clients and servers exists" (paper
//! §III.B). Events are one-way: the server emits, subscribed clients
//! receive. The brake-assistant pipeline (Fig. 4) is a chain of exactly
//! these transactors.

use crate::config::{tag_to_wire, DearConfig, EventSpec, FailoverEventSpec};
use crate::driver::PlatformDriver;
use crate::failover::FailoverBinding;
use crate::outbox::{OutboundMsg, Outbox, OutboxSender};
use crate::stats::TransactorStats;
use dear_core::{PhysicalAction, Port, ProgramBuilder, ReactionCtx};
use dear_sim::Simulation;
use dear_someip::{Binding, FrameBuf, ServiceInstance};
use dear_time::Duration;

fn forward_fn(
    sender: OutboxSender,
    route: u32,
    deadline: Duration,
    port: Port<FrameBuf>,
) -> impl FnMut(&mut (), &mut ReactionCtx<'_>) + Send + 'static {
    move |_, ctx| {
        let payload = ctx.get(port).cloned().unwrap_or_default();
        let out_tag = ctx.tag().delay(deadline);
        sender.push(OutboundMsg {
            route,
            payload,
            tag: tag_to_wire(out_tag),
        });
    }
}

/// Server-side (publisher) event transactor.
///
/// Wire the publishing logic's output port to [`event`](Self::event);
/// each value is sent as a tagged notification to all subscribers.
#[derive(Debug, Clone, Copy)]
pub struct ServerEventTransactor {
    /// Input port: event payloads from the publishing logic.
    pub event: Port<FrameBuf>,
    route: u32,
    /// The sender-side deadline `D`.
    pub deadline: Duration,
}

impl ServerEventTransactor {
    /// Declares the transactor reactor in a program under assembly.
    #[must_use]
    pub fn declare(
        b: &mut ProgramBuilder,
        outbox: &Outbox,
        name: &str,
        deadline: Duration,
    ) -> Self {
        let route = outbox.allocate_route();
        let mut r = b.reactor(&format!("{name}.server_event_transactor"), ());
        let event = r.input::<FrameBuf>("event");
        r.reaction("forward_event")
            .triggered_by(event)
            .with_deadline(
                deadline,
                forward_fn(outbox.sender(), route, deadline, event),
            )
            .body(forward_fn(outbox.sender(), route, deadline, event));
        r.finish();
        ServerEventTransactor {
            event,
            route,
            deadline,
        }
    }

    /// Binds the transactor to the publisher's middleware binding.
    pub fn bind(&self, platform: &impl PlatformDriver, binding: &Binding, spec: EventSpec) {
        let binding = binding.clone();
        platform.register_route(self.route, move |sim, msg| {
            binding.set_outgoing_tag(msg.tag);
            binding.notify(
                sim,
                ServiceInstance::new(spec.service, spec.instance),
                spec.eventgroup,
                spec.event,
                msg.payload,
            );
        });
    }
}

/// Client-side (subscriber) event transactor.
///
/// Wire the consuming logic's input port from [`event`](Self::event);
/// received notifications are released into the reactor network at
/// `t_sender + L + E`.
#[derive(Debug, Clone, Copy)]
pub struct ClientEventTransactor {
    /// Output port: event payloads to the consuming logic.
    pub event: Port<FrameBuf>,
    evt_action: PhysicalAction<FrameBuf>,
}

impl ClientEventTransactor {
    /// Declares the transactor reactor in a program under assembly.
    #[must_use]
    pub fn declare(b: &mut ProgramBuilder, name: &str) -> Self {
        let mut r = b.reactor(&format!("{name}.client_event_transactor"), ());
        let event = r.output::<FrameBuf>("event");
        let evt_action = r.physical_action::<FrameBuf>("event_arrived", Duration::ZERO);
        r.reaction("deliver_event")
            .triggered_by(evt_action)
            .effects(event)
            .body(move |_, ctx| {
                let v = ctx
                    .get_action(&evt_action)
                    .cloned()
                    .expect("action value present");
                ctx.set(event, v);
            });
        r.finish();
        ClientEventTransactor { event, evt_action }
    }

    /// The inbox physical action payloads are injected into, exposed so
    /// crash-recovery platforms can register a durable-input codec for
    /// it (the action id is structural: a rebuilt program with the same
    /// declaration order yields the same id).
    #[must_use]
    pub fn action(&self) -> PhysicalAction<FrameBuf> {
        self.evt_action
    }

    /// Binds the transactor: subscribes on the middleware and routes
    /// received notifications into the reactor network.
    pub fn bind(
        &self,
        platform: &impl PlatformDriver,
        binding: &Binding,
        spec: EventSpec,
        cfg: DearConfig,
    ) -> TransactorStats {
        let stats = TransactorStats::new();
        binding.subscribe(
            ServiceInstance::new(spec.service, spec.instance),
            spec.eventgroup,
        );
        let action = self.evt_action;
        let platform = platform.clone();
        let binding_cb = binding.clone();
        let stats_cb = stats.clone();
        binding.on_event(spec.service, spec.event, move |sim, msg| {
            let wire_tag = binding_cb.take_incoming_tag().or(msg.tag);
            platform.deliver(sim, &action, msg.payload, wire_tag, &cfg, &stats_cb);
        });
        stats
    }

    /// Binds the transactor to a **redundant provider group**: instead of
    /// subscribing to one fixed instance, a [`FailoverBinding`] tracks
    /// the best valid offer of `spec.service` and moves the subscription
    /// whenever the current provider is withdrawn, expires, or (with
    /// [`FailoverBinding::enable_heartbeat`]) goes silent. Received
    /// notifications are routed into the reactor network exactly as in
    /// [`ClientEventTransactor::bind`] — the tag algebra and the
    /// safe-to-process check are unchanged, so failover never reorders
    /// released events.
    ///
    /// Returns the fault counters (shared with the failover binding, so
    /// `failovers`/`stp_violations` land in one place) and the
    /// [`FailoverBinding`] handle.
    pub fn bind_failover(
        &self,
        sim: &mut Simulation,
        platform: &impl PlatformDriver,
        binding: &Binding,
        spec: FailoverEventSpec,
        cfg: DearConfig,
    ) -> (TransactorStats, FailoverBinding) {
        let stats = TransactorStats::new();
        let failover =
            FailoverBinding::attach(sim, binding, spec.service, spec.eventgroup, stats.clone());
        let action = self.evt_action;
        let platform = platform.clone();
        let binding_cb = binding.clone();
        let stats_cb = stats.clone();
        let failover_cb = failover.clone();
        binding.on_event(spec.service, spec.event, move |sim, msg| {
            let wire_tag = binding_cb.take_incoming_tag().or(msg.tag);
            failover_cb.note_event(sim);
            platform.deliver(sim, &action, msg.payload, wire_tag, &cfg, &stats_cb);
        });
        (stats, failover)
    }
}
