//! Field transactors.
//!
//! "Since fields are composed of a get method, a set method and an event,
//! interaction with fields requires the use of one event and two method
//! transactors" (paper §III.B). These types bundle exactly that
//! composition for the client and server roles.

use crate::config::{DearConfig, EventSpec, MethodSpec};
use crate::driver::PlatformDriver;
use crate::event::{ClientEventTransactor, ServerEventTransactor};
use crate::method::{ClientMethodTransactor, ServerMethodTransactor};
use crate::outbox::Outbox;
use crate::stats::TransactorStats;
use dear_ara::FieldIds;
use dear_core::ProgramBuilder;
use dear_someip::Binding;
use dear_time::Duration;

/// Client-side field transactor bundle: get + set + update notifications.
#[derive(Debug, Clone, Copy)]
pub struct FieldClientTransactor {
    /// Transactor for the field getter.
    pub get: ClientMethodTransactor,
    /// Transactor for the field setter.
    pub set: ClientMethodTransactor,
    /// Transactor receiving change notifications.
    pub updates: ClientEventTransactor,
}

impl FieldClientTransactor {
    /// Declares the three constituent transactors.
    #[must_use]
    pub fn declare(
        b: &mut ProgramBuilder,
        outbox: &Outbox,
        name: &str,
        deadline: Duration,
    ) -> Self {
        FieldClientTransactor {
            get: ClientMethodTransactor::declare(b, outbox, &format!("{name}.get"), deadline),
            set: ClientMethodTransactor::declare(b, outbox, &format!("{name}.set"), deadline),
            updates: ClientEventTransactor::declare(b, &format!("{name}.updates")),
        }
    }

    /// Binds all three transactors against a field's wire identifiers.
    pub fn bind(
        &self,
        platform: &impl PlatformDriver,
        binding: &Binding,
        service: u16,
        instance: u16,
        ids: FieldIds,
        cfg: DearConfig,
    ) -> [TransactorStats; 3] {
        let get_stats = self.get.bind(
            platform,
            binding,
            MethodSpec {
                service,
                instance,
                method: ids.get_method,
            },
            cfg,
        );
        let set_stats = self.set.bind(
            platform,
            binding,
            MethodSpec {
                service,
                instance,
                method: ids.set_method,
            },
            cfg,
        );
        let update_stats = self.updates.bind(
            platform,
            binding,
            EventSpec {
                service,
                instance,
                eventgroup: ids.eventgroup,
                event: ids.notifier_event,
            },
            cfg,
        );
        [get_stats, set_stats, update_stats]
    }
}

/// Server-side field transactor bundle.
#[derive(Debug, Clone, Copy)]
pub struct FieldServerTransactor {
    /// Transactor serving the field getter.
    pub get: ServerMethodTransactor,
    /// Transactor serving the field setter.
    pub set: ServerMethodTransactor,
    /// Transactor publishing change notifications.
    pub updates: ServerEventTransactor,
}

impl FieldServerTransactor {
    /// Declares the three constituent transactors.
    #[must_use]
    pub fn declare(
        b: &mut ProgramBuilder,
        outbox: &Outbox,
        name: &str,
        deadline: Duration,
    ) -> Self {
        FieldServerTransactor {
            get: ServerMethodTransactor::declare(b, outbox, &format!("{name}.get"), deadline),
            set: ServerMethodTransactor::declare(b, outbox, &format!("{name}.set"), deadline),
            updates: ServerEventTransactor::declare(
                b,
                outbox,
                &format!("{name}.updates"),
                deadline,
            ),
        }
    }

    /// Binds all three transactors against a field's wire identifiers.
    pub fn bind(
        &self,
        platform: &impl PlatformDriver,
        binding: &Binding,
        service: u16,
        instance: u16,
        ids: FieldIds,
        cfg: DearConfig,
    ) -> [TransactorStats; 2] {
        let get_stats = self.get.bind(
            platform,
            binding,
            MethodSpec {
                service,
                instance,
                method: ids.get_method,
            },
            cfg,
        );
        let set_stats = self.set.bind(
            platform,
            binding,
            MethodSpec {
                service,
                instance,
                method: ids.set_method,
            },
            cfg,
        );
        self.updates.bind(
            platform,
            binding,
            EventSpec {
                service,
                instance,
                eventgroup: ids.eventgroup,
                event: ids.notifier_event,
            },
        );
        [get_stats, set_stats]
    }
}
