//! The federated platform driver: one reactor runtime per platform,
//! coordinated through the discrete-event simulation.
//!
//! A [`FederatedPlatform`] owns a [`Runtime`] and the platform's
//! [`VirtualClock`]. It enforces the reactor rule that no event is
//! processed before the *local physical clock* passes the event's tag:
//! for the earliest pending tag `g`, it schedules a simulation wake-up at
//! the true time at which the local clock reads `g.time` (or later, if
//! the platform is still busy with modelled compute). Combined with the
//! transactors' `t + D + L + E` tag arithmetic this yields the
//! decentralized PTIDES-style coordination of the paper's §III.A —
//! deterministic distributed execution without a central coordinator.
//!
//! **Lock-step mirror:** `dear-federation`'s `CoordinatedPlatform`
//! reimplements this driver's scheduling core (arm/wake generations,
//! cost sampling order, busy-time accounting, outbox draining) with
//! grant gating layered on top. Behavioural changes here must be
//! mirrored there, or the two drivers' traces diverge — the
//! `federation_equivalence` integration test is the guard.

use crate::driver::PlatformDriver;
use crate::outbox::{OutboundMsg, Outbox};
use dear_core::{PhysicalAction, ReactionId, Runtime, RuntimeStats, StepOutcome, Tag};
use dear_sim::{LatencyModel, SimRng, Simulation, VirtualClock};
use dear_time::Instant;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

type RouteHandler = Rc<dyn Fn(&mut Simulation, OutboundMsg)>;

struct PlatformInner {
    name: String,
    runtime: Runtime,
    clock: VirtualClock,
    outbox: Outbox,
    // BTreeMaps so that no observable behaviour can ever depend on hasher
    // state (the route table is only keyed lookups today, but this is a
    // determinism repo — iteration order must be boring by construction).
    routes: BTreeMap<u32, RouteHandler>,
    costs: BTreeMap<ReactionId, LatencyModel>,
    cost_rng: SimRng,
    /// True time until which the platform's processor is busy.
    busy_until: Instant,
    generation: u64,
    started: bool,
}

/// A platform participating in a federated DEAR deployment.
///
/// Cheap to clone; clones share the platform.
#[derive(Clone)]
pub struct FederatedPlatform(Rc<RefCell<PlatformInner>>);

impl fmt::Debug for FederatedPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("FederatedPlatform")
            .field("name", &inner.name)
            .field("started", &inner.started)
            .field("busy_until", &inner.busy_until)
            .finish()
    }
}

impl FederatedPlatform {
    /// Creates a platform around a built runtime.
    ///
    /// `outbox` must be the same outbox the platform's transactors were
    /// declared with; `cost_rng` drives the compute-time models.
    #[must_use]
    pub fn new(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
    ) -> Self {
        FederatedPlatform(Rc::new(RefCell::new(PlatformInner {
            name: name.into(),
            runtime,
            clock,
            outbox,
            routes: BTreeMap::new(),
            costs: BTreeMap::new(),
            cost_rng,
            busy_until: Instant::EPOCH,
            generation: 0,
            started: false,
        })))
    }

    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// Registers the interpreter for an outbox route.
    pub fn register_route(
        &self,
        route: u32,
        handler: impl Fn(&mut Simulation, OutboundMsg) + 'static,
    ) {
        self.0.borrow_mut().routes.insert(route, Rc::new(handler));
    }

    /// Attaches a modelled compute cost to a reaction: each execution of
    /// the reaction occupies the platform's processor for a sampled
    /// duration, delaying subsequent tag processing — which is what makes
    /// deadlines meaningful in simulation.
    pub fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel) {
        self.0.borrow_mut().costs.insert(reaction, model);
    }

    /// The platform's local clock reading at the current simulation time.
    #[must_use]
    pub fn local_now(&self, sim: &Simulation) -> Instant {
        self.0.borrow().clock.local_time(sim.now())
    }

    /// Runs a closure with mutable access to the runtime (tracing,
    /// workers, statistics).
    pub fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        f(&mut self.0.borrow_mut().runtime)
    }

    /// Runtime statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.0.borrow().runtime.stats()
    }

    /// Starts the runtime (anchored at the platform's local clock) and
    /// arms the first wake-up.
    pub fn start(&self, sim: &mut Simulation) {
        {
            let mut inner = self.0.borrow_mut();
            assert!(!inner.started, "platform already started");
            inner.started = true;
            let observe = sim.observe().clone();
            if observe.is_enabled() {
                let lane = observe.register_federate_lane(&inner.name);
                inner.runtime.set_observe(observe, lane);
            }
            let local_now = inner.clock.local_time(sim.now());
            inner.runtime.start(local_now);
        }
        self.arm(sim);
    }

    /// Requests runtime shutdown at the given local time.
    pub fn stop_at_local(&self, sim: &mut Simulation, local: Instant) {
        {
            let mut inner = self.0.borrow_mut();
            let _ = inner.runtime.stop_at(local);
        }
        self.arm(sim);
    }

    /// Injects a payload into a physical action at an exact tag — the
    /// PTIDES "schedule an action with tag `t + D + L + E`" step.
    ///
    /// STP violations are counted in the runtime statistics and reported
    /// to the caller; the event is dropped (observable error, paper
    /// §IV.B).
    pub fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), dear_core::RuntimeError> {
        let result = {
            let mut inner = self.0.borrow_mut();
            inner.runtime.schedule_physical_at(action, value, tag)
        };
        if result.is_ok() {
            self.arm(sim);
        }
        result
    }

    /// Injects a payload tagged with the local physical arrival time (the
    /// "sporadic sensor" path used for untagged messages and the
    /// brake-assistant video adapter).
    pub fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, dear_core::RuntimeError> {
        let result = {
            let mut inner = self.0.borrow_mut();
            let local_now = inner.clock.local_time(sim.now());
            inner.runtime.schedule_physical(action, value, local_now)
        };
        if result.is_ok() {
            self.arm(sim);
        }
        result
    }

    /// Schedules the next wake-up for the earliest pending tag.
    fn arm(&self, sim: &mut Simulation) {
        let (wake_at, generation) = {
            let mut inner = self.0.borrow_mut();
            if !inner.started || !inner.runtime.is_running() {
                return;
            }
            let Some(tag) = inner.runtime.next_tag() else {
                return;
            };
            let tag_true = inner.clock.true_time_at_local(tag.time);
            let wake = tag_true.max(inner.busy_until).max(sim.now());
            inner.generation += 1;
            (wake, inner.generation)
        };
        let platform = self.clone();
        sim.schedule_at(wake_at, move |sim| platform.on_wake(sim, generation));
    }

    fn on_wake(&self, sim: &mut Simulation, generation: u64) {
        // Process one tag, attribute its compute cost, drain the outbox,
        // then re-arm. Superseded wake-ups (a newer arm happened) no-op.
        {
            let inner = self.0.borrow();
            if generation != inner.generation || !inner.started {
                return;
            }
        }
        let (outcome, drain_at) = {
            let mut inner = self.0.borrow_mut();
            let local_now = inner.clock.local_time(sim.now());
            let outcome = inner.runtime.step(local_now);
            let mut drain_at = sim.now();
            if let StepOutcome::Processed(_) = outcome {
                // Accumulate modelled compute time of executed reactions.
                let executed: Vec<ReactionId> = inner.runtime.executed_at_last_tag().to_vec();
                let mut total = dear_time::Duration::ZERO;
                for rid in executed {
                    if let Some(model) = inner.costs.get(&rid) {
                        let model = model.clone();
                        total += model.sample(&mut inner.cost_rng);
                    }
                }
                let busy_from = inner.busy_until.max(sim.now());
                inner.busy_until = busy_from + total;
                // Outputs leave the platform when the modelled compute
                // finishes (the skeleton promise resolves then), not when
                // the tag starts.
                drain_at = inner.busy_until;
            }
            (outcome, drain_at)
        };
        if let StepOutcome::Processed(_) = outcome {
            if drain_at > sim.now() {
                let platform = self.clone();
                sim.schedule_at(drain_at, move |sim| platform.drain_outbox(sim));
            } else {
                self.drain_outbox(sim);
            }
        }
        self.arm(sim);
    }

    fn drain_outbox(&self, sim: &mut Simulation) {
        let msgs = {
            let inner = self.0.borrow();
            inner.outbox.drain()
        };
        for msg in msgs {
            let handler = self.0.borrow().routes.get(&msg.route).cloned();
            match handler {
                Some(h) => h(sim, msg),
                None => panic!(
                    "outbox message for unregistered route {} on platform {}",
                    msg.route,
                    self.0.borrow().name
                ),
            }
        }
    }
}

impl PlatformDriver for FederatedPlatform {
    fn driver_name(&self) -> String {
        self.name()
    }

    fn register_route(&self, route: u32, handler: impl Fn(&mut Simulation, OutboundMsg) + 'static) {
        FederatedPlatform::register_route(self, route, handler);
    }

    fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel) {
        FederatedPlatform::set_reaction_cost(self, reaction, model);
    }

    fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        FederatedPlatform::with_runtime(self, f)
    }

    fn start(&self, sim: &mut Simulation) {
        FederatedPlatform::start(self, sim);
    }

    fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), dear_core::RuntimeError> {
        FederatedPlatform::inject_at(self, sim, action, value, tag)
    }

    fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, dear_core::RuntimeError> {
        FederatedPlatform::inject_now(self, sim, action, value)
    }
}
