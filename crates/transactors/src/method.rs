//! Method transactors: client and server roles.
//!
//! "The client method transactor interacts with a given method of a
//! service interface in the client role. Similarly, the server method
//! transactor interacts with a method in the server role" (paper §III.B).
//!
//! Both are ordinary reactors; their reactions carry the Figure 3 tag
//! algebra:
//!
//! * client request reaction (input deadline `Dc`): forward the payload to
//!   the proxy with wire tag `tc + Dc` (steps 1–6);
//! * server request interrupt: release into the server's reactor network
//!   at `tc + Dc + L + E` (steps 7–11);
//! * server response reaction (input deadline `Ds`): reply through the
//!   skeleton with wire tag `ts + Ds` (steps 12–17);
//! * client response interrupt: release at `ts + Ds + L + E` (18–22).

use crate::config::{tag_to_wire, DearConfig, MethodSpec, UntaggedPolicy};
use crate::driver::PlatformDriver;
use crate::outbox::{OutboundMsg, Outbox, OutboxSender};
use crate::stats::TransactorStats;
use dear_core::{PhysicalAction, Port, ProgramBuilder, ReactionCtx, Tag};
use dear_someip::{Binding, FrameBuf, Responder, ReturnCode};
use dear_time::Duration;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Builds the tag-stamping forward closure shared by a reaction body and
/// its deadline handler (a violated deadline is recorded by the runtime;
/// the message is still forwarded so the pipeline keeps flowing and the
/// fault stays observable rather than turning into silent loss).
fn forward_fn(
    sender: OutboxSender,
    route: u32,
    deadline: Duration,
    port: Port<FrameBuf>,
) -> impl FnMut(&mut (), &mut ReactionCtx<'_>) + Send + 'static {
    move |_, ctx| {
        let payload = ctx.get(port).cloned().unwrap_or_default();
        let out_tag = ctx.tag().delay(deadline);
        sender.push(OutboundMsg {
            route,
            payload,
            tag: tag_to_wire(out_tag),
        });
    }
}

/// Client-side method transactor.
///
/// Wire the client logic's output port to [`request`](Self::request) and
/// its input port from [`response`](Self::response).
#[derive(Debug, Clone, Copy)]
pub struct ClientMethodTransactor {
    /// Input port: request payloads from the client logic.
    pub request: Port<FrameBuf>,
    /// Output port: response payloads to the client logic.
    pub response: Port<FrameBuf>,
    resp_action: PhysicalAction<FrameBuf>,
    route: u32,
    /// The request-side deadline `Dc`.
    pub deadline: Duration,
}

impl ClientMethodTransactor {
    /// Declares the transactor reactor in a program under assembly.
    #[must_use]
    pub fn declare(
        b: &mut ProgramBuilder,
        outbox: &Outbox,
        name: &str,
        deadline: Duration,
    ) -> Self {
        let route = outbox.allocate_route();
        let mut r = b.reactor(&format!("{name}.client_method_transactor"), ());
        let request = r.input::<FrameBuf>("request");
        let response = r.output::<FrameBuf>("response");
        let resp_action = r.physical_action::<FrameBuf>("response_arrived", Duration::ZERO);
        r.reaction("forward_request")
            .triggered_by(request)
            .with_deadline(
                deadline,
                forward_fn(outbox.sender(), route, deadline, request),
            )
            .body(forward_fn(outbox.sender(), route, deadline, request));
        r.reaction("deliver_response")
            .triggered_by(resp_action)
            .effects(response)
            .body(move |_, ctx| {
                let v = ctx
                    .get_action(&resp_action)
                    .cloned()
                    .expect("action value present");
                ctx.set(response, v);
            });
        r.finish();
        ClientMethodTransactor {
            request,
            response,
            resp_action,
            route,
            deadline,
        }
    }

    /// Binds the transactor to a platform and its middleware binding.
    pub fn bind(
        &self,
        platform: &impl PlatformDriver,
        binding: &Binding,
        spec: MethodSpec,
        cfg: DearConfig,
    ) -> TransactorStats {
        let stats = TransactorStats::new();
        let action = self.resp_action;
        let platform = platform.clone();
        let binding = binding.clone();
        let stats_out = stats.clone();
        platform
            .clone()
            .register_route(self.route, move |sim, msg| {
                // Fig. 3 step 2: deposit tc+Dc in the bypass, then step 3: the
                // plain (tag-agnostic) proxy call.
                binding.set_outgoing_tag(msg.tag);
                let platform = platform.clone();
                let binding_cb = binding.clone();
                let stats = stats_out.clone();
                let result = binding.call(
                    sim,
                    spec.service,
                    spec.instance,
                    spec.method,
                    msg.payload,
                    move |sim, resp| {
                        // Steps 18–22: pick ts+Ds from the bypass and release
                        // the response at ts+Ds+L+E.
                        let wire_tag = binding_cb.take_incoming_tag().or(resp.tag);
                        platform.deliver(sim, &action, resp.payload, wire_tag, &cfg, &stats);
                    },
                );
                if result.is_err() {
                    binding.discard_outgoing_tag();
                    stats_out.record_send_failure();
                }
            });
        stats
    }
}

/// Server-side method transactor.
///
/// Wire the server logic's input port from [`request`](Self::request) and
/// its output port to [`response`](Self::response).
#[derive(Debug, Clone, Copy)]
pub struct ServerMethodTransactor {
    /// Output port: request payloads to the server logic.
    pub request: Port<FrameBuf>,
    /// Input port: response payloads from the server logic.
    pub response: Port<FrameBuf>,
    req_action: PhysicalAction<FrameBuf>,
    route: u32,
    /// The response-side deadline `Ds`.
    pub deadline: Duration,
}

impl ServerMethodTransactor {
    /// Declares the transactor reactor in a program under assembly.
    #[must_use]
    pub fn declare(
        b: &mut ProgramBuilder,
        outbox: &Outbox,
        name: &str,
        deadline: Duration,
    ) -> Self {
        let route = outbox.allocate_route();
        let mut r = b.reactor(&format!("{name}.server_method_transactor"), ());
        let request = r.output::<FrameBuf>("request");
        let response = r.input::<FrameBuf>("response");
        let req_action = r.physical_action::<FrameBuf>("request_arrived", Duration::ZERO);
        r.reaction("deliver_request")
            .triggered_by(req_action)
            .effects(request)
            .body(move |_, ctx| {
                let v = ctx
                    .get_action(&req_action)
                    .cloned()
                    .expect("action value present");
                ctx.set(request, v);
            });
        r.reaction("forward_response")
            .triggered_by(response)
            .with_deadline(
                deadline,
                forward_fn(outbox.sender(), route, deadline, response),
            )
            .body(forward_fn(outbox.sender(), route, deadline, response));
        r.finish();
        ServerMethodTransactor {
            request,
            response,
            req_action,
            route,
            deadline,
        }
    }

    /// Binds the transactor: registers the served method on the binding
    /// and the response route on the platform.
    ///
    /// Responses are correlated to requests in FIFO order, which matches
    /// the tag order the reactor network processes requests in.
    pub fn bind(
        &self,
        platform: &impl PlatformDriver,
        binding: &Binding,
        spec: MethodSpec,
        cfg: DearConfig,
    ) -> TransactorStats {
        let stats = TransactorStats::new();
        let pending: Rc<RefCell<VecDeque<Responder>>> = Rc::new(RefCell::new(VecDeque::new()));

        let action = self.req_action;
        let platform_in = platform.clone();
        let binding_in = binding.clone();
        let stats_in = stats.clone();
        let pending_in = pending.clone();
        binding.register_method(spec.service, spec.method, move |sim, req, responder| {
            // Steps 7–10: the binding already fed the bypass; retrieve the
            // tag and schedule the release at tc+Dc+L+E.
            let wire_tag = binding_in.take_incoming_tag().or(req.tag);
            match wire_tag {
                Some(w) => {
                    let base = crate::config::wire_to_tag(w);
                    let release = Tag::new(base.time + cfg.stp_offset(), base.microstep);
                    match platform_in.inject_at(sim, &action, req.payload, release) {
                        Ok(()) => pending_in.borrow_mut().push_back(responder),
                        Err(_) => {
                            stats_in.record_stp_violation();
                            responder.reply_error(sim, ReturnCode::NotOk);
                        }
                    }
                }
                None => match cfg.untagged {
                    UntaggedPolicy::Fail => {
                        stats_in.record_untagged_dropped();
                        responder.reply_error(sim, ReturnCode::NotOk);
                    }
                    UntaggedPolicy::PhysicalTime => {
                        match platform_in.inject_now(sim, &action, req.payload) {
                            Ok(_) => pending_in.borrow_mut().push_back(responder),
                            Err(_) => {
                                stats_in.record_stp_violation();
                                responder.reply_error(sim, ReturnCode::NotOk);
                            }
                        }
                    }
                },
            }
        });

        let binding_out = binding.clone();
        platform.register_route(self.route, move |sim, msg| {
            let responder = pending
                .borrow_mut()
                .pop_front()
                .expect("response produced without pending request");
            // Steps 13–16: deposit ts+Ds, then the plain skeleton reply.
            binding_out.set_outgoing_tag(msg.tag);
            responder.reply(sim, msg.payload);
        });
        stats
    }
}
