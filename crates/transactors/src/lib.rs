//! # dear-transactors — the DEAR integration layer
//!
//! This crate is the heart of the paper's proposal (§III.B): it connects
//! deterministic reactor programs (`dear-core`) to standard AUTOSAR AP
//! service interfaces (`dear-ara` / `dear-someip`) without breaking the
//! standard, by interposing **transactors** — special reactors that
//! "translate between the service-oriented interfaces of SWCs and the
//! event-based input and output ports of reactors".
//!
//! The pieces:
//!
//! * [`ClientMethodTransactor`] / [`ServerMethodTransactor`] — the
//!   two-way method path of Figure 3 with the full 22-step tag algebra
//!   (`tc + Dc`, `+ L + E`, `ts + Ds`, `+ L + E`);
//! * [`ClientEventTransactor`] / [`ServerEventTransactor`] — the one-way
//!   event path (the brake-assistant pipeline);
//! * [`FieldClientTransactor`] / [`FieldServerTransactor`] — fields as
//!   one event plus two method transactors;
//! * [`FederatedPlatform`] — per-platform driver enforcing the PTIDES
//!   safe-to-process rule against the platform's local (skewed) clock,
//!   with modelled per-reaction compute cost so that deadlines are
//!   meaningful in simulation;
//! * [`PlatformDriver`] / [`Coordination`] — the pluggable coordination
//!   layer: transactors bind to any driver, so the same scenario runs
//!   decentralized (this crate) or centralized (`dear-federation`'s RTI)
//!   unchanged;
//! * [`Outbox`] — the deterministic reaction→middleware queue;
//! * [`FailoverBinding`] — deterministic re-binding to redundant
//!   providers (priority offers, TTL heartbeats, silence watchdog);
//! * [`TransactorStats`] — observable fault counters (untagged drops,
//!   safe-to-process violations, failovers).
//!
//! See `tests/fig3_roundtrip.rs` for the full Figure 3 sequence driven
//! end to end with exact tag assertions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod driver;
mod event;
mod failover;
mod field;
mod method;
mod outbox;
mod platform;
mod stats;

pub use config::{
    tag_to_wire, wire_to_tag, DearConfig, EventSpec, FailoverEventSpec, MethodSpec, UntaggedPolicy,
};
pub use driver::{Coordination, PlatformDriver};
pub use event::{ClientEventTransactor, ServerEventTransactor};
pub use failover::FailoverBinding;
pub use field::{FieldClientTransactor, FieldServerTransactor};
pub use method::{ClientMethodTransactor, ServerMethodTransactor};
pub use outbox::{OutboundMsg, Outbox, OutboxSender};
pub use platform::FederatedPlatform;
pub use stats::TransactorStats;
