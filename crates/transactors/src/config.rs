//! Shared configuration and tag conversion for the DEAR layer.

use dear_core::Tag;
use dear_someip::WireTag;
use dear_time::{Duration, Instant};

/// What a transactor does with a message that carries no tag.
///
/// "The default behavior of our transactors is to fail when receiving
/// messages without an associated timestamp, but they can also be
/// configured to tag received messages with the physical time at which
/// they are received" (paper §III.B). The latter treats legacy senders
/// like sporadic sensors and enables gradual migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UntaggedPolicy {
    /// Reject (count and drop) untagged messages.
    #[default]
    Fail,
    /// Tag untagged messages with the local physical arrival time.
    PhysicalTime,
}

/// Per-deployment bounds used in the safe-to-process offset `D + L + E`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DearConfig {
    /// Worst-case network latency `L` between the communicating platforms.
    pub latency_bound: Duration,
    /// Worst-case clock synchronization error `E`.
    pub clock_error: Duration,
    /// Policy for untagged messages.
    pub untagged: UntaggedPolicy,
}

impl DearConfig {
    /// Creates a configuration with the given bounds and the default
    /// (fail) untagged policy.
    #[must_use]
    pub fn new(latency_bound: Duration, clock_error: Duration) -> Self {
        DearConfig {
            latency_bound,
            clock_error,
            untagged: UntaggedPolicy::Fail,
        }
    }

    /// Switches to physical-time tagging of untagged messages.
    #[must_use]
    pub fn accept_untagged(mut self) -> Self {
        self.untagged = UntaggedPolicy::PhysicalTime;
        self
    }

    /// The safe-to-process offset `L + E` added to received tags.
    #[must_use]
    pub fn stp_offset(&self) -> Duration {
        self.latency_bound + self.clock_error
    }
}

/// Converts a reactor tag to its wire representation.
#[must_use]
pub fn tag_to_wire(tag: Tag) -> WireTag {
    WireTag::new(tag.time.as_nanos(), tag.microstep)
}

/// Converts a wire tag back to a reactor tag.
#[must_use]
pub fn wire_to_tag(wire: WireTag) -> Tag {
    Tag::new(Instant::from_nanos(wire.nanos), wire.microstep)
}

/// Addressing of one method within a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSpec {
    /// Service id.
    pub service: u16,
    /// Instance id.
    pub instance: u16,
    /// Method id.
    pub method: u16,
}

/// Addressing of one event within a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSpec {
    /// Service id.
    pub service: u16,
    /// Instance id.
    pub instance: u16,
    /// Eventgroup id.
    pub eventgroup: u16,
    /// Event id.
    pub event: u16,
}

/// Addressing of one event within a *redundant provider group*: no fixed
/// instance id — the [`FailoverBinding`](crate::FailoverBinding) tracks
/// whichever provider instance is currently the best offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEventSpec {
    /// Service id.
    pub service: u16,
    /// Eventgroup id.
    pub eventgroup: u16,
    /// Event id.
    pub event: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_wire_roundtrip() {
        let tag = Tag::new(Instant::from_nanos(123_456_789), 42);
        assert_eq!(wire_to_tag(tag_to_wire(tag)), tag);
    }

    #[test]
    fn stp_offset_adds_bounds() {
        let cfg = DearConfig::new(Duration::from_millis(5), Duration::from_micros(500));
        assert_eq!(
            cfg.stp_offset(),
            Duration::from_millis(5) + Duration::from_micros(500)
        );
        assert_eq!(cfg.untagged, UntaggedPolicy::Fail);
        assert_eq!(cfg.accept_untagged().untagged, UntaggedPolicy::PhysicalTime);
    }
}
