//! The outbox: how reactions talk to the middleware.
//!
//! Reaction bodies execute inside the reactor runtime and must be `Send`
//! (the level-parallel executor may run them on worker threads), so they
//! cannot capture the single-threaded middleware handles directly.
//! Instead, a transactor reaction pushes a plain-data [`OutboundMsg`] into
//! its platform's [`Outbox`]; after each processed tag, the federated
//! platform driver drains the outbox *in push order* and dispatches each
//! message to the route handler registered for it (which then performs
//! the actual proxy/skeleton call on the binding).
//!
//! This preserves the paper's architecture — the reaction logically
//! "invokes the method call on the service proxy object" (Fig. 3 step 3) —
//! while keeping the runtime thread-safe. Payloads travel as [`FrameBuf`]
//! views, so queueing and draining move references, never bytes.

use dear_someip::{FrameBuf, WireTag};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// A middleware operation requested by a transactor reaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundMsg {
    /// The route (registered interpreter) this message belongs to.
    pub route: u32,
    /// Serialized payload.
    pub payload: FrameBuf,
    /// The tag to attach on the wire (already includes the sender
    /// deadline, i.e. `t + D`).
    pub tag: WireTag,
}

/// A shared, thread-safe queue of outbound middleware operations.
///
/// One mutex guards the queue; route allocation (a setup-time counter,
/// never touched on the message path) is a lock-free atomic, so sender
/// threads can never contend with it.
#[derive(Clone, Default)]
pub struct Outbox {
    queue: Arc<Mutex<Vec<OutboundMsg>>>,
    next_route: Arc<AtomicU32>,
}

impl fmt::Debug for Outbox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Outbox")
            .field(
                "pending",
                &self.queue.lock().expect("outbox poisoned").len(),
            )
            .finish()
    }
}

impl Outbox {
    /// Creates an empty outbox.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh route id for a transactor.
    #[must_use]
    pub fn allocate_route(&self) -> u32 {
        self.next_route.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the sendable queue handle for capture in reaction bodies.
    #[must_use]
    pub fn sender(&self) -> OutboxSender {
        OutboxSender(self.queue.clone())
    }

    /// Drains all pending messages in push order.
    #[must_use]
    pub fn drain(&self) -> Vec<OutboundMsg> {
        std::mem::take(&mut *self.queue.lock().expect("outbox poisoned"))
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.lock().expect("outbox poisoned").len()
    }

    /// Whether the outbox is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the outbox to its freshly created state: pending messages
    /// are discarded and route allocation restarts at zero.
    ///
    /// This exists for crash recovery — a platform that rebuilds its
    /// reactor program re-declares its transactors, and those must be
    /// handed the *same* route ids as the first incarnation so the
    /// platform's registered route handlers keep matching. Never call
    /// this on a live platform: in-flight routes would collide.
    pub fn reset(&self) {
        self.queue.lock().expect("outbox poisoned").clear();
        self.next_route.store(0, Ordering::Relaxed);
    }
}

/// The `Send + Sync` half of an [`Outbox`], capturable by reactions.
#[derive(Clone)]
pub struct OutboxSender(Arc<Mutex<Vec<OutboundMsg>>>);

impl fmt::Debug for OutboxSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OutboxSender")
    }
}

impl OutboxSender {
    /// Enqueues a message.
    pub fn push(&self, msg: OutboundMsg) {
        self.0.lock().expect("outbox poisoned").push(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_preserve_order() {
        let outbox = Outbox::new();
        let sender = outbox.sender();
        for i in 0..5u8 {
            sender.push(OutboundMsg {
                route: u32::from(i),
                payload: vec![i].into(),
                tag: WireTag::new(u64::from(i), 0),
            });
        }
        assert_eq!(outbox.len(), 5);
        let drained = outbox.drain();
        assert_eq!(drained.len(), 5);
        assert!(outbox.is_empty());
        for (i, msg) in drained.iter().enumerate() {
            assert_eq!(msg.route, i as u32);
        }
    }

    #[test]
    fn route_ids_are_unique() {
        let outbox = Outbox::new();
        let a = outbox.allocate_route();
        let b = outbox.allocate_route();
        assert_ne!(a, b);
    }

    #[test]
    fn route_allocation_is_shared_across_clones() {
        let outbox = Outbox::new();
        let clone = outbox.clone();
        let a = outbox.allocate_route();
        let b = clone.allocate_route();
        let c = outbox.allocate_route();
        assert_eq!([a, b, c], [0, 1, 2]);
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let outbox = Outbox::new();
        assert_eq!(outbox.allocate_route(), 0);
        assert_eq!(outbox.allocate_route(), 1);
        outbox.sender().push(OutboundMsg {
            route: 0,
            payload: vec![1].into(),
            tag: WireTag::new(0, 0),
        });
        outbox.reset();
        assert!(outbox.is_empty(), "pending messages are discarded");
        assert_eq!(
            outbox.allocate_route(),
            0,
            "a rebuilt transactor gets the same route id again"
        );
    }

    #[test]
    fn sender_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OutboxSender>();
    }
}
