//! Observable fault counters for transactors.
//!
//! The DEAR philosophy is that violated assumptions become *observable
//! errors* rather than silent reordering (paper §IV.B). These counters
//! are where the faults surface.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

#[derive(Default)]
struct StatsInner {
    untagged_dropped: Cell<u64>,
    stp_violations: Cell<u64>,
    send_failures: Cell<u64>,
}

/// Shared fault counters for one transactor binding.
#[derive(Clone, Default)]
pub struct TransactorStats(Rc<StatsInner>);

impl fmt::Debug for TransactorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransactorStats")
            .field("untagged_dropped", &self.untagged_dropped())
            .field("stp_violations", &self.stp_violations())
            .field("send_failures", &self.send_failures())
            .finish()
    }
}

impl TransactorStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Untagged messages dropped under [`UntaggedPolicy::Fail`].
    ///
    /// [`UntaggedPolicy::Fail`]: crate::UntaggedPolicy::Fail
    #[must_use]
    pub fn untagged_dropped(&self) -> u64 {
        self.0.untagged_dropped.get()
    }

    /// Messages whose release tag was no longer safe to process.
    #[must_use]
    pub fn stp_violations(&self) -> u64 {
        self.0.stp_violations.get()
    }

    /// Outgoing operations that failed (e.g. service not discovered).
    #[must_use]
    pub fn send_failures(&self) -> u64 {
        self.0.send_failures.get()
    }

    pub(crate) fn record_untagged_dropped(&self) {
        self.0
            .untagged_dropped
            .set(self.0.untagged_dropped.get() + 1);
    }

    pub(crate) fn record_stp_violation(&self) {
        self.0.stp_violations.set(self.0.stp_violations.get() + 1);
    }

    pub(crate) fn record_send_failure(&self) {
        self.0.send_failures.set(self.0.send_failures.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let stats = TransactorStats::new();
        let other = stats.clone();
        stats.record_untagged_dropped();
        stats.record_stp_violation();
        stats.record_stp_violation();
        stats.record_send_failure();
        assert_eq!(other.untagged_dropped(), 1);
        assert_eq!(other.stp_violations(), 2);
        assert_eq!(other.send_failures(), 1);
    }
}
