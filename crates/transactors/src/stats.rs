//! Observable fault counters for transactors.
//!
//! The DEAR philosophy is that violated assumptions become *observable
//! errors* rather than silent reordering (paper §IV.B). These counters
//! are where the faults surface.

use dear_time::Duration;
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

#[derive(Default)]
struct StatsInner {
    untagged_dropped: Cell<u64>,
    stp_violations: Cell<u64>,
    send_failures: Cell<u64>,
    failovers: Cell<u64>,
    // Coordination-message counters, recorded by the centralized driver
    // (`dear-federation`); they stay zero under decentralized coordination
    // so both drivers report comparable numbers.
    nets_sent: Cell<u64>,
    ltcs_sent: Cell<u64>,
    grants_received: Cell<u64>,
    ptags_received: Cell<u64>,
    bound_breaches: Cell<u64>,
    grant_wait_nanos: Cell<u64>,
    // Batched-coordination counters (hierarchical federations only): how
    // many multi-record control frames this platform sent and received.
    coord_batches_sent: Cell<u64>,
    coord_batches_received: Cell<u64>,
    // Control-plane diet counters: reports the platform *did not* send
    // (same-head NET dedup, DNET sink suppression) and windowed TAGs
    // received (one grant covering a run of future tags).
    nets_suppressed: Cell<u64>,
    windowed_grants: Cell<u64>,
    // Crash-recovery counter: outbound messages swallowed during log
    // replay because an earlier incarnation already put them on the wire.
    replay_suppressed: Cell<u64>,
}

/// Shared fault counters for one transactor binding.
#[derive(Clone, Default)]
pub struct TransactorStats(Rc<StatsInner>);

impl fmt::Debug for TransactorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransactorStats")
            .field("untagged_dropped", &self.untagged_dropped())
            .field("stp_violations", &self.stp_violations())
            .field("send_failures", &self.send_failures())
            .field("failovers", &self.failovers())
            .field("nets_sent", &self.nets_sent())
            .field("ltcs_sent", &self.ltcs_sent())
            .field("grants_received", &self.grants_received())
            .field("ptags_received", &self.ptags_received())
            .field("bound_breaches", &self.bound_breaches())
            .field("grant_wait", &self.grant_wait())
            .field("coord_batches_sent", &self.coord_batches_sent())
            .field("coord_batches_received", &self.coord_batches_received())
            .field("nets_suppressed", &self.nets_suppressed())
            .field("windowed_grants", &self.windowed_grants())
            .field("replay_suppressed", &self.replay_suppressed())
            .finish()
    }
}

impl fmt::Display for TransactorStats {
    /// One-line, greppable counter summary (the transactor-side analogue
    /// of `RuntimeStats`' Display), including the failover/STP counters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stp_violations={} failovers={} untagged_dropped={} send_failures={} \
             nets={} ltcs={} grants={} ptags={} bound_breaches={} grant_wait={} batches={}/{} \
             suppressed={} windowed={} replayed={}",
            self.stp_violations(),
            self.failovers(),
            self.untagged_dropped(),
            self.send_failures(),
            self.nets_sent(),
            self.ltcs_sent(),
            self.grants_received(),
            self.ptags_received(),
            self.bound_breaches(),
            self.grant_wait(),
            self.coord_batches_sent(),
            self.coord_batches_received(),
            self.nets_suppressed(),
            self.windowed_grants(),
            self.replay_suppressed(),
        )
    }
}

impl TransactorStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Untagged messages dropped under [`UntaggedPolicy::Fail`].
    ///
    /// [`UntaggedPolicy::Fail`]: crate::UntaggedPolicy::Fail
    #[must_use]
    pub fn untagged_dropped(&self) -> u64 {
        self.0.untagged_dropped.get()
    }

    /// Messages whose release tag was no longer safe to process.
    #[must_use]
    pub fn stp_violations(&self) -> u64 {
        self.0.stp_violations.get()
    }

    /// Outgoing operations that failed (e.g. service not discovered).
    #[must_use]
    pub fn send_failures(&self) -> u64 {
        self.0.send_failures.get()
    }

    /// Provider re-bindings performed by a
    /// [`FailoverBinding`](crate::FailoverBinding): the subscription (and
    /// method routing) moved from a withdrawn, expired or suspected-dead
    /// provider to the next-priority one.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.0.failovers.get()
    }

    /// Records one provider re-binding.
    pub fn record_failover(&self) {
        self.0.failovers.set(self.0.failovers.get() + 1);
    }

    /// NET (next-event tag) reports sent to the RTI.
    #[must_use]
    pub fn nets_sent(&self) -> u64 {
        self.0.nets_sent.get()
    }

    /// LTC (logical tag complete) reports sent to the RTI.
    #[must_use]
    pub fn ltcs_sent(&self) -> u64 {
        self.0.ltcs_sent.get()
    }

    /// TAG grants received from the RTI (including provisional ones).
    #[must_use]
    pub fn grants_received(&self) -> u64 {
        self.0.grants_received.get()
    }

    /// PTAG (provisional) grants among the received grants.
    #[must_use]
    pub fn ptags_received(&self) -> u64 {
        self.0.ptags_received.get()
    }

    /// Tags processed beyond the last granted bound (must stay zero; a
    /// breach would mean the coordination layer failed to gate the
    /// runtime).
    #[must_use]
    pub fn bound_breaches(&self) -> u64 {
        self.0.bound_breaches.get()
    }

    /// Total true time spent blocked waiting for a grant to release the
    /// earliest pending tag.
    #[must_use]
    pub fn grant_wait(&self) -> Duration {
        Duration::from_nanos(i64::try_from(self.0.grant_wait_nanos.get()).unwrap_or(i64::MAX))
    }

    /// Records a NET report (centralized drivers only).
    pub fn record_net_sent(&self) {
        self.0.nets_sent.set(self.0.nets_sent.get() + 1);
    }

    /// Records an LTC report (centralized drivers only).
    pub fn record_ltc_sent(&self) {
        self.0.ltcs_sent.set(self.0.ltcs_sent.get() + 1);
    }

    /// Records a received grant; `provisional` marks a PTAG.
    pub fn record_grant_received(&self, provisional: bool) {
        self.0.grants_received.set(self.0.grants_received.get() + 1);
        if provisional {
            self.0.ptags_received.set(self.0.ptags_received.get() + 1);
        }
    }

    /// Records a tag processed beyond the granted bound (never expected).
    pub fn record_bound_breach(&self) {
        self.0.bound_breaches.set(self.0.bound_breaches.get() + 1);
    }

    /// Batched control frames sent (hierarchical federations pack LTC +
    /// NET records per frame; flat federations leave this at zero).
    #[must_use]
    pub fn coord_batches_sent(&self) -> u64 {
        self.0.coord_batches_sent.get()
    }

    /// Batched grant frames received from a zone coordinator.
    #[must_use]
    pub fn coord_batches_received(&self) -> u64 {
        self.0.coord_batches_received.get()
    }

    /// Records one batched control frame sent to the coordinator.
    pub fn record_coord_batch_sent(&self) {
        self.0
            .coord_batches_sent
            .set(self.0.coord_batches_sent.get() + 1);
    }

    /// Records one batched grant frame received from the coordinator.
    pub fn record_coord_batch_received(&self) {
        self.0
            .coord_batches_received
            .set(self.0.coord_batches_received.get() + 1);
    }

    /// Control-plane reports suppressed before hitting the wire: NETs
    /// deduped by an unchanged queue head, plus NET/LTC reports skipped
    /// under a coordinator-pushed DNET sink classification.
    #[must_use]
    pub fn nets_suppressed(&self) -> u64 {
        self.0.nets_suppressed.get()
    }

    /// Windowed TAG grants received: grants whose horizon ran past the
    /// strict bound, covering a run of future tags in one round-trip.
    #[must_use]
    pub fn windowed_grants(&self) -> u64 {
        self.0.windowed_grants.get()
    }

    /// Records one suppressed control-plane report.
    pub fn record_net_suppressed(&self) {
        self.0.nets_suppressed.set(self.0.nets_suppressed.get() + 1);
    }

    /// Records one windowed TAG grant.
    pub fn record_windowed_grant(&self) {
        self.0.windowed_grants.set(self.0.windowed_grants.get() + 1);
    }

    /// Outbound messages suppressed during crash-recovery replay: the
    /// drained-watermark in the durable log proved an earlier incarnation
    /// already sent them, so replay must not duplicate them on the wire.
    #[must_use]
    pub fn replay_suppressed(&self) -> u64 {
        self.0.replay_suppressed.get()
    }

    /// Records one replay-suppressed outbound message.
    pub fn record_replay_suppressed(&self) {
        self.0
            .replay_suppressed
            .set(self.0.replay_suppressed.get() + 1);
    }

    /// Accumulates time spent blocked on a grant.
    pub fn add_grant_wait(&self, wait: Duration) {
        let nanos = u64::try_from(wait.as_nanos().max(0)).unwrap_or(0);
        self.0
            .grant_wait_nanos
            .set(self.0.grant_wait_nanos.get().saturating_add(nanos));
    }

    pub(crate) fn record_untagged_dropped(&self) {
        self.0
            .untagged_dropped
            .set(self.0.untagged_dropped.get() + 1);
    }

    pub(crate) fn record_stp_violation(&self) {
        self.0.stp_violations.set(self.0.stp_violations.get() + 1);
    }

    pub(crate) fn record_send_failure(&self) {
        self.0.send_failures.set(self.0.send_failures.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let stats = TransactorStats::new();
        let other = stats.clone();
        stats.record_untagged_dropped();
        stats.record_stp_violation();
        stats.record_stp_violation();
        stats.record_send_failure();
        stats.record_failover();
        assert_eq!(other.untagged_dropped(), 1);
        assert_eq!(other.stp_violations(), 2);
        assert_eq!(other.send_failures(), 1);
        assert_eq!(other.failovers(), 1);
    }

    #[test]
    fn display_is_one_line_and_greppable() {
        let stats = TransactorStats::new();
        stats.record_stp_violation();
        stats.record_failover();
        stats.record_failover();
        let line = stats.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("stp_violations=1"));
        assert!(line.contains("failovers=2"));
        assert!(line.contains("bound_breaches=0"));
    }

    #[test]
    fn coordination_counters_accumulate() {
        let stats = TransactorStats::new();
        stats.record_net_sent();
        stats.record_net_sent();
        stats.record_ltc_sent();
        stats.record_grant_received(false);
        stats.record_grant_received(true);
        stats.add_grant_wait(Duration::from_micros(30));
        stats.add_grant_wait(Duration::from_micros(12));
        stats.record_coord_batch_sent();
        stats.record_coord_batch_received();
        stats.record_coord_batch_received();
        stats.record_net_suppressed();
        stats.record_net_suppressed();
        stats.record_net_suppressed();
        stats.record_windowed_grant();
        stats.record_replay_suppressed();
        stats.record_replay_suppressed();
        assert_eq!(stats.nets_sent(), 2);
        assert_eq!(stats.ltcs_sent(), 1);
        assert_eq!(stats.grants_received(), 2);
        assert_eq!(stats.ptags_received(), 1);
        assert_eq!(stats.bound_breaches(), 0);
        assert_eq!(stats.grant_wait(), Duration::from_micros(42));
        assert_eq!(stats.coord_batches_sent(), 1);
        assert_eq!(stats.coord_batches_received(), 2);
        assert_eq!(stats.nets_suppressed(), 3);
        assert_eq!(stats.windowed_grants(), 1);
        assert!(stats.to_string().contains("batches=1/2"));
        assert!(stats.to_string().contains("suppressed=3"));
        assert!(stats.to_string().contains("windowed=1"));
        assert_eq!(stats.replay_suppressed(), 2);
        assert!(stats.to_string().contains("replayed=2"));
    }
}
