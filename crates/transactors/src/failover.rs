//! Redundant-provider failover for transactor bindings.
//!
//! Industrial AP deployments run safety-relevant services redundantly:
//! several providers offer the same service at different priorities, and
//! a client is expected to re-bind to the next provider when the current
//! one dies — without giving up the deterministic tag order the DEAR
//! transactors establish. A [`FailoverBinding`] implements that client
//! side:
//!
//! * it tracks the **best** valid offer of a service through
//!   [`SdRegistry::watch`] (lowest priority value wins, ties break on
//!   the instance id — a deterministic choice),
//! * on a change — StopOffer, TTL lapse (the SOME/IP-SD heartbeat), or
//!   a better provider appearing — it moves the node's eventgroup
//!   subscription to the new provider **at the SD event's tag**, so two
//!   runs with the same seed re-bind at the identical instant,
//! * optionally, a **heartbeat watchdog** detects providers that are
//!   still offered but silent: if no event arrives for
//!   `timeout` (typically the event period plus the link's
//!   `latency_bound`), the provider is *suspected* and the binding fails
//!   over early, before SD notices; a suspected provider is rehabilitated
//!   when SD next reports it as the fresh best offer,
//! * every re-binding increments the [`TransactorStats::failovers`]
//!   counter and lands in the simulation trace under `"failover"`.
//!
//! Method calls need no extra machinery: [`Binding::call`] resolves the
//! best offer per call, so after a failover the next call reaches the
//! backup automatically. [`FailoverBinding::method_spec`] exposes the
//! currently bound instance for callers that pin specs explicitly.
//!
//! Tag order is preserved by construction: re-binding only changes which
//! provider's *future* notifications are received; messages already
//! tagged by the old provider release at their `t + D + L + E` tags
//! unchanged, and the platform's safe-to-process check remains the sole
//! gate (violations surface in `stp_violations` as always).

use crate::stats::TransactorStats;
use dear_sim::{NodeId, Simulation};
use dear_someip::{Binding, Offer, SdRegistry, ServiceInstance, ANY_INSTANCE};
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

struct FailoverInner {
    sd: SdRegistry,
    node: NodeId,
    service: u16,
    eventgroup: u16,
    stats: TransactorStats,
    /// The provider currently subscribed to, if any.
    current: Option<Offer>,
    /// Providers locally suspected dead (heartbeat silence). Excluded
    /// from selection until SD reports them as a fresh best offer again.
    suspected: BTreeSet<ServiceInstance>,
    /// Heartbeat timeout; `None` disables the watchdog.
    heartbeat: Option<Duration>,
    /// Generation guard for watchdog wake-ups (newer arms supersede).
    watchdog_gen: u64,
    /// Re-binding log: `(tag, provider bound at that tag)`.
    history: Vec<(Instant, Option<ServiceInstance>)>,
    /// Tag of the most recent counted failover (live → live re-route).
    last_failover_at: Option<Instant>,
    /// Last proven sign of life from the bound provider (an event
    /// arriving, or the bind itself). The gap from here to a counted
    /// failover is the outage **detection latency** the telemetry layer
    /// records under `failover/detection_ns`.
    last_live_at: Option<Instant>,
}

/// A client-side binding to a redundant provider group.
///
/// Cheap to clone; clones share the binding. Construct with
/// [`FailoverBinding::attach`] (or through
/// [`ClientEventTransactor::bind_failover`], which also wires the
/// received events into the reactor network).
///
/// [`ClientEventTransactor::bind_failover`]:
///     crate::ClientEventTransactor::bind_failover
#[derive(Clone)]
pub struct FailoverBinding(Rc<RefCell<FailoverInner>>);

impl fmt::Debug for FailoverBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("FailoverBinding")
            .field("service", &inner.service)
            .field("current", &inner.current.map(|o| o.instance))
            .field("suspected", &inner.suspected.len())
            .field("failovers", &inner.stats.failovers())
            .finish()
    }
}

impl FailoverBinding {
    /// Attaches a failover binding for `service`/`eventgroup` on the
    /// node served by `binding`.
    ///
    /// Subscribes to the current best offer immediately (if one exists)
    /// and re-binds automatically from then on. Re-bindings count into
    /// `stats.failovers()`.
    #[must_use]
    pub fn attach(
        sim: &mut Simulation,
        binding: &Binding,
        service: u16,
        eventgroup: u16,
        stats: TransactorStats,
    ) -> Self {
        let this = FailoverBinding(Rc::new(RefCell::new(FailoverInner {
            sd: binding.sd(),
            node: binding.node(),
            service,
            eventgroup,
            stats,
            current: None,
            suspected: BTreeSet::new(),
            heartbeat: None,
            watchdog_gen: 0,
            history: Vec::new(),
            last_failover_at: None,
            last_live_at: None,
        })));
        let hook = this.clone();
        binding
            .sd()
            .watch(sim, service, ANY_INSTANCE, move |sim, best| {
                hook.on_best_changed(sim, best);
            });
        this
    }

    /// Enables the heartbeat watchdog: if no event arrives for `timeout`
    /// while a provider is bound, that provider is suspected dead and
    /// the binding fails over to the next candidate without waiting for
    /// its SD offer to lapse.
    ///
    /// `timeout` should cover one nominal event period plus the link's
    /// worst-case latency `L` (and clock error `E`), or healthy
    /// providers will be suspected spuriously.
    pub fn enable_heartbeat(&self, sim: &mut Simulation, timeout: Duration) {
        self.0.borrow_mut().heartbeat = Some(timeout);
        self.arm_watchdog(sim);
    }

    /// Records provider liveness: call on every received event of the
    /// watched service. Re-arms the heartbeat watchdog.
    pub fn note_event(&self, sim: &mut Simulation) {
        let rearm = {
            let mut inner = self.0.borrow_mut();
            inner.last_live_at = Some(sim.now());
            inner.heartbeat.is_some()
        };
        if rearm {
            self.arm_watchdog(sim);
        }
    }

    /// The provider currently bound, if any.
    #[must_use]
    pub fn current(&self) -> Option<Offer> {
        self.0.borrow().current
    }

    /// The instance id currently bound, for building method specs.
    #[must_use]
    pub fn instance(&self) -> Option<u16> {
        self.0.borrow().current.map(|o| o.instance.instance)
    }

    /// A [`MethodSpec`](crate::MethodSpec) for `method` on the currently
    /// bound provider instance, or `None` while unbound.
    #[must_use]
    pub fn method_spec(&self, method: u16) -> Option<crate::MethodSpec> {
        let inner = self.0.borrow();
        inner.current.map(|o| crate::MethodSpec {
            service: inner.service,
            instance: o.instance.instance,
            method,
        })
    }

    /// Count of re-bindings performed so far (shared with the stats
    /// handle passed to [`FailoverBinding::attach`]).
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.0.borrow().stats.failovers()
    }

    /// The re-binding log: each entry is the tag at which the binding
    /// switched and the provider it switched to (`None` = parked, no
    /// candidate left). The initial binding is entry 0.
    #[must_use]
    pub fn history(&self) -> Vec<(Instant, Option<ServiceInstance>)> {
        self.0.borrow().history.clone()
    }

    /// The tag of the most recent *failover* (a live → live re-route;
    /// parkings and recoveries do not move it), if one happened yet.
    #[must_use]
    pub fn last_failover_at(&self) -> Option<Instant> {
        self.0.borrow().last_failover_at
    }

    fn on_best_changed(&self, sim: &mut Simulation, best: Option<Offer>) {
        // SD reporting a provider as the fresh best rehabilitates it: a
        // re-offer after expiry or StopOffer proves it came back.
        if let Some(b) = best {
            self.0.borrow_mut().suspected.remove(&b.instance);
        }
        self.rebind(sim);
    }

    /// Re-evaluates the candidate list and moves the subscription if the
    /// selected provider changed. The selection — best valid offer not
    /// locally suspected — is deterministic, so every run with the same
    /// seed re-binds identically.
    fn rebind(&self, sim: &mut Simulation) {
        let (sd, node, service, eventgroup) = {
            let inner = self.0.borrow();
            (
                inner.sd.clone(),
                inner.node,
                inner.service,
                inner.eventgroup,
            )
        };
        let target = {
            let inner = self.0.borrow();
            sd.offers_of(sim, service)
                .into_iter()
                .find(|o| !inner.suspected.contains(&o.instance))
        };
        let switched = {
            let mut inner = self.0.borrow_mut();
            let same = match (&inner.current, &target) {
                (None, None) => true,
                (Some(a), Some(b)) => a.instance == b.instance && a.node == b.node,
                _ => false,
            };
            if same {
                // Only the TTL moved (renewal); keep the fresh expiry.
                inner.current = target;
                None
            } else {
                let prev = inner.current.take();
                if let Some(p) = &prev {
                    sd.unsubscribe(p.instance, eventgroup, node);
                }
                if let Some(t) = &target {
                    sd.subscribe(t.instance, eventgroup, node);
                }
                inner.current = target;
                inner.history.push((sim.now(), target.map(|o| o.instance)));
                // A failover is a re-route between two live bindings;
                // the initial bind and a recovery from "parked" are not.
                if prev.is_some() && target.is_some() {
                    inner.stats.record_failover();
                    inner.last_failover_at = Some(sim.now());
                    sim.observe().count("failover/rebinds", 1);
                    if let Some(live) = inner.last_live_at {
                        sim.observe()
                            .record_duration("failover/detection_ns", sim.now() - live);
                    }
                }
                // Binding a provider counts as a sign of life: the next
                // detection window starts here.
                if target.is_some() {
                    inner.last_live_at = Some(sim.now());
                }
                Some((prev, target))
            }
        };
        if let Some((prev, target)) = switched {
            sim.trace_with("failover", || {
                let from = prev.map_or("-".into(), |o| o.instance.to_string());
                let to = target.map_or("-".into(), |o| o.instance.to_string());
                format!("service {service:04x} rebind {from} -> {to}")
            });
            // A fresh provider gets a fresh heartbeat window.
            self.arm_watchdog(sim);
        }
    }

    /// (Re-)arms the heartbeat watchdog; any previously scheduled
    /// wake-up is superseded by the generation bump.
    fn arm_watchdog(&self, sim: &mut Simulation) {
        let armed = {
            let mut inner = self.0.borrow_mut();
            inner.heartbeat.map(|timeout| {
                inner.watchdog_gen += 1;
                (inner.watchdog_gen, timeout)
            })
        };
        let Some((generation, timeout)) = armed else {
            return;
        };
        let this = self.clone();
        sim.schedule_in(timeout, move |sim| this.on_watchdog(sim, generation));
    }

    fn on_watchdog(&self, sim: &mut Simulation, generation: u64) {
        let suspect = {
            let mut inner = self.0.borrow_mut();
            if generation != inner.watchdog_gen {
                return; // superseded by a later event or re-bind
            }
            let Some(current) = inner.current else {
                return; // parked: nothing to suspect
            };
            inner.suspected.insert(current.instance);
            current.instance
        };
        sim.trace_with("failover", || {
            format!("provider {suspect} suspected dead (heartbeat silence)")
        });
        sim.observe().count("failover/suspicions", 1);
        self.rebind(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_sim::{LinkConfig, NetworkHandle};

    fn setup(seed: u64) -> (Simulation, Binding) {
        let sim = Simulation::new(seed);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let binding = Binding::new(&net, &sd, NodeId(9), 0x99);
        (sim, binding)
    }

    #[test]
    fn binds_best_offer_and_fails_over_on_stop_offer() {
        let (mut sim, binding) = setup(0);
        let sd = binding.sd();
        let primary = ServiceInstance::new(0x40, 1);
        let backup = ServiceInstance::new(0x40, 2);
        sd.offer_prioritized(&mut sim, primary, NodeId(1), Duration::from_secs(60), 0);
        sd.offer_prioritized(&mut sim, backup, NodeId(2), Duration::from_secs(60), 1);
        let stats = TransactorStats::new();
        let fb = FailoverBinding::attach(&mut sim, &binding, 0x40, 1, stats.clone());
        assert_eq!(fb.instance(), Some(1));
        assert_eq!(sd.subscribers(primary, 1), vec![NodeId(9)]);
        assert_eq!(stats.failovers(), 0, "initial bind is not a failover");

        sd.stop_offer(&mut sim, primary);
        assert_eq!(fb.instance(), Some(2));
        assert!(sd.subscribers(primary, 1).is_empty());
        assert_eq!(sd.subscribers(backup, 1), vec![NodeId(9)]);
        assert_eq!(stats.failovers(), 1);
        assert_eq!(fb.last_failover_at(), Some(sim.now()));
        assert_eq!(fb.method_spec(7).unwrap().instance, 2);

        // The primary returning outranks the backup: fail back.
        sd.offer_prioritized(&mut sim, primary, NodeId(1), Duration::from_secs(60), 0);
        assert_eq!(fb.instance(), Some(1));
        assert_eq!(stats.failovers(), 2);
        assert!(sd.subscribers(backup, 1).is_empty());
    }

    #[test]
    fn ttl_expiry_fails_over_at_the_expiry_tag() {
        let (mut sim, binding) = setup(1);
        let sd = binding.sd();
        let primary = ServiceInstance::new(0x40, 1);
        let backup = ServiceInstance::new(0x40, 2);
        sd.offer_prioritized(&mut sim, primary, NodeId(1), Duration::from_millis(20), 0);
        sd.offer_prioritized(&mut sim, backup, NodeId(2), Duration::from_secs(60), 1);
        let fb = FailoverBinding::attach(&mut sim, &binding, 0x40, 1, TransactorStats::new());
        assert_eq!(fb.instance(), Some(1));
        sim.run_until(Instant::from_secs(1));
        assert_eq!(fb.instance(), Some(2));
        assert_eq!(
            fb.history(),
            vec![
                (Instant::EPOCH, Some(primary)),
                (
                    Instant::from_millis(20) + Duration::from_nanos(1),
                    Some(backup)
                ),
            ]
        );
    }

    #[test]
    fn heartbeat_silence_suspects_provider_before_sd_notices() {
        let (mut sim, binding) = setup(2);
        let sd = binding.sd();
        let primary = ServiceInstance::new(0x40, 1);
        let backup = ServiceInstance::new(0x40, 2);
        // Both offers stay valid for the whole test: only the watchdog
        // can trigger the failover.
        sd.offer_prioritized(&mut sim, primary, NodeId(1), Duration::from_secs(60), 0);
        sd.offer_prioritized(&mut sim, backup, NodeId(2), Duration::from_secs(60), 1);
        let stats = TransactorStats::new();
        let fb = FailoverBinding::attach(&mut sim, &binding, 0x40, 1, stats.clone());
        fb.enable_heartbeat(&mut sim, Duration::from_millis(10));
        // Events from the primary until 25 ms, then silence; the backup
        // "sends" from 40 ms to 50 ms, then goes silent too.
        for k in (1..=5u64).chain(8..=10) {
            let fb2 = fb.clone();
            sim.schedule_at(Instant::from_millis(5 * k), move |sim| fb2.note_event(sim));
        }
        sim.run_until(Instant::from_millis(30));
        assert_eq!(fb.instance(), Some(1));
        // Primary silent since 25 ms: suspected one timeout later, even
        // though SD still lists its offer as valid.
        sim.run_until(Instant::from_millis(52));
        assert_eq!(fb.instance(), Some(2));
        assert_eq!(stats.failovers(), 1);
        assert_eq!(
            fb.last_failover_at(),
            Some(Instant::from_millis(25) + Duration::from_millis(10))
        );
        assert_eq!(sd.find(&sim, 0x40, ANY_INSTANCE).unwrap().instance, primary);

        // The backup going silent as well parks the binding: the strict
        // watchdog holds every provider to the same deadline.
        sim.run_until(Instant::from_secs(1));
        assert_eq!(fb.instance(), None);

        // A StopOffer of the (suspected) primary makes the backup the
        // fresh SD best — rehabilitating it — and a later re-offer of the
        // primary rehabilitates and rebinds that one too.
        sd.stop_offer(&mut sim, primary);
        assert_eq!(fb.instance(), Some(2));
        sd.offer_prioritized(&mut sim, primary, NodeId(1), Duration::from_secs(60), 0);
        assert_eq!(fb.instance(), Some(1));
    }

    #[test]
    fn parking_and_recovery_are_not_failovers() {
        let (mut sim, binding) = setup(3);
        let sd = binding.sd();
        let only = ServiceInstance::new(0x40, 1);
        let stats = TransactorStats::new();
        let fb = FailoverBinding::attach(&mut sim, &binding, 0x40, 1, stats.clone());
        assert_eq!(fb.instance(), None);
        sd.offer(&mut sim, only, NodeId(1), Duration::from_secs(60));
        assert_eq!(fb.instance(), Some(1));
        sd.stop_offer(&mut sim, only);
        assert_eq!(fb.instance(), None, "parked: no candidate left");
        sd.offer(&mut sim, only, NodeId(1), Duration::from_secs(60));
        assert_eq!(fb.instance(), Some(1));
        assert_eq!(
            stats.failovers(),
            0,
            "park/recover cycles are not failovers"
        );
        assert_eq!(fb.history().len(), 3);
        assert_eq!(fb.last_failover_at(), None);
    }
}
