//! End-to-end test of the paper's Figure 3: a tagged method call travelling
//! client → server → client through transactors, proxies/skeletons, the
//! modified SOME/IP binding, and the simulated network — with the exact
//! tag algebra `tc + Dc`, `+ L + E`, `ts + Ds`, `+ L + E` asserted.

use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_sim::{LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear_someip::{Binding, FrameBuf, SdRegistry, ServiceInstance, SomeIpMessage, WireTag};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientEventTransactor, ClientMethodTransactor, DearConfig, EventSpec, FederatedPlatform,
    MethodSpec, Outbox, ServerEventTransactor, ServerMethodTransactor, UntaggedPolicy,
};
use std::sync::{Arc, Mutex};

const SERVICE: u16 = 0x1001;
const INSTANCE: u16 = 1;
const METHOD: u16 = 0x01;

const DC: Duration = Duration::from_millis(1); // client request deadline
const DS: Duration = Duration::from_millis(2); // server response deadline
const L: Duration = Duration::from_millis(5); // worst-case latency bound
const E: Duration = Duration::from_millis(1); // worst-case clock error

type TagLog = Arc<Mutex<Vec<(Tag, FrameBuf)>>>;

/// Builds the two-platform Figure 3 deployment and runs one round trip.
/// Returns (client log, server log, client platform, server platform).
fn run_roundtrip(seed: u64, net_latency: LatencyModel) -> (TagLog, TagLog) {
    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(LinkConfig::with_latency(net_latency), sim.fork_rng("net"));
    let sd = SdRegistry::new();
    let cfg = DearConfig::new(L, E);

    // --- Client platform (node 1) ---------------------------------------
    let client_log: TagLog = Arc::new(Mutex::new(Vec::new()));
    let outbox_c = Outbox::new();
    let mut bc = ProgramBuilder::new();
    let cmt = ClientMethodTransactor::declare(&mut bc, &outbox_c, "calc", DC);
    {
        let mut logic = bc.reactor("client_logic", ());
        let req_out = logic.output::<FrameBuf>("request");
        let t = logic.timer("fire", Duration::from_millis(10), None);
        logic
            .reaction("send")
            .triggered_by(t)
            .effects(req_out)
            .body(move |_, ctx| ctx.set(req_out, vec![7].into()));
        let log = client_log.clone();
        logic
            .reaction("receive")
            .triggered_by(cmt.response)
            .body(move |_, ctx| {
                log.lock()
                    .unwrap()
                    .push((ctx.tag(), ctx.get(cmt.response).unwrap().clone()));
            });
        logic.finish();
        bc.connect(req_out, cmt.request).unwrap();
    }
    let client_rt = Runtime::new(bc.build().unwrap());
    let client_platform = FederatedPlatform::new(
        "client",
        client_rt,
        VirtualClock::ideal(),
        outbox_c,
        sim.fork_rng("client-costs"),
    );
    let client_binding = Binding::new(&net, &sd, NodeId(1), 0x11);
    cmt.bind(
        &client_platform,
        &client_binding,
        MethodSpec {
            service: SERVICE,
            instance: INSTANCE,
            method: METHOD,
        },
        cfg,
    );

    // --- Server platform (node 2), clock 200 µs ahead (within E) ---------
    let server_log: TagLog = Arc::new(Mutex::new(Vec::new()));
    let outbox_s = Outbox::new();
    let mut bs = ProgramBuilder::new();
    let smt = ServerMethodTransactor::declare(&mut bs, &outbox_s, "calc", DS);
    {
        let mut logic = bs.reactor("server_logic", ());
        let resp_out = logic.output::<FrameBuf>("response");
        let log = server_log.clone();
        logic
            .reaction("serve")
            .triggered_by(smt.request)
            .effects(resp_out)
            .body(move |_, ctx| {
                let req = ctx.get(smt.request).unwrap().clone();
                log.lock().unwrap().push((ctx.tag(), req.clone()));
                ctx.set(resp_out, vec![req[0] + 1].into());
            });
        logic.finish();
        bs.connect(resp_out, smt.response).unwrap();
    }
    let server_rt = Runtime::new(bs.build().unwrap());
    let server_platform = FederatedPlatform::new(
        "server",
        server_rt,
        VirtualClock::with_offset(Duration::from_micros(200)),
        outbox_s,
        sim.fork_rng("server-costs"),
    );
    let server_binding = Binding::new(&net, &sd, NodeId(2), 0x22);
    server_binding.offer(
        &mut sim,
        ServiceInstance::new(SERVICE, INSTANCE),
        Duration::from_secs(3600),
    );
    smt.bind(
        &server_platform,
        &server_binding,
        MethodSpec {
            service: SERVICE,
            instance: INSTANCE,
            method: METHOD,
        },
        cfg,
    );

    client_platform.start(&mut sim);
    server_platform.start(&mut sim);
    sim.run_until(Instant::from_secs(1));
    (client_log, server_log)
}

#[test]
fn fig3_tag_algebra_exact() {
    let (client_log, server_log) = run_roundtrip(
        1,
        LatencyModel::constant(Duration::from_millis(2)), // actual < L bound
    );

    // tc = 10 ms. Request released at the server at tc + Dc + L + E = 17 ms.
    let server = server_log.lock().unwrap();
    assert_eq!(server.len(), 1, "exactly one request served");
    assert_eq!(server[0].0, Tag::at(Instant::from_millis(17)));
    assert_eq!(server[0].1, vec![7]);

    // ts = 17 ms; response released at the client at ts + Ds + L + E = 25 ms.
    let client = client_log.lock().unwrap();
    assert_eq!(client.len(), 1, "exactly one response received");
    assert_eq!(client[0].0, Tag::at(Instant::from_millis(25)));
    assert_eq!(client[0].1, vec![8]);
}

#[test]
fn fig3_result_is_independent_of_network_jitter_seed() {
    // As long as actual latency stays below the bound L, the *logical*
    // result (tags and values) must be identical for every seed — the
    // central determinism claim.
    let mut results = Vec::new();
    for seed in 0..8 {
        let (client_log, _) = run_roundtrip(
            seed,
            LatencyModel::uniform(Duration::from_micros(100), Duration::from_millis(4)),
        );
        let log = client_log.lock().unwrap().clone();
        results.push(log);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0], "logical behaviour must not vary with seed");
    }
    assert_eq!(results[0].len(), 1);
    assert_eq!(results[0][0].0, Tag::at(Instant::from_millis(25)));
}

#[test]
fn stp_violation_is_observable_when_latency_bound_is_wrong() {
    // Publisher → subscriber events with an *understated* L: the subscriber
    // platform keeps logical time moving with a local timer, so a late
    // message's release tag falls into the logical past and must be
    // rejected as an observable STP violation (paper §IV.B), not silently
    // reordered.
    let mut sim = Simulation::new(3);
    let net = NetworkHandle::new(
        // Actual latency 20 ms >> bound L = 5 ms.
        LinkConfig::ideal(Duration::from_millis(20)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let cfg = DearConfig::new(L, E);
    let spec = EventSpec {
        service: SERVICE,
        instance: INSTANCE,
        eventgroup: 1,
        event: 0x8001,
    };

    // Publisher platform.
    let outbox_p = Outbox::new();
    let mut bp = ProgramBuilder::new();
    let set = ServerEventTransactor::declare(&mut bp, &outbox_p, "frames", Duration::ZERO);
    {
        let mut logic = bp.reactor("publisher", 0u8);
        let out = logic.output::<FrameBuf>("frame");
        let t = logic.timer("tick", Duration::from_millis(10), None);
        logic
            .reaction("emit")
            .triggered_by(t)
            .effects(out)
            .body(move |_, ctx| ctx.set(out, vec![1].into()));
        logic.finish();
        bp.connect(out, set.event).unwrap();
    }
    let pub_platform = FederatedPlatform::new(
        "publisher",
        Runtime::new(bp.build().unwrap()),
        VirtualClock::ideal(),
        outbox_p,
        sim.fork_rng("pub-costs"),
    );
    let pub_binding = Binding::new(&net, &sd, NodeId(1), 0x11);
    pub_binding.offer(
        &mut sim,
        ServiceInstance::new(SERVICE, INSTANCE),
        Duration::from_secs(3600),
    );
    set.bind(&pub_platform, &pub_binding, spec);

    // Subscriber platform with a fast local timer.
    let outbox_s = Outbox::new();
    let mut bs = ProgramBuilder::new();
    let cet = ClientEventTransactor::declare(&mut bs, "frames");
    let received = Arc::new(Mutex::new(0u32));
    {
        let mut logic = bs.reactor("subscriber", ());
        let t = logic.timer("local_work", Duration::ZERO, Some(Duration::from_millis(5)));
        logic.reaction("tick").triggered_by(t).body(|_, _| {});
        let rec = received.clone();
        logic
            .reaction("consume")
            .triggered_by(cet.event)
            .body(move |_, _| *rec.lock().unwrap() += 1);
        logic.finish();
    }
    let sub_platform = FederatedPlatform::new(
        "subscriber",
        Runtime::new(bs.build().unwrap()),
        VirtualClock::ideal(),
        outbox_s,
        sim.fork_rng("sub-costs"),
    );
    let sub_binding = Binding::new(&net, &sd, NodeId(2), 0x22);
    let stats = cet.bind(&sub_platform, &sub_binding, spec, cfg);

    pub_platform.start(&mut sim);
    sub_platform.start(&mut sim);
    sim.run_until(Instant::from_millis(200));

    // Event tagged 10 ms, release at 16 ms, arrives at true 30 ms — by
    // then the subscriber has processed its 25/30 ms timer tags.
    assert_eq!(*received.lock().unwrap(), 0, "late event must not deliver");
    assert_eq!(stats.stp_violations(), 1, "violation must be observable");
    assert!(sub_platform.stats().stp_violations >= 1);
}

#[test]
fn untagged_messages_follow_policy() {
    for (policy, expect_delivered, expect_dropped) in [
        (UntaggedPolicy::Fail, 0u32, 1u64),
        (UntaggedPolicy::PhysicalTime, 1u32, 0u64),
    ] {
        let mut sim = Simulation::new(5);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_millis(1)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let mut cfg = DearConfig::new(L, E);
        cfg.untagged = policy;
        let spec = EventSpec {
            service: SERVICE,
            instance: INSTANCE,
            eventgroup: 1,
            event: 0x8001,
        };

        // DEAR subscriber.
        let outbox_s = Outbox::new();
        let mut bs = ProgramBuilder::new();
        let cet = ClientEventTransactor::declare(&mut bs, "legacy");
        let received = Arc::new(Mutex::new(0u32));
        {
            let mut logic = bs.reactor("subscriber", ());
            let rec = received.clone();
            logic
                .reaction("consume")
                .triggered_by(cet.event)
                .body(move |_, _| *rec.lock().unwrap() += 1);
            logic.finish();
        }
        let sub_platform = FederatedPlatform::new(
            "subscriber",
            Runtime::new(bs.build().unwrap()),
            VirtualClock::ideal(),
            outbox_s,
            sim.fork_rng("sub-costs"),
        );
        let sub_binding = Binding::new(&net, &sd, NodeId(2), 0x22);
        let stats = cet.bind(&sub_platform, &sub_binding, spec, cfg);
        sub_platform.start(&mut sim);

        // A legacy (non-DEAR) publisher: plain binding, no tags.
        let legacy = Binding::new(&net, &sd, NodeId(1), 0x11);
        legacy.offer(
            &mut sim,
            ServiceInstance::new(SERVICE, INSTANCE),
            Duration::from_secs(3600),
        );
        legacy.notify(
            &mut sim,
            ServiceInstance::new(SERVICE, INSTANCE),
            1,
            0x8001,
            vec![9],
        );
        sim.run_until(Instant::from_millis(100));

        assert_eq!(
            *received.lock().unwrap(),
            expect_delivered,
            "policy {policy:?}"
        );
        assert_eq!(
            stats.untagged_dropped(),
            expect_dropped,
            "policy {policy:?}"
        );
    }
}

#[test]
fn wire_messages_carry_dear_tags() {
    // Sniff the frames: the modified binding must put WireTags on the wire.
    let (_c, _s) = run_roundtrip(9, LatencyModel::constant(Duration::from_millis(2)));
    // Build a message the way the binding does and confirm the tag survives
    // encode/decode (the binding tests cover transport; this covers the
    // transactor-chosen tag values).
    let msg = SomeIpMessage::notification(dear_someip::MessageId::new(SERVICE, 0x8001), vec![1])
        .with_tag(WireTag::new(11_000_000, 0));
    let decoded = SomeIpMessage::decode(&msg.encode()).unwrap();
    assert_eq!(decoded.tag, Some(WireTag::new(11_000_000, 0)));
}
