//! **Failover latency** — tags from primary-provider death to the first
//! backup delivery at the adapter, across the three detection paths.
//!
//! The brake assistant runs with a redundant Video Provider (warm
//! standby at priority 1) and the primary is killed mid-run. Detection
//! determines the latency bill:
//!
//! * **StopOffer** (graceful): the dying provider withdraws its offer at
//!   its last tag — failover costs about one frame period (the standby's
//!   spin-up);
//! * **TTL expiry**: a silent crash is caught when the SOME/IP-SD offer
//!   lapses — latency is bounded by `ttl + period` and depends on where
//!   the crash falls in the renewal window;
//! * **heartbeat watchdog**: the event-silence watchdog suspects the
//!   provider after `timeout` without a frame — typically well before
//!   the SD TTL.
//!
//! Every point also asserts the determinism claims: all frames decided
//! exactly once, zero STP violations, and the same seed replays with a
//! byte-identical decision fingerprint.
//!
//! Run with `cargo bench -p dear-bench --bench failover_latency`; pass
//! `-- --test` for the CI smoke configuration (fewer frames).
//! `DEAR_FRAMES` (default 400) controls the per-point scale.

use dear_apd::{run_det, DetParams, RedundancyParams};
use dear_bench::{env_u64, header};
use dear_time::Duration;

struct Mode {
    label: &'static str,
    graceful: bool,
    offer_ttl: Duration,
    heartbeat: Option<Duration>,
}

fn params(frames: u64, mode: &Mode) -> DetParams {
    DetParams {
        frames,
        redundancy: Some(RedundancyParams {
            primary_dies_after: frames / 2 - 1,
            graceful: mode.graceful,
            offer_ttl: mode.offer_ttl,
            reoffer_period: Duration::from_millis(150),
            heartbeat_timeout: mode.heartbeat,
        }),
        ..DetParams::default()
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let frames = if test_mode {
        60
    } else {
        env_u64("DEAR_FRAMES", 400)
    };
    header(&format!(
        "Failover latency: primary death -> first backup delivery ({frames} frames/point)"
    ));
    println!(
        "redundant provider at priority 1, primary killed after frame {}",
        frames / 2 - 1
    );
    println!();
    println!("  detection path           | failover latency | rebind tag     | decisions | stp");
    println!("---------------------------+------------------+----------------+-----------+----");

    let modes = [
        Mode {
            label: "StopOffer (graceful)",
            graceful: true,
            offer_ttl: Duration::from_millis(400),
            heartbeat: None,
        },
        Mode {
            label: "TTL expiry (400 ms)",
            graceful: false,
            offer_ttl: Duration::from_millis(400),
            heartbeat: None,
        },
        Mode {
            label: "TTL expiry (800 ms)",
            graceful: false,
            offer_ttl: Duration::from_millis(800),
            heartbeat: None,
        },
        Mode {
            label: "heartbeat (150 ms)",
            graceful: false,
            offer_ttl: Duration::from_millis(800),
            heartbeat: Some(Duration::from_millis(150)),
        },
        Mode {
            label: "heartbeat (300 ms)",
            graceful: false,
            offer_ttl: Duration::from_millis(800),
            heartbeat: Some(Duration::from_millis(300)),
        },
    ];

    let started = std::time::Instant::now();
    for mode in &modes {
        let p = params(frames, mode);
        let report = run_det(42, &p);
        let fo = report.failover.expect("failover report");
        assert_eq!(
            report.decisions.len() as u64,
            frames,
            "{}: every frame decided",
            mode.label
        );
        assert_eq!(fo.failovers, 1, "{}", mode.label);
        assert_eq!(report.stp_violations, 0, "{}", mode.label);
        // Replay determinism at every point.
        assert_eq!(
            report.decision_fingerprint(),
            run_det(42, &p).decision_fingerprint(),
            "{}: replay must be identical",
            mode.label
        );
        println!(
            " {:25} | {:>16} | {:>14} | {:9} | {:3}",
            mode.label,
            fo.failover_latency.map_or("n/a".into(), |l| l.to_string()),
            fo.rebound_at.map_or("n/a".into(), |t| t.to_string()),
            report.decisions.len(),
            report.stp_violations,
        );
    }
    println!();
    println!("expected shape: graceful ~ one frame period; TTL expiry pays the");
    println!("remaining renewal window plus the TTL; the heartbeat watchdog cuts a");
    println!("silent crash to timeout + period, well under the SD deadline.");
    println!();
    println!("sweep in {:.1}s", started.elapsed().as_secs_f64());
}
