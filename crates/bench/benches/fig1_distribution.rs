//! **Figure 1** — value distribution of the nondeterministic client/server
//! application.
//!
//! The paper's client executes `set_value(1); add(2); get_value()` without
//! awaiting the returned futures; the server's default multi-threaded
//! request dispatch makes the printed value one of {0, 1, 2, 3} with the
//! probabilities shown in Figure 1's histogram.
//!
//! Run with `cargo bench -p dear-bench --bench fig1_distribution`.
//! `DEAR_TRIALS` overrides the number of trials (default 10 000).

use dear_apd::calculator::{distribution, run_trial, CalculatorConfig};
use dear_apd::det_calculator::run_det_trial;
use dear_bench::{bar, env_u64, header};
use dear_time::Duration;

fn main() {
    let trials = env_u64("DEAR_TRIALS", 10_000);

    header("Figure 1: printed value of the nondeterministic client/server app");
    println!("client: set_value(1); add(2); get_value()  [non-blocking]");
    println!(
        "server: {} worker threads, per-invocation dispatch jitter",
        4
    );
    println!("trials: {trials} (seeded 0..{trials})");
    println!();

    let started = std::time::Instant::now();
    let histogram = distribution(0, trials, &CalculatorConfig::default());
    let elapsed = started.elapsed();

    let max = histogram.iter().copied().max().unwrap_or(1) as f64;
    println!("printed value | probability | histogram");
    println!("--------------+-------------+------------------------------------------");
    for (value, &count) in histogram.iter().enumerate() {
        let p = count as f64 / trials as f64;
        println!(
            "      {value}       |    {p:6.4}   | {}",
            bar(count as f64, max, 40)
        );
    }
    println!();
    println!(
        "paper's shape: all four values occur; no value is certain. reproduced: {}",
        if histogram.iter().all(|&c| c > 0) {
            "YES"
        } else {
            "NO (increase DEAR_TRIALS)"
        }
    );

    header("Control: the paper's single-thread workaround");
    let st = distribution(0, trials.min(1_000), &CalculatorConfig::single_threaded());
    println!("single-threaded server histogram: {st:?}");
    println!(
        "deterministic (always 3): {}",
        if st[3] > 0 && st[0] + st[1] + st[2] == 0 {
            "YES"
        } else {
            "NO"
        }
    );

    header("DEAR fix: reactor client + server, all three calls concurrent");
    let dear_trials = trials.min(1_000);
    let mut dear_hist = [0u64; 4];
    for seed in 0..dear_trials {
        let outcome = run_det_trial(seed, Duration::from_millis(5));
        let idx = usize::try_from(outcome.printed).expect("in range");
        dear_hist[idx.min(3)] += 1;
        assert_eq!(outcome.stp_violations, 0);
    }
    println!("reactor-based calculator histogram over {dear_trials} seeds: {dear_hist:?}");
    println!(
        "deterministic (always 3) while keeping all calls in flight concurrently: {}",
        if dear_hist[3] == dear_trials {
            "YES"
        } else {
            "NO"
        }
    );

    // Per-seed reproducibility spot check.
    let cfg = CalculatorConfig::default();
    assert_eq!(run_trial(42, &cfg), run_trial(42, &cfg));
    println!();
    println!(
        "{trials} trials in {:.2}s ({:.0} trials/s)",
        elapsed.as_secs_f64(),
        trials as f64 / elapsed.as_secs_f64()
    );
}
