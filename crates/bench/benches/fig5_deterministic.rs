//! **§IV.B result** — the deterministic brake assistant.
//!
//! "With this implementation, we achieve correct and deterministic
//! execution": zero dropped frames, zero mismatches, identical decision
//! sequences regardless of timing noise, at the cost of a fixed logical
//! end-to-end latency (sum of the deadlines and latency bounds:
//! (5+5) + (25+5) + (25+5) = 70 ms with the paper's parameters).
//!
//! Run with `cargo bench -p dear-bench --bench fig5_deterministic`.
//! `DEAR_FRAMES` (default 5 000) and `DEAR_INSTANCES` (default 10)
//! control the scale.

use dear_apd::{run_det, run_nondet, DetParams, NondetParams};
use dear_bench::{env_u64, header};

fn main() {
    let frames = env_u64("DEAR_FRAMES", 5_000);
    let instances = env_u64("DEAR_INSTANCES", 10);
    let params = DetParams {
        frames,
        ..DetParams::default()
    };

    header(&format!(
        "Deterministic brake assistant (DEAR build), {instances} instances x {frames} frames"
    ));
    println!("deadlines: adapter 5 ms, preprocessing 25 ms, CV 25 ms, EBA 5 ms");
    println!("bounds: L = 5 ms, E = 0 (all SWCs on one platform)");
    println!();

    let started = std::time::Instant::now();
    let mut fingerprints = Vec::new();
    println!("seed | decisions | mism. | stp | misses | untagged | wrong | e2e latency");
    println!("-----+-----------+-------+-----+--------+----------+-------+------------");
    let mut all_ok = true;
    for seed in 0..instances {
        let report = run_det(seed, &params);
        let e2e = if report.end_to_end.is_empty() {
            "n/a".to_string()
        } else {
            let first = report.end_to_end[0];
            let constant = report.end_to_end.iter().all(|&l| l == first);
            if constant {
                format!("{first} (constant)")
            } else {
                let min = report.end_to_end.iter().min().expect("nonempty");
                let max = report.end_to_end.iter().max().expect("nonempty");
                format!("{min}..{max}")
            }
        };
        println!(
            "{seed:4} | {:9} | {:5} | {:3} | {:6} | {:8} | {:5} | {e2e}",
            report.decisions.len(),
            report.mismatches_cv,
            report.stp_violations,
            report.deadline_misses,
            report.untagged_dropped,
            report.wrong_decisions,
        );
        all_ok &= report.decisions.len() as u64 == frames
            && report.mismatches_cv == 0
            && report.stp_violations == 0
            && report.deadline_misses == 0
            && report.wrong_decisions == 0;
        fingerprints.push(report.decision_fingerprint());
    }
    let elapsed = started.elapsed();

    let all_equal = fingerprints.windows(2).all(|w| w[0] == w[1]);
    println!();
    println!(
        "zero errors in every instance:            {}",
        if all_ok { "YES" } else { "NO" }
    );
    println!(
        "identical decision sequence across seeds: {} (fingerprint {:016x})",
        if all_equal { "YES" } else { "NO" },
        fingerprints.first().copied().unwrap_or(0)
    );

    // Contrast with the nondeterministic build at the same scale.
    header("Contrast: nondeterministic build, same workload, 3 instances");
    let nd_params = NondetParams {
        frames,
        ..NondetParams::default()
    };
    for seed in 0..3 {
        let nd = run_nondet(seed, &nd_params);
        println!(
            "seed {seed}: {:5} decisions, {:6} errors ({:.3} %), fingerprint {:016x}",
            nd.decisions.len(),
            nd.total_errors(),
            nd.prevalence_pct(),
            nd.decision_fingerprint()
        );
    }
    println!();
    println!("paper: \"we achieve correct and deterministic execution ... at the cost of an",);
    println!("extra physical time delay as each SWC needs to account for worst case",);
    println!("computation and communication delays.\"");
    println!();
    println!("{instances} instances in {:.1}s", elapsed.as_secs_f64());
}
