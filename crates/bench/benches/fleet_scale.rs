//! **Fleet-scale federation** — flat RTI vs the two-level hierarchical
//! coordinator on a star-of-chains fleet (PR 6 tentpole), each with and
//! without the coordination control-plane diet (PR 9: DNET suppression,
//! grant-ahead windows, periodic fast path).
//!
//! Topology: `Z` zones of `M = 10` federates each, chained inside the
//! zone (`m0 → m1 → … → m9`), with cross-zone edges from zone 0's chain
//! tail to every other zone's chain head — the "lead vehicle fans out to
//! the platoon" shape. Every federate runs a 10 ms timer; the data plane
//! is irrelevant here, coordination alone gates the tags.
//!
//! The flat RTI solves one global LBTS fixpoint over all `N` federates on
//! every control message; the hierarchical coordinator solves an
//! `M`-node fixpoint per zone plus a `Z`-node fixpoint at the root, and
//! batches its control frames. The diet then shrinks the message volume
//! itself: timer-only federates declare their periodic lattice, so one
//! windowed TAG covers a run of future tags, and DNET-classified sinks
//! stop reporting. Per scale point the harness reports:
//!
//! * **grants/sec** — granted tags (plain TAG frames plus the tags
//!   covered by grant-ahead windows) per wall-clock second,
//! * **LBTS lag** — mean virtual time a federate spends blocked per
//!   received grant (the price of the extra coordination hop),
//! * **frames/grant** — control frames (reports in, grants + DNETs out)
//!   per granted tag: the diet's headline metric,
//! * control-frame counts (the batching win).
//!
//! Run with `cargo bench -p dear-bench --bench fleet_scale` (append
//! `-- --test` for a small smoke run that also checks determinism and
//! flat/hierarchical/diet equivalence, and writes the machine-readable
//! `BENCH_fleet_scale.json`). `DEAR_FLEET_MS` (default 100) sets the
//! virtual run length per point.

use dear_bench::{env_u64, header};
use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_federation::{CoordinatedPlatform, HierarchicalRti, Rti, ZoneId};
use dear_sim::{LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear_someip::{Binding, SdRegistry};
use dear_time::{Duration, Instant};
use dear_transactors::Outbox;
use std::fmt::Write as _;

const MEMBERS_PER_ZONE: usize = 10;
const SEED: u64 = 42;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Flat,
    Hierarchical,
}

struct Report {
    wall: std::time::Duration,
    tags_issued: u64,
    window_tags: u64,
    /// Control frames through the coordinator: reports in (NET + LTC)
    /// plus grants and DNET pushes out.
    control_frames: u64,
    grants_received: u64,
    grant_wait: Duration,
    batches: u64,
    dnets_sent: u64,
    windowed_grants: u64,
    /// FNV-1a over every federate's (processed, max tag) — the
    /// determinism witness.
    fingerprint: u64,
    processed: u64,
}

impl Report {
    /// Granted tags: plain TAG frames plus the tags covered by windowed
    /// grants (one frame standing in for a run of future tags).
    fn granted(&self) -> u64 {
        self.tags_issued + self.window_tags
    }

    fn grants_per_sec(&self) -> f64 {
        self.granted() as f64 / self.wall.as_secs_f64()
    }

    fn lag(&self) -> Duration {
        if self.grants_received == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                self.grant_wait.as_nanos() / i64::try_from(self.grants_received).expect("grants"),
            )
        }
    }

    /// Control frames per granted tag — what the diet is dieting.
    fn frames_per_grant(&self) -> f64 {
        if self.granted() == 0 {
            0.0
        } else {
            self.control_frames as f64 / self.granted() as f64
        }
    }
}

/// One timer-driven federate: no data plane, just tags to be granted.
/// Timer-only, so under the diet it declares a 10 ms periodic lattice.
fn fleet_member(name: &str) -> Runtime {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor(name, 0u64);
    let t = r.timer(
        "tick",
        Duration::from_millis(10),
        Some(Duration::from_millis(10)),
    );
    r.reaction("tick")
        .triggered_by(t)
        .body(|n: &mut u64, _| *n += 1);
    r.finish();
    Runtime::new(b.build().expect("fleet member builds"))
}

fn run_fleet(zones: usize, mode: Mode, diet: bool, horizon: Duration) -> Report {
    let n = zones * MEMBERS_PER_ZONE;
    let edge_delay = Duration::from_millis(1);
    let mut sim = Simulation::new(SEED);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(50)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    // Node plan: 0 = root/RTI, 1..=zones = zone coordinators, rest =
    // federates (one node each, like one ECU each). The diet must be on
    // before any platform is built — platforms query the mode once.
    let fed_node = |i: usize| NodeId((1 + zones + i) as u16);
    let (flat, hier) = match mode {
        Mode::Flat => {
            let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
            if diet {
                rti.enable_control_diet();
            }
            (Some(rti), None)
        }
        Mode::Hierarchical => {
            let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
            for z in 0..zones {
                h.add_zone(&mut sim, &net, &sd, NodeId(1 + z as u16));
            }
            if diet {
                h.enable_control_diet();
            }
            (None, Some(h))
        }
    };

    let mut platforms = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("fed{i}");
        let binding = Binding::new(&net, &sd, fed_node(i), 0x1000 + i as u16);
        let runtime = fleet_member(&name);
        let rng = sim.fork_rng(&name);
        let p = match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                rti,
                &binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                h,
                ZoneId((i / MEMBERS_PER_ZONE) as u16),
                &binding,
                false,
            )
            .expect("register"),
            _ => unreachable!(),
        };
        platforms.push(p);
    }

    let connect = |up: usize, down: usize| {
        let (u, d) = (platforms[up].federate_id(), platforms[down].federate_id());
        match (&flat, &hier) {
            (Some(rti), None) => rti.connect(u, d, edge_delay),
            (None, Some(h)) => h.connect(u, d, edge_delay),
            _ => unreachable!(),
        }
    };
    for z in 0..zones {
        let base = z * MEMBERS_PER_ZONE;
        for m in 0..MEMBERS_PER_ZONE - 1 {
            connect(base + m, base + m + 1); // intra-zone chain
        }
        if z > 0 {
            // Zone 0's chain tail leads every other zone's chain head.
            connect(MEMBERS_PER_ZONE - 1, base);
        }
    }

    let t0 = std::time::Instant::now();
    for p in &platforms {
        p.start(&mut sim);
    }
    sim.run_until(Instant::EPOCH + horizon);
    let wall = t0.elapsed();

    let stats = match (&flat, &hier) {
        (Some(rti), None) => rti.stats(),
        (None, Some(h)) => h.stats(),
        _ => unreachable!(),
    };
    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            fingerprint ^= u64::from(b);
            fingerprint = fingerprint.wrapping_mul(0x0100_0000_01b3);
        }
    };
    let mut grants_received = 0;
    let mut grant_wait = Duration::ZERO;
    let mut batches = 0;
    let mut windowed_grants = 0;
    let mut processed = 0;
    for p in &platforms {
        let cs = p.coordination_stats();
        assert_eq!(cs.bound_breaches(), 0, "{} breached its bound", p.name());
        grants_received += cs.grants_received();
        grant_wait += cs.grant_wait();
        batches += cs.coord_batches_sent() + cs.coord_batches_received();
        windowed_grants += cs.windowed_grants();
        let tags = p.stats().processed_tags;
        processed += tags;
        let max = p.max_processed_tag().unwrap_or(Tag::ORIGIN);
        eat(tags);
        eat(max.time.as_nanos());
        eat(u64::from(max.microstep));
    }
    Report {
        wall,
        tags_issued: stats.tags_issued,
        window_tags: stats.window_tags,
        control_frames: stats.nets_received
            + stats.ltcs_received
            + stats.tags_issued
            + stats.ptags_issued
            + stats.dnets_sent,
        grants_received,
        grant_wait,
        batches,
        dnets_sent: stats.dnets_sent,
        windowed_grants,
        fingerprint,
        processed,
    }
}

/// The four variants of one scale point, in print order.
fn variants(zones: usize, horizon: Duration) -> [(&'static str, bool, Report); 4] {
    [
        ("flat", false, run_fleet(zones, Mode::Flat, false, horizon)),
        (
            "flat+diet",
            true,
            run_fleet(zones, Mode::Flat, true, horizon),
        ),
        (
            "2-level",
            false,
            run_fleet(zones, Mode::Hierarchical, false, horizon),
        ),
        (
            "2-level+diet",
            true,
            run_fleet(zones, Mode::Hierarchical, true, horizon),
        ),
    ]
}

fn scale_table(points: &[usize], horizon: Duration) -> String {
    let mut json_rows = String::new();
    println!(
        "  federates | coordinator  | grants/sec |  LBTS lag | frames/grant | control batches | processed tags"
    );
    println!(
        "------------+--------------+------------+-----------+--------------+-----------------+---------------"
    );
    for &zones in points {
        let n = zones * MEMBERS_PER_ZONE;
        let rows = variants(zones, horizon);
        for (label, _, r) in &rows {
            assert_eq!(
                rows[0].2.processed, r.processed,
                "variant {label} disagrees on processed tags at N = {n}"
            );
        }
        for (label, diet, r) in &rows {
            println!(
                "  {n:9} | {label:12} | {:10.0} | {:>9} | {:12.2} | {:15} | {:14}",
                r.grants_per_sec(),
                r.lag().to_string(),
                r.frames_per_grant(),
                r.batches,
                r.processed,
            );
            let _ = writeln!(
                json_rows,
                "    {{\"federates\": {n}, \"coordinator\": \"{label}\", \"diet\": {diet}, \
                 \"grants_per_sec\": {:.0}, \"mean_grant_wait_ns\": {}, \
                 \"frames_per_granted_tag\": {:.4}, \"granted_tags\": {}, \
                 \"windowed_tags\": {}, \"dnets_sent\": {}, \"processed_tags\": {}}},",
                r.grants_per_sec(),
                r.lag().as_nanos(),
                r.frames_per_grant(),
                r.granted(),
                r.window_tags,
                r.dnets_sent,
                r.processed,
            );
        }
        println!(
            "            | hier speedup | {:9.1}x | diet frames/grant: {:.2} -> {:.2} (flat), {:.2} -> {:.2} (2-level)",
            rows[2].2.grants_per_sec() / rows[0].2.grants_per_sec(),
            rows[0].2.frames_per_grant(),
            rows[1].2.frames_per_grant(),
            rows[2].2.frames_per_grant(),
            rows[3].2.frames_per_grant(),
        );
    }
    json_rows
}

fn write_json(horizon: Duration, json_rows: &str) {
    let rows = json_rows.trim_end().trim_end_matches(',');
    let body = format!(
        "{{\n  \"bench\": \"fleet_scale\",\n  \"seed\": {SEED},\n  \"horizon_ms\": {},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        horizon.as_millis(),
    );
    let path = "BENCH_fleet_scale.json";
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let horizon = Duration::from_millis(i64::try_from(env_u64("DEAR_FLEET_MS", 100)).expect("ms"));
    header("fleet_scale — flat RTI vs hierarchical zones (star-of-chains fleet)");

    if test_mode {
        // Smoke run: small fleet, plus the determinism and equivalence
        // checks the full table only spot-checks.
        let horizon = Duration::from_millis(60);
        let a = run_fleet(6, Mode::Hierarchical, false, horizon);
        let b = run_fleet(6, Mode::Hierarchical, false, horizon);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "hierarchical run is not deterministic"
        );
        let flat = run_fleet(6, Mode::Flat, false, horizon);
        assert_eq!(flat.processed, a.processed, "coordinators disagree");
        assert!(a.batches > 0, "zone protocol must batch");
        assert_eq!(flat.batches, 0, "flat protocol must not batch");

        // The diet changes the message volume, never the outcome.
        let flat_diet = run_fleet(6, Mode::Flat, true, horizon);
        let hier_diet = run_fleet(6, Mode::Hierarchical, true, horizon);
        let hier_diet2 = run_fleet(6, Mode::Hierarchical, true, horizon);
        assert_eq!(
            hier_diet.fingerprint, hier_diet2.fingerprint,
            "diet run is not deterministic"
        );
        assert_eq!(
            flat_diet.fingerprint, flat.fingerprint,
            "flat diet diverged"
        );
        assert_eq!(
            hier_diet.fingerprint, a.fingerprint,
            "hierarchical diet diverged"
        );
        for (label, on, off) in [("flat", &flat_diet, &flat), ("2-level", &hier_diet, &a)] {
            assert!(
                on.frames_per_grant() < off.frames_per_grant(),
                "{label}: diet did not reduce control frames per granted tag \
                 ({:.2} vs {:.2})",
                on.frames_per_grant(),
                off.frames_per_grant(),
            );
            assert!(on.window_tags > 0, "{label}: no windowed tags");
            assert!(on.windowed_grants > 0, "{label}: no windowed grants seen");
            assert!(on.dnets_sent > 0, "{label}: no DNETs pushed");
            assert_eq!(off.window_tags, 0, "{label}: windows leaked into diet-off");
            assert_eq!(off.dnets_sent, 0, "{label}: DNETs leaked into diet-off");
        }

        let json_rows = scale_table(&[6], horizon);
        write_json(horizon, &json_rows);
        println!();
        println!(
            "smoke run OK: deterministic, flat == 2-level == diet, batching verified, \
             diet cuts frames/grant"
        );
        return;
    }

    println!(
        "zones of {MEMBERS_PER_ZONE} chained federates, zone 0's tail leading every other zone;"
    );
    println!(
        "{} ms virtual horizon, 10 ms timers, 1 ms edge delays, seed {SEED}",
        horizon.as_millis()
    );
    println!();
    let started = std::time::Instant::now();
    let json_rows = scale_table(&[10, 40, 100], horizon);
    write_json(horizon, &json_rows);
    println!();
    println!("expected shape: the flat RTI re-solves an N-node fixpoint per control");
    println!("message, so grants/sec collapses as the fleet grows; the hierarchy");
    println!("solves 10-node zone fixpoints plus one zone-level fixpoint and batches");
    println!("its frames, trading a little LBTS lag for throughput that scales. The");
    println!("control diet then cuts the frames each granted tag costs: windowed TAGs");
    println!("cover runs of lattice tags and DNET-classified sinks stop reporting.");
    println!();
    println!("sweep in {:.1}s", started.elapsed().as_secs_f64());
}
