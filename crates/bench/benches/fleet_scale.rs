//! **Fleet-scale federation** — flat RTI vs the two-level hierarchical
//! coordinator on a star-of-chains fleet (PR 6 tentpole).
//!
//! Topology: `Z` zones of `M = 10` federates each, chained inside the
//! zone (`m0 → m1 → … → m9`), with cross-zone edges from zone 0's chain
//! tail to every other zone's chain head — the "lead vehicle fans out to
//! the platoon" shape. Every federate runs a 10 ms timer; the data plane
//! is irrelevant here, coordination alone gates the tags.
//!
//! The flat RTI solves one global LBTS fixpoint over all `N` federates on
//! every control message; the hierarchical coordinator solves an
//! `M`-node fixpoint per zone plus a `Z`-node fixpoint at the root, and
//! batches its control frames. Per scale point the harness reports:
//!
//! * **grants/sec** — TAG grants issued per wall-clock second (the
//!   coordinator's throughput; the hierarchy should win big at 1000),
//! * **LBTS lag** — mean virtual time a federate spends blocked per
//!   received grant (the price of the extra coordination hop),
//! * control-frame counts (the batching win).
//!
//! Run with `cargo bench -p dear-bench --bench fleet_scale` (append
//! `-- --test` for a small smoke run that also checks determinism and
//! flat/hierarchical equivalence). `DEAR_FLEET_MS` (default 100) sets
//! the virtual run length per point.

use dear_bench::{env_u64, header};
use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_federation::{CoordinatedPlatform, HierarchicalRti, Rti, ZoneId};
use dear_sim::{LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear_someip::{Binding, SdRegistry};
use dear_time::{Duration, Instant};
use dear_transactors::Outbox;

const MEMBERS_PER_ZONE: usize = 10;
const SEED: u64 = 42;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Flat,
    Hierarchical,
}

struct Report {
    wall: std::time::Duration,
    tags_issued: u64,
    grants_received: u64,
    grant_wait: Duration,
    batches: u64,
    /// FNV-1a over every federate's (processed, max tag) — the
    /// determinism witness.
    fingerprint: u64,
    processed: u64,
}

impl Report {
    fn grants_per_sec(&self) -> f64 {
        self.tags_issued as f64 / self.wall.as_secs_f64()
    }

    fn lag(&self) -> Duration {
        if self.grants_received == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                self.grant_wait.as_nanos() / i64::try_from(self.grants_received).expect("grants"),
            )
        }
    }
}

/// One timer-driven federate: no data plane, just tags to be granted.
fn fleet_member(name: &str) -> Runtime {
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor(name, 0u64);
    let t = r.timer(
        "tick",
        Duration::from_millis(10),
        Some(Duration::from_millis(10)),
    );
    r.reaction("tick")
        .triggered_by(t)
        .body(|n: &mut u64, _| *n += 1);
    r.finish();
    Runtime::new(b.build().expect("fleet member builds"))
}

fn run_fleet(zones: usize, mode: Mode, horizon: Duration) -> Report {
    let n = zones * MEMBERS_PER_ZONE;
    let edge_delay = Duration::from_millis(1);
    let mut sim = Simulation::new(SEED);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(50)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    // Node plan: 0 = root/RTI, 1..=zones = zone coordinators, rest =
    // federates (one node each, like one ECU each).
    let fed_node = |i: usize| NodeId((1 + zones + i) as u16);
    let (flat, hier) = match mode {
        Mode::Flat => (Some(Rti::new(&mut sim, &net, &sd, NodeId(0))), None),
        Mode::Hierarchical => {
            let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
            for z in 0..zones {
                h.add_zone(&mut sim, &net, &sd, NodeId(1 + z as u16));
            }
            (None, Some(h))
        }
    };

    let mut platforms = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("fed{i}");
        let binding = Binding::new(&net, &sd, fed_node(i), 0x1000 + i as u16);
        let runtime = fleet_member(&name);
        let rng = sim.fork_rng(&name);
        let p = match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                rti,
                &binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                h,
                ZoneId((i / MEMBERS_PER_ZONE) as u16),
                &binding,
                false,
            )
            .expect("register"),
            _ => unreachable!(),
        };
        platforms.push(p);
    }

    let connect = |up: usize, down: usize| {
        let (u, d) = (platforms[up].federate_id(), platforms[down].federate_id());
        match (&flat, &hier) {
            (Some(rti), None) => rti.connect(u, d, edge_delay),
            (None, Some(h)) => h.connect(u, d, edge_delay),
            _ => unreachable!(),
        }
    };
    for z in 0..zones {
        let base = z * MEMBERS_PER_ZONE;
        for m in 0..MEMBERS_PER_ZONE - 1 {
            connect(base + m, base + m + 1); // intra-zone chain
        }
        if z > 0 {
            // Zone 0's chain tail leads every other zone's chain head.
            connect(MEMBERS_PER_ZONE - 1, base);
        }
    }

    let t0 = std::time::Instant::now();
    for p in &platforms {
        p.start(&mut sim);
    }
    sim.run_until(Instant::EPOCH + horizon);
    let wall = t0.elapsed();

    let stats = match (&flat, &hier) {
        (Some(rti), None) => rti.stats(),
        (None, Some(h)) => h.stats(),
        _ => unreachable!(),
    };
    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            fingerprint ^= u64::from(b);
            fingerprint = fingerprint.wrapping_mul(0x0100_0000_01b3);
        }
    };
    let mut grants_received = 0;
    let mut grant_wait = Duration::ZERO;
    let mut batches = 0;
    let mut processed = 0;
    for p in &platforms {
        let cs = p.coordination_stats();
        assert_eq!(cs.bound_breaches(), 0, "{} breached its bound", p.name());
        grants_received += cs.grants_received();
        grant_wait += cs.grant_wait();
        batches += cs.coord_batches_sent() + cs.coord_batches_received();
        let tags = p.stats().processed_tags;
        processed += tags;
        let max = p.max_processed_tag().unwrap_or(Tag::ORIGIN);
        eat(tags);
        eat(max.time.as_nanos());
        eat(u64::from(max.microstep));
    }
    Report {
        wall,
        tags_issued: stats.tags_issued,
        grants_received,
        grant_wait,
        batches,
        fingerprint,
        processed,
    }
}

fn scale_table(points: &[usize], horizon: Duration) {
    println!(
        "  federates | coordinator  | grants/sec |  LBTS lag | control batches | processed tags"
    );
    println!(
        "------------+--------------+------------+-----------+-----------------+---------------"
    );
    for &zones in points {
        let n = zones * MEMBERS_PER_ZONE;
        let flat = run_fleet(zones, Mode::Flat, horizon);
        let hier = run_fleet(zones, Mode::Hierarchical, horizon);
        assert_eq!(
            flat.processed, hier.processed,
            "coordinators disagree on processed tags at N = {n}"
        );
        for (label, r) in [("flat", &flat), ("2-level", &hier)] {
            println!(
                "  {n:9} | {label:12} | {:10.0} | {:>9} | {:15} | {:14}",
                r.grants_per_sec(),
                r.lag().to_string(),
                r.batches,
                r.processed,
            );
        }
        println!(
            "            | speedup      | {:9.1}x |           |                 |",
            hier.grants_per_sec() / flat.grants_per_sec()
        );
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let horizon = Duration::from_millis(i64::try_from(env_u64("DEAR_FLEET_MS", 100)).expect("ms"));
    header("fleet_scale — flat RTI vs hierarchical zones (star-of-chains fleet)");

    if test_mode {
        // Smoke run: small fleet, plus the determinism and equivalence
        // checks the full table only spot-checks.
        let horizon = Duration::from_millis(60);
        let a = run_fleet(6, Mode::Hierarchical, horizon);
        let b = run_fleet(6, Mode::Hierarchical, horizon);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "hierarchical run is not deterministic"
        );
        let flat = run_fleet(6, Mode::Flat, horizon);
        assert_eq!(flat.processed, a.processed, "coordinators disagree");
        assert!(a.batches > 0, "zone protocol must batch");
        assert_eq!(flat.batches, 0, "flat protocol must not batch");
        scale_table(&[6], horizon);
        println!();
        println!("smoke run OK: deterministic, flat == 2-level, batching verified");
        return;
    }

    println!(
        "zones of {MEMBERS_PER_ZONE} chained federates, zone 0's tail leading every other zone;"
    );
    println!(
        "{} ms virtual horizon, 10 ms timers, 1 ms edge delays, seed {SEED}",
        horizon.as_millis()
    );
    println!();
    let started = std::time::Instant::now();
    scale_table(&[10, 40, 100], horizon);
    println!();
    println!("expected shape: the flat RTI re-solves an N-node fixpoint per control");
    println!("message, so grants/sec collapses as the fleet grows; the hierarchy");
    println!("solves 10-node zone fixpoints plus one zone-level fixpoint and batches");
    println!("its frames, trading a little LBTS lag for throughput that scales.");
    println!();
    println!("sweep in {:.1}s", started.elapsed().as_secs_f64());
}
