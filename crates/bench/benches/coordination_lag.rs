//! **Coordination ablation** — RTI grant latency versus the static
//! `D + L + E` safe-to-process offset, across a latency sweep.
//!
//! The decentralized driver buys ordering with a *static* per-hop release
//! offset (`D + L + E` added to every tag). The centralized driver buys
//! the same ordering with *dynamic* grants: a stage may wait for the RTI
//! when a grant has not yet caught up with its local clock. This harness
//! sweeps the assumed network latency bound `L` on the brake-assistant
//! pipeline and reports, per point:
//!
//! * the static per-hop offset the tag algebra pays either way,
//! * the grant traffic (TAGs received, NET/LTC reports) and the total +
//!   mean grant-wait time of the centralized run — plain and with the
//!   control-plane diet (PR 9), which suppresses the sink stage's
//!   reports via DNET while leaving the traces untouched,
//! * a cross-check that both runs stay error-free with byte-identical
//!   per-stage traces,
//!
//! plus the wall-clock cost of one instance under each strategy (the
//! coordination overhead in *simulation* work).
//!
//! Run with `cargo bench -p dear-bench --bench coordination_lag`.
//! `DEAR_FRAMES` (default 300) controls the per-point scale;
//! `DEAR_COORD_US` (default 10) the coordination-link latency in µs.

use dear_apd::{run_det, DetParams};
use dear_bench::{env_u64, header};
use dear_sim::LinkConfig;
use dear_time::Duration;
use dear_transactors::Coordination;

fn params(frames: u64, l_ms: i64, coord_us: u64, coordination: Coordination) -> DetParams {
    DetParams {
        frames,
        latency_bound: Duration::from_millis(l_ms),
        coordination,
        record_traces: true,
        coord_link: LinkConfig::ideal(Duration::from_micros(
            i64::try_from(coord_us).expect("coord latency"),
        )),
        ..DetParams::default()
    }
}

fn diet_params(frames: u64, l_ms: i64, coord_us: u64) -> DetParams {
    DetParams {
        control_diet: true,
        ..params(frames, l_ms, coord_us, Coordination::Centralized)
    }
}

fn main() {
    let frames = env_u64("DEAR_FRAMES", 300);
    let coord_us = env_u64("DEAR_COORD_US", 10);
    header(&format!(
        "Coordination lag: RTI grants vs the static D+L+E offset ({frames} frames/point)"
    ));
    println!("coordination link: ideal {coord_us} µs; deadlines 5/25/25/5 ms; E = 0");
    println!();
    println!(
        "  L (ms) | rti variant | static offset/hop | grants |  NETs |  LTCs | suppressed | grant wait (total / per grant) | traces"
    );
    println!(
        "---------+-------------+-------------------+--------+-------+-------+------------+--------------------------------+-------"
    );

    let started = std::time::Instant::now();
    for l_ms in [1i64, 2, 5, 10] {
        let dec = run_det(
            42,
            &params(frames, l_ms, coord_us, Coordination::Decentralized),
        );
        let cen = run_det(
            42,
            &params(frames, l_ms, coord_us, Coordination::Centralized),
        );
        let diet = run_det(42, &diet_params(frames, l_ms, coord_us));
        for (label, run) in [("plain", &cen), ("diet", &diet)] {
            let c = &run.coordination;
            let identical = dec.stage_traces == run.stage_traces;
            assert!(identical, "{label} traces diverged at L = {l_ms} ms");
            assert_eq!(run.stp_violations, 0, "{label} L = {l_ms} ms");
            assert!(
                c.within_bound && c.bound_breaches == 0,
                "{label} L = {l_ms} ms"
            );
            // The adapter hop pays Da + L; the heavier hops pay 25 ms + L.
            let static_offset = Duration::from_millis(5 + l_ms);
            let per_grant = if c.grants_received == 0 {
                Duration::ZERO
            } else {
                Duration::from_nanos(
                    c.grant_wait.as_nanos() / i64::try_from(c.grants_received).expect("count"),
                )
            };
            println!(
                "   {l_ms:4}  | {label:11} |     {:>9}     | {:6} | {:5} | {:5} | {:10} | {:>14} / {:>13} | {}",
                static_offset.to_string(),
                c.grants_received,
                c.nets_sent,
                c.ltcs_sent,
                c.nets_suppressed,
                c.grant_wait.to_string(),
                per_grant.to_string(),
                if identical { "same" } else { "DIFF" },
            );
        }
        // The diet must genuinely shrink the control plane while the
        // decision traces above stayed byte-identical.
        assert!(
            diet.coordination.nets_suppressed > 0,
            "L = {l_ms} ms: the diet suppressed nothing"
        );
        assert!(
            diet.coordination.nets_sent + diet.coordination.ltcs_sent
                < cen.coordination.nets_sent + cen.coordination.ltcs_sent,
            "L = {l_ms} ms: the diet did not cut report traffic"
        );
    }
    println!();

    // Wall-clock comparison at the paper's L = 5 ms.
    for (label, coordination) in [
        ("decentralized", Coordination::Decentralized),
        ("centralized", Coordination::Centralized),
    ] {
        let mut p = params(frames, 5, coord_us, coordination);
        p.record_traces = false;
        let t0 = std::time::Instant::now();
        let runs = 3;
        for seed in 0..runs {
            std::hint::black_box(run_det(seed, &p));
        }
        println!(
            "one instance ({label:13}): {:8.1} ms wall clock",
            t0.elapsed().as_secs_f64() * 1e3 / f64::from(runs as u32)
        );
    }
    println!();
    println!("expected shape: grant wait stays near zero — grants ride the fast");
    println!("coordination channel and arrive well inside the static D+L+E release");
    println!("offset the tag algebra already pays, so centralized coordination costs");
    println!("control traffic (and simulation events), not observable latency.");
    println!();
    println!("sweep in {:.1}s", started.elapsed().as_secs_f64());
}
