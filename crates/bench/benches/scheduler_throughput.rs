//! **Runtime ablation** — reactor scheduler throughput.
//!
//! The paper's runtime "transparently exploit\[s\] concurrency in the APG
//! by mapping independent reactions to separate worker threads" (§III.A).
//! This harness measures the event-processing throughput of the
//! `dear-core` scheduler over the canonical topologies (chain, fan-out,
//! diamond), and compares the sequential executor against the
//! level-parallel one — an honest ablation: for micro-reactions the
//! parallel executor pays thread-spawn overhead, so its benefit appears
//! only with heavyweight reaction bodies.
//!
//! Run with `cargo bench -p dear-bench --bench scheduler_throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dear_core::{ProgramBuilder, Runtime};
use dear_time::{Duration, Instant};
use std::hint::black_box;

/// A chain of `depth` reactors, driven by a 1 ms timer for `ticks` tags.
fn run_chain(depth: usize, ticks: u64, workers: usize) -> u64 {
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", 0u64);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let first = src.output::<u64>("o");
    src.reaction("emit")
        .triggered_by(t)
        .effects(first)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(first, *n);
        });
    src.finish();

    let mut prev = first;
    for i in 0..depth {
        let mut stage = b.reactor(&format!("s{i}"), ());
        let inp = stage.input::<u64>("i");
        let out = stage.output::<u64>("o");
        stage
            .reaction("fwd")
            .triggered_by(inp)
            .effects(out)
            .body(move |_, ctx| {
                let v = *ctx.get(inp).unwrap();
                ctx.set(out, v.wrapping_mul(31).wrapping_add(1));
            });
        stage.finish();
        b.connect(prev, inp).unwrap();
        prev = out;
    }

    let mut rt = Runtime::new(b.build().expect("chain builds"));
    rt.set_workers(workers);
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::EPOCH + Duration::from_millis(ticks as i64))
        .expect("stop scheduled");
    rt.run_fast(u64::MAX);
    rt.stats().executed_reactions
}

/// One source fanning out to `width` independent reactors.
fn run_fanout(width: usize, ticks: u64, workers: usize, work_iters: u64) -> u64 {
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", 0u64);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let out = src.output::<u64>("o");
    src.reaction("emit")
        .triggered_by(t)
        .effects(out)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(out, *n);
        });
    src.finish();

    for i in 0..width {
        let mut stage = b.reactor(&format!("w{i}"), 0u64);
        let inp = stage.input::<u64>("i");
        stage
            .reaction("work")
            .triggered_by(inp)
            .body(move |acc: &mut u64, ctx| {
                let mut v = *ctx.get(inp).unwrap();
                for _ in 0..work_iters {
                    // black_box defeats LLVM's closed-form folding of LCG
                    // loops, keeping "heavy" genuinely heavy.
                    v = black_box(
                        v.wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407),
                    );
                }
                *acc ^= v;
            });
        stage.finish();
        b.connect(out, inp).unwrap();
    }

    let mut rt = Runtime::new(b.build().expect("fanout builds"));
    rt.set_workers(workers);
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::EPOCH + Duration::from_millis(ticks as i64))
        .expect("stop scheduled");
    rt.run_fast(u64::MAX);
    rt.stats().executed_reactions
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/chain");
    for depth in [10usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| black_box(run_chain(depth, 100, 1)))
        });
    }
    group.finish();
}

fn bench_fanout_sequential_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/fanout_width32");
    // Light reactions: sequential wins (parallel pays scope overhead).
    group.bench_function("light_seq", |b| {
        b.iter(|| black_box(run_fanout(32, 50, 1, 1)))
    });
    group.bench_function("light_par4", |b| {
        b.iter(|| black_box(run_fanout(32, 50, 4, 1)))
    });
    // Heavy reactions: parallel amortizes.
    group.bench_function("heavy_seq", |b| {
        b.iter(|| black_box(run_fanout(32, 10, 1, 200_000)))
    });
    group.bench_function("heavy_par4", |b| {
        b.iter(|| black_box(run_fanout(32, 10, 4, 200_000)))
    });
    group.finish();
}

fn bench_action_scheduling(c: &mut Criterion) {
    c.bench_function("scheduler/logical_action_cascade_10k", |b| {
        b.iter(|| {
            let mut bld = ProgramBuilder::new();
            let mut r = bld.reactor("looper", 0u64);
            let act = r.logical_action::<u64>("a", Duration::from_micros(1));
            r.reaction("kick")
                .triggered_by(dear_core::Startup)
                .schedules(act)
                .body(move |_, ctx| ctx.schedule(act, Duration::ZERO, 0));
            r.reaction("loop")
                .triggered_by(act)
                .schedules(act)
                .body(move |n: &mut u64, ctx| {
                    *n += 1;
                    if *n < 10_000 {
                        let v = *ctx.get_action(&act).unwrap();
                        ctx.schedule(act, Duration::ZERO, v + 1);
                    } else {
                        ctx.request_shutdown();
                    }
                });
            r.finish();
            let mut rt = Runtime::new(bld.build().expect("builds"));
            rt.start(Instant::EPOCH);
            rt.run_fast(u64::MAX);
            black_box(rt.stats().executed_reactions)
        })
    });
}

criterion_group!(
    benches,
    bench_chain,
    bench_fanout_sequential_vs_parallel,
    bench_action_scheduling
);
criterion_main!(benches);
