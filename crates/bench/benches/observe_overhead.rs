//! **Observability overhead** — what the telemetry spine costs, and the
//! proof that it costs *nothing* when disabled.
//!
//! Two harnesses:
//!
//! 1. *Allocation profile*: a counting global allocator measures a
//!    steady-state timer fan-out with the `Observe` handle disabled
//!    (the default everywhere) and enabled. Expected: **zero**
//!    allocations per reaction disabled — every recording call is a
//!    single `Option` branch — and a small constant enabled (metric-key
//!    lookups plus one span per tag).
//! 2. *Wall-time*: the same workload untelemetered vs fully
//!    instrumented (counters + histograms + spans), the number the
//!    EXPERIMENTS.md overhead row reports.
//!
//! Run with `cargo bench -p dear-bench --bench observe_overhead`
//! (append `-- --test` for a single-pass smoke run — CI does, asserting
//! the disabled-mode zero-alloc invariant on every push).

// The counting allocator is one of the two places this workspace touches
// `unsafe` (the other is its twin in `runtime_throughput`): `GlobalAlloc`
// is an unsafe trait, and delegating to `System` while bumping an atomic
// counter is the standard, auditable pattern for measuring allocation
// behaviour without external tooling.
#![allow(unsafe_code)]

use criterion::{criterion_group, Criterion};
use dear_core::{ProgramBuilder, Runtime};
use dear_observe::{Lane, Observe};
use dear_time::{Duration, Instant};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: pure delegation to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// `width` independent reactors on 1 ms timers, pure arithmetic bodies —
/// the minimal steady-state hot loop (same topology as
/// `runtime_throughput`, so the two benches' numbers compose).
fn build_timer_fanout(width: usize) -> Runtime {
    let mut b = ProgramBuilder::new();
    for i in 0..width {
        let mut r = b.reactor(&format!("w{i}"), 0u64);
        let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
        r.reaction("work")
            .triggered_by(t)
            .body(move |acc: &mut u64, _ctx| {
                *acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + i as u64);
            });
        r.finish();
    }
    Runtime::new(b.build().expect("fanout builds"))
}

/// Measures allocations per reaction over `tags` steady-state tags with
/// the given telemetry handle attached.
fn alloc_per_reaction(observe: &Observe, tags: u64) -> f64 {
    let mut rt = build_timer_fanout(32);
    rt.set_observe(observe.clone(), Lane::Sim);
    rt.start(Instant::EPOCH);
    // Warmup: let every runtime buffer — and, enabled, every metric key
    // and the span vec's doubling growth — reach steady state.
    rt.run_fast(256);
    let reactions_before = rt.stats().executed_reactions;
    let allocs_before = allocations();
    rt.run_fast(tags);
    let allocs = allocations() - allocs_before;
    let reactions = rt.stats().executed_reactions - reactions_before;
    allocs as f64 / reactions as f64
}

fn alloc_report(test_mode: bool) {
    let tags = if test_mode { 64 } else { 2048 };
    let disabled = alloc_per_reaction(&Observe::disabled(), tags);
    let enabled = alloc_per_reaction(&Observe::enabled(), tags);
    dear_bench::header("observe_overhead — allocations per reaction (steady state)");
    println!("  observe disabled : {disabled:.4} allocs/reaction");
    println!("  observe enabled  : {enabled:.4} allocs/reaction");
    println!(
        "  telemetry delta  : {:.4} allocs/reaction",
        enabled - disabled
    );
    assert_eq!(
        disabled, 0.0,
        "disabled-observability hot path must perform zero per-reaction allocations"
    );
}

/// Timer fan-out driven for `ticks` tags with the given handle.
fn run_workload(observe: &Observe, ticks: u64) -> u64 {
    let mut rt = build_timer_fanout(32);
    rt.set_observe(observe.clone(), Lane::Sim);
    rt.start(Instant::EPOCH);
    rt.run_fast(ticks);
    rt.stats().executed_reactions
}

fn bench_observe_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe/width32x200");
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(run_workload(&Observe::disabled(), 200)))
    });
    group.bench_function("enabled", |b| {
        // A fresh handle per iteration: the registry and timeline grow
        // with the run, so reuse would measure ever-larger state.
        b.iter(|| black_box(run_workload(&Observe::enabled(), 200)))
    });
    group.finish();
}

criterion_group!(benches, bench_observe_cost);

fn main() {
    let test_mode = Criterion::default().is_test_mode();
    alloc_report(test_mode);
    benches();
}
