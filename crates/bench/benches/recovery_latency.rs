//! **Recovery latency** — crash-to-rejoin outage and log-replay volume
//! when a federate is killed mid-run and restarted from its durable
//! event log.
//!
//! The brake assistant runs under centralized coordination with a
//! durable log attached to the Computer Vision federate. The CV node is
//! killed after half the frames; the recovery driver waits `dead_for`,
//! rebuilds the identical program, replays the log (suppressing sends
//! the dead incarnation already drained) and rejoins the RTI. The sweep
//! varies the outage length and the snapshot cadence; longer runs
//! replay more tags, denser snapshots cost more log records.
//!
//! Every point asserts the determinism claims: all frames decided
//! exactly once, zero replay mismatches, zero STP violations, and the
//! decision fingerprint byte-identical to a never-crashed baseline of
//! the same seed.
//!
//! Run with `cargo bench -p dear-bench --bench recovery_latency`; pass
//! `-- --test` for the CI smoke configuration (fewer frames). The
//! results are also written to `BENCH_recovery_latency.json`.
//! `DEAR_FRAMES` (default 400) controls the per-point scale.

use dear_apd::{run_det, DetParams, RecoveryParams};
use dear_bench::{env_u64, header};
use dear_time::Duration;
use dear_transactors::Coordination;

const SEED: u64 = 42;

struct Point {
    label: &'static str,
    dead_for: Duration,
    snapshot_every: u64,
}

fn params(frames: u64, recovery: Option<RecoveryParams>) -> DetParams {
    DetParams {
        frames,
        coordination: Coordination::Centralized,
        recovery,
        ..DetParams::default()
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let frames = if test_mode {
        60
    } else {
        env_u64("DEAR_FRAMES", 400)
    };
    header(&format!(
        "Recovery latency: crash -> replay -> rejoin ({frames} frames/point)"
    ));
    println!(
        "durable log on the CV federate, node killed after frame {}",
        frames / 2
    );
    println!();
    println!("  scenario                 | outage  | replayed tags/inputs | suppressed | log replay | identical");
    println!("---------------------------+---------+----------------------+------------+------------+----------");

    let points = [
        Point {
            label: "5 ms outage, snap 16",
            dead_for: Duration::from_millis(5),
            snapshot_every: 16,
        },
        Point {
            label: "10 ms outage, snap 16",
            dead_for: Duration::from_millis(10),
            snapshot_every: 16,
        },
        Point {
            label: "20 ms outage, snap 16",
            dead_for: Duration::from_millis(20),
            snapshot_every: 16,
        },
        Point {
            label: "10 ms outage, snap 1",
            dead_for: Duration::from_millis(10),
            snapshot_every: 1,
        },
        Point {
            label: "10 ms outage, snap 64",
            dead_for: Duration::from_millis(10),
            snapshot_every: 64,
        },
    ];

    let started = std::time::Instant::now();
    let baseline = run_det(SEED, &params(frames, None));
    let mut json_rows = String::new();
    for point in &points {
        let p = params(
            frames,
            Some(RecoveryParams {
                crash_after_frame: frames / 2,
                dead_for: point.dead_for,
                snapshot_every: point.snapshot_every,
            }),
        );
        let replay_started = std::time::Instant::now();
        let report = run_det(SEED, &p);
        let wall = replay_started.elapsed();
        let rec = report.recovery.expect("recovery report");
        assert_eq!(
            report.decisions.len() as u64,
            frames,
            "{}: every frame decided",
            point.label
        );
        assert_eq!(rec.replay_mismatches, 0, "{}", point.label);
        assert_eq!(report.stp_violations, 0, "{}", point.label);
        let identical = report.decision_fingerprint() == baseline.decision_fingerprint();
        assert!(
            identical,
            "{}: must match the never-crashed run",
            point.label
        );
        println!(
            " {:25} | {:>7} | {:10} / {:7} | {:10} | {:7.1}ms | {}",
            point.label,
            rec.outage.to_string(),
            rec.replayed_tags,
            rec.replayed_inputs,
            rec.suppressed_sends,
            wall.as_secs_f64() * 1e3,
            if identical { "YES" } else { "NO" },
        );
        json_rows.push_str(&format!(
            "    {{\"label\": \"{}\", \"dead_for_ms\": {}, \"snapshot_every\": {}, \"outage_ns\": {}, \"replayed_tags\": {}, \"replayed_inputs\": {}, \"suppressed_sends\": {}, \"resent_sends\": {}, \"identical\": {}}},\n",
            point.label,
            point.dead_for.as_millis(),
            point.snapshot_every,
            rec.outage.as_nanos(),
            rec.replayed_tags,
            rec.replayed_inputs,
            rec.suppressed_sends,
            rec.resent_sends,
            identical,
        ));
    }

    let rows = json_rows.trim_end().trim_end_matches(',');
    let body = format!(
        "{{\n  \"bench\": \"recovery_latency\",\n  \"seed\": {SEED},\n  \"frames\": {frames},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
    );
    let path = "BENCH_recovery_latency.json";
    match std::fs::write(path, body) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }

    println!();
    println!("expected shape: the outage is exactly dead_for (the restart is");
    println!("scheduled, not detected); replay volume scales with the crash");
    println!("point; snapshot cadence changes log size only, never the outcome.");
    println!();
    println!("sweep in {:.1}s", started.elapsed().as_secs_f64());
}
