//! **Figure 5** — prevalence of errors for 20 executions of the
//! nondeterministic brake assistant.
//!
//! The paper ran 20 instances of 100 000 frames each and observed error
//! rates from 0.018 % to 22.25 % (mean 5.60 %), with the dominant error
//! type varying between instances. This harness reproduces the experiment
//! on the simulated platform; instances are seeded, so every row can be
//! replayed exactly.
//!
//! Run with `cargo bench -p dear-bench --bench fig5_error_prevalence`.
//! `DEAR_FRAMES` (default 20 000; paper: 100 000) and `DEAR_INSTANCES`
//! (default 20) control the scale.

use dear_apd::{run_nondet, NondetParams};
use dear_bench::{bar, env_u64, header};

fn main() {
    let frames = env_u64("DEAR_FRAMES", 20_000);
    let instances = env_u64("DEAR_INSTANCES", 20);
    let params = NondetParams {
        frames,
        ..NondetParams::default()
    };

    header(&format!(
        "Figure 5: error prevalence, {instances} executions x {frames} frames (nondeterministic build)"
    ));
    println!("error types: P = dropped frames (Preprocessing), C = dropped frames (CV),");
    println!("             M = input mismatches (CV),          E = dropped vehicles (EBA)");
    println!();

    let started = std::time::Instant::now();
    let mut rows: Vec<(u64, f64, [f64; 4])> = (0..instances)
        .map(|seed| {
            let report = run_nondet(seed, &params);
            (
                seed,
                report.prevalence_pct(),
                report.prevalence_by_type_pct(),
            )
        })
        .collect();
    let elapsed = started.elapsed();

    // The paper sorts instances by error rate "for better visibility".
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rates"));
    let max = rows.last().map_or(1.0, |r| r.1).max(1e-9);

    println!("instance (sorted) | total %  |    P %    C %    M %    E %  | chart");
    println!("------------------+----------+-------------------------------+---------------------");
    for (rank, (seed, total, types)) in rows.iter().enumerate() {
        println!(
            "{rank:3}  (seed {seed:3})   | {total:8.3} | {:6.3} {:6.3} {:6.3} {:6.3} | {}",
            types[0],
            types[1],
            types[2],
            types[3],
            bar(*total, max, 20)
        );
    }

    let totals: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
    let min = totals.first().copied().unwrap_or(0.0);
    let maxv = totals.last().copied().unwrap_or(0.0);
    let nonzero = totals.iter().filter(|&&t| t > 0.0).count();

    println!();
    println!("                  |  min %   |  mean %  |  max %   | instances with errors");
    println!(
        "measured          | {min:8.3} | {mean:8.3} | {maxv:8.3} | {nonzero}/{}",
        rows.len()
    );
    println!("paper (100k fr.)  |    0.018 |    5.600 |   22.250 | 20/20");
    println!();
    println!(
        "shape checks: rate spans orders of magnitude: {} | dominant type varies: {}",
        if maxv / min.max(0.001) > 50.0 {
            "YES"
        } else {
            "NO"
        },
        {
            let dominant: std::collections::HashSet<usize> = rows
                .iter()
                .filter(|r| r.1 > 0.0)
                .map(|r| {
                    r.2.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                })
                .collect();
            if dominant.len() >= 2 {
                "YES"
            } else {
                "NO"
            }
        }
    );
    println!(
        "{} instances x {frames} frames in {:.1}s",
        rows.len(),
        elapsed.as_secs_f64()
    );
}
