//! **Figure 2** — the AP communication mechanism, as microbenchmarks.
//!
//! Figure 2 is the architecture diagram of the proxy → SOME/IP → skeleton
//! path. This harness exercises exactly that code path and measures its
//! cost in the simulation — and, since the zero-copy frame refactor,
//! *proves* the data path's allocation and copy behaviour under a
//! counting global allocator:
//!
//! 1. *Frame-path profile*: steady-state encode + decode of a 64 B
//!    tagged notification through the pooled path
//!    (`PayloadWriter::pooled` → `into_frame` → `decode_frame`). The
//!    harness asserts **0 allocations per message** after warmup and
//!    that the decoded payload is a *view into the frame* (same address
//!    as the bytes after the header — written once, read in place).
//! 2. *Wire format*: encode/decode timings, reference (allocating)
//!    encoder vs the pooled in-place assembler.
//! 3. *End-to-end*: a full method-call round trip and an 8-subscriber
//!    event fan-out through the simulated network.
//!
//! Run with `cargo bench -p dear-bench --bench someip_path`
//! (append `-- --test` for a single-pass smoke run).

// The counting allocator mirrors `runtime_throughput`: `GlobalAlloc` is
// an unsafe trait, and delegating to `System` while bumping an atomic is
// the standard, auditable pattern for measuring allocation behaviour
// without external tooling.
#![allow(unsafe_code)]

use criterion::{criterion_group, Criterion};
use dear_ara::{SoftwareComponent, SwcConfig};
use dear_sim::{FramePool, LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation};
use dear_someip::{
    Binding, MessageId, PayloadWriter, RequestId, SdRegistry, ServiceInstance, SomeIpMessage,
    WireTag, HEADER_LEN,
};
use dear_time::Duration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: pure delegation to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One pooled encode + decode of a 64 B tagged notification: serialize
/// through a headroom writer, assemble the wire frame in place, decode
/// the payload as a view. Returns a byte read *through the view* so the
/// whole path is observable.
fn pooled_roundtrip(pool: &FramePool, round: u64) -> u8 {
    let mut w = PayloadWriter::pooled(pool);
    w.write_u64(round).write_bytes(&[0xAB; 52]); // 8 + 4 + 52 = 64 B
    let msg = SomeIpMessage::notification(MessageId::new(0x60, 0x8001), w.into_frame())
        .with_tag(WireTag::new(round, 0));
    let frame = msg.into_frame(pool);
    let decoded = SomeIpMessage::decode_frame(&frame).expect("decodes");
    decoded.payload[63]
}

/// The pre-refactor shape of the same operation: every layer boundary
/// copies (payload `Vec` → encode `Vec` → decoded payload copy).
fn copying_roundtrip(round: u64) -> u8 {
    let mut w = PayloadWriter::new();
    w.write_u64(round).write_bytes(&[0xAB; 52]);
    let msg = SomeIpMessage::notification(MessageId::new(0x60, 0x8001), w.into_bytes())
        .with_tag(WireTag::new(round, 0));
    let bytes = msg.encode();
    let decoded = SomeIpMessage::decode(&bytes).expect("decodes");
    decoded.payload[63]
}

/// Steady-state allocation profile of the pooled frame path, plus the
/// read-in-place proof. Asserts the PR's acceptance criteria.
fn frame_path_report(test_mode: bool) {
    let rounds = if test_mode { 256u64 } else { 65_536 };
    let pool = FramePool::new();

    // Warmup: let the pool reach its steady-state working set.
    for r in 0..64 {
        black_box(pooled_roundtrip(&pool, r));
    }

    let created_before = pool.stats().created;
    let allocs_before = allocations();
    for r in 0..rounds {
        black_box(pooled_roundtrip(&pool, r));
    }
    let allocs = allocations() - allocs_before;
    let per_msg = allocs as f64 / rounds as f64;
    let created = pool.stats().created - created_before;

    // Copy count: the decoded payload must be the same memory the writer
    // filled — no copy anywhere between serialization and read.
    let mut w = PayloadWriter::pooled(&pool);
    w.write_bytes(&[0xEE; 60]);
    let msg = SomeIpMessage::notification(MessageId::new(0x60, 0x8001), w.into_frame());
    let frame = msg.into_frame(&pool);
    let decoded = SomeIpMessage::decode_frame(&frame).expect("decodes");
    let in_place = std::ptr::eq(
        &decoded.payload.as_slice()[0],
        &frame.as_slice()[HEADER_LEN],
    );

    let allocs_before = allocations();
    for r in 0..rounds {
        black_box(copying_roundtrip(r));
    }
    let copying_per_msg = (allocations() - allocs_before) as f64 / rounds as f64;

    dear_bench::header("someip_path — 64 B tagged notification, encode + decode");
    println!("  pooled frame path : {per_msg:.4} allocs/msg ({rounds} messages steady state)");
    println!("  copying reference : {copying_per_msg:.4} allocs/msg (pre-refactor shape)");
    println!("  payload read in place (decoded view aliases frame bytes): {in_place}");
    println!("  pool buffers created during measurement: {created}");

    assert_eq!(
        per_msg, 0.0,
        "steady-state pooled encode+decode must perform zero allocations"
    );
    assert_eq!(created, 0, "steady state must not grow the pool");
    assert!(in_place, "decoded payload must alias the received frame");
}

fn bench_wire_format(c: &mut Criterion) {
    let pool = FramePool::new();
    let make_msg = |payload: Vec<u8>| {
        SomeIpMessage::request(
            MessageId::new(0x1234, 0x0001),
            RequestId::new(0x11, 0x22),
            payload,
        )
    };
    let msg = make_msg(vec![0xAB; 64]);
    let tagged = msg.clone().with_tag(WireTag::new(123_456_789, 2));
    let plain_bytes = msg.encode();
    let tagged_bytes = tagged.encode();
    let tagged_frame = tagged.clone().into_frame(&pool);

    c.bench_function("someip/encode_plain_64B", |b| {
        b.iter(|| black_box(msg.encode()))
    });
    c.bench_function("someip/encode_tagged_64B", |b| {
        b.iter(|| black_box(tagged.encode()))
    });
    // The pooled path including serialization (the fair comparison: the
    // in-place assembly consumes its payload, so the writer runs inside
    // the loop).
    c.bench_function("someip/encode_tagged_64B_pooled", |b| {
        b.iter(|| {
            let mut w = PayloadWriter::pooled(&pool);
            w.write_bytes(&[0xAB; 60]);
            let m = SomeIpMessage::notification(MessageId::new(0x60, 0x8001), w.into_frame())
                .with_tag(WireTag::new(123_456_789, 2));
            black_box(m.into_frame(&pool))
        })
    });
    c.bench_function("someip/decode_plain_64B", |b| {
        b.iter(|| SomeIpMessage::decode(black_box(&plain_bytes)).expect("decodes"))
    });
    c.bench_function("someip/decode_tagged_64B", |b| {
        b.iter(|| SomeIpMessage::decode(black_box(&tagged_bytes)).expect("decodes"))
    });
    c.bench_function("someip/decode_tagged_64B_frame", |b| {
        b.iter(|| SomeIpMessage::decode_frame(black_box(&tagged_frame)).expect("decodes"))
    });
    c.bench_function("someip/roundtrip_tagged_64B_pooled", |b| {
        b.iter(|| black_box(pooled_roundtrip(&pool, 7)))
    });
    c.bench_function("someip/roundtrip_tagged_64B_copying", |b| {
        b.iter(|| black_box(copying_roundtrip(7)))
    });
}

/// One full proxy → SOME/IP → skeleton → response round trip in the
/// simulation (includes discovery lookup, serialization, two simulated
/// network hops, pool dispatch, and future resolution).
fn bench_method_roundtrip(c: &mut Criterion) {
    c.bench_function("someip/method_call_roundtrip", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let net = NetworkHandle::new(
                LinkConfig::ideal(Duration::from_micros(100)),
                sim.fork_rng("net"),
            );
            let sd = SdRegistry::new();
            let server = SoftwareComponent::launch(
                &sim,
                &net,
                &sd,
                SwcConfig::single_threaded("server", NodeId(1), 0x10),
            );
            let skel = server.skeleton(&sim, 0x42, 1);
            skel.provide_method(
                1,
                LatencyModel::constant(Duration::from_micros(10)),
                |_, p| p,
            );
            skel.offer(&mut sim, Duration::from_secs(10));
            let client = SoftwareComponent::launch(
                &sim,
                &net,
                &sd,
                SwcConfig::single_threaded("client", NodeId(2), 0x20),
            );
            let proxy = client.proxy(0x42, 1);
            let _ = proxy.call(&mut sim, 1, vec![1, 2, 3]);
            sim.run_to_completion();
            black_box(sim.stats().executed_events)
        })
    });
}

/// Event notification fan-out to 8 subscribers (one encode, shared
/// frames).
fn bench_event_fanout(c: &mut Criterion) {
    c.bench_function("someip/event_fanout_8_subscribers", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let net = NetworkHandle::new(
                LinkConfig::ideal(Duration::from_micros(100)),
                sim.fork_rng("net"),
            );
            let sd = SdRegistry::new();
            let server = Binding::new(&net, &sd, NodeId(1), 0x10);
            let inst = ServiceInstance::new(0x60, 1);
            server.offer(&mut sim, inst, Duration::from_secs(10));
            for i in 2..10u16 {
                let c = Binding::new(&net, &sd, NodeId(i), 0x20 + i);
                c.subscribe(inst, 1);
                c.on_event(0x60, 0x8001, |_, _| {});
            }
            server.notify(&mut sim, inst, 1, 0x8001, vec![0xEE; 32]);
            sim.run_to_completion();
            black_box(sim.stats().executed_events)
        })
    });
}

/// Steady-state fan-out: the world is built once; each iteration is one
/// notification delivered to all 8 subscribers — the path the frame
/// refactor targets (one pooled encode, shared frames, recycled
/// buffers).
fn bench_event_fanout_steady(c: &mut Criterion) {
    let mut sim = Simulation::new(1);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let server = Binding::new(&net, &sd, NodeId(1), 0x10);
    let inst = ServiceInstance::new(0x60, 1);
    server.offer(&mut sim, inst, Duration::from_secs(1 << 30));
    let mut clients = Vec::new();
    for i in 2..10u16 {
        let c = Binding::new(&net, &sd, NodeId(i), 0x20 + i);
        c.subscribe(inst, 1);
        c.on_event(0x60, 0x8001, |_, _| {});
        clients.push(c);
    }
    let pool = server.pool();
    // Payload-size sweep: the pooled path's cost is flat in payload size
    // (bytes written once, shared by all 8 subscribers, read in place),
    // where the pre-refactor path copied 9+ times per notification.
    for (name, size) in [("32B", 32usize), ("1KiB", 1024), ("16KiB", 16384)] {
        let payload = vec![0xEE; size];
        c.bench_function(&format!("someip/event_fanout_8_steady_{name}"), |b| {
            b.iter(|| {
                let mut m = pool.acquire();
                m.reserve_headroom(HEADER_LEN);
                m.extend_from_slice(&payload);
                server.notify(&mut sim, inst, 1, 0x8001, m.freeze());
                sim.run_to_completion();
                black_box(sim.stats().executed_events)
            })
        });
    }
}

criterion_group!(
    benches,
    bench_wire_format,
    bench_method_roundtrip,
    bench_event_fanout,
    bench_event_fanout_steady
);

fn main() {
    // Single source of truth for flag parsing: the vendored criterion.
    let test_mode = Criterion::default().is_test_mode();
    frame_path_report(test_mode);
    benches();
}
