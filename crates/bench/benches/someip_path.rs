//! **Figure 2** — the AP communication mechanism, as microbenchmarks.
//!
//! Figure 2 is the architecture diagram of the proxy → SOME/IP → skeleton
//! path. This harness exercises exactly that code path and measures its
//! cost in the simulation: wire-format encode/decode (with and without
//! the DEAR tag trailer), a full method-call round trip, and event
//! notification fan-out.
//!
//! Run with `cargo bench -p dear-bench --bench someip_path`.

use criterion::{criterion_group, criterion_main, Criterion};
use dear_ara::{SoftwareComponent, SwcConfig};
use dear_sim::{LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation};
use dear_someip::{
    Binding, MessageId, RequestId, SdRegistry, ServiceInstance, SomeIpMessage, WireTag,
};
use dear_time::Duration;
use std::hint::black_box;

fn bench_wire_format(c: &mut Criterion) {
    let msg = SomeIpMessage::request(
        MessageId::new(0x1234, 0x0001),
        RequestId::new(0x11, 0x22),
        vec![0xAB; 64],
    );
    let tagged = msg.clone().with_tag(WireTag::new(123_456_789, 2));
    let plain_bytes = msg.encode();
    let tagged_bytes = tagged.encode();

    c.bench_function("someip/encode_plain_64B", |b| {
        b.iter(|| black_box(msg.encode()))
    });
    c.bench_function("someip/encode_tagged_64B", |b| {
        b.iter(|| black_box(tagged.encode()))
    });
    c.bench_function("someip/decode_plain_64B", |b| {
        b.iter(|| SomeIpMessage::decode(black_box(&plain_bytes)).expect("decodes"))
    });
    c.bench_function("someip/decode_tagged_64B", |b| {
        b.iter(|| SomeIpMessage::decode(black_box(&tagged_bytes)).expect("decodes"))
    });
}

/// One full proxy → SOME/IP → skeleton → response round trip in the
/// simulation (includes discovery lookup, serialization, two simulated
/// network hops, pool dispatch, and future resolution).
fn bench_method_roundtrip(c: &mut Criterion) {
    c.bench_function("someip/method_call_roundtrip", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let net = NetworkHandle::new(
                LinkConfig::ideal(Duration::from_micros(100)),
                sim.fork_rng("net"),
            );
            let sd = SdRegistry::new();
            let server = SoftwareComponent::launch(
                &sim,
                &net,
                &sd,
                SwcConfig::single_threaded("server", NodeId(1), 0x10),
            );
            let skel = server.skeleton(&sim, 0x42, 1);
            skel.provide_method(
                1,
                LatencyModel::constant(Duration::from_micros(10)),
                |_, p| p,
            );
            skel.offer(&mut sim, Duration::from_secs(10));
            let client = SoftwareComponent::launch(
                &sim,
                &net,
                &sd,
                SwcConfig::single_threaded("client", NodeId(2), 0x20),
            );
            let proxy = client.proxy(0x42, 1);
            let _ = proxy.call(&mut sim, 1, vec![1, 2, 3]);
            sim.run_to_completion();
            black_box(sim.stats().executed_events)
        })
    });
}

/// Event notification fan-out to 8 subscribers.
fn bench_event_fanout(c: &mut Criterion) {
    c.bench_function("someip/event_fanout_8_subscribers", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            let net = NetworkHandle::new(
                LinkConfig::ideal(Duration::from_micros(100)),
                sim.fork_rng("net"),
            );
            let sd = SdRegistry::new();
            let server = Binding::new(&net, &sd, NodeId(1), 0x10);
            let inst = ServiceInstance::new(0x60, 1);
            server.offer(&mut sim, inst, Duration::from_secs(10));
            for i in 2..10u16 {
                let c = Binding::new(&net, &sd, NodeId(i), 0x20 + i);
                c.subscribe(inst, 1);
                c.on_event(0x60, 0x8001, |_, _| {});
            }
            server.notify(&mut sim, inst, 1, 0x8001, vec![0xEE; 32]);
            sim.run_to_completion();
            black_box(sim.stats().executed_events)
        })
    });
}

criterion_group!(
    benches,
    bench_wire_format,
    bench_method_roundtrip,
    bench_event_fanout
);
criterion_main!(benches);
