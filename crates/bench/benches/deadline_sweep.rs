//! **§IV.B ablation** — the deadline / error-rate trade-off.
//!
//! "For certain applications it is acceptable to deliberately introduce
//! the possibility of sporadic errors by setting deadlines to values
//! lower than the actual WCET. ... In contrast to the original brake
//! assistant implementation, the trade-off between end-to-end latency and
//! error rate becomes apparent."
//!
//! This harness sweeps the preprocessing/CV deadline `D` while the actual
//! stage compute time stays ~18 ms. Lowering `D` shrinks the logical
//! end-to-end latency, `(5+L) + 2·(D+L)`, but once stage outputs start
//! arriving after their release tags, faults surface as observable errors
//! (CV tag misalignment, safe-to-process violations, deadline misses) —
//! never as silent reordering.
//!
//! Run with `cargo bench -p dear-bench --bench deadline_sweep`.
//! `DEAR_FRAMES` (default 2 000) controls the per-point scale.

use dear_apd::{run_det, DetParams};
use dear_bench::{env_u64, header};
use dear_time::Duration;

fn main() {
    let frames = env_u64("DEAR_FRAMES", 2_000);
    header(&format!(
        "Deadline sweep: preprocessing/CV deadline D vs latency and errors ({frames} frames/point)"
    ));
    println!("stage compute ~18 ms (mean); paper's safe deadline: 25 ms; L = 5 ms, E = 0");
    println!();
    println!("  D (ms) | logical e2e | decisions | mismatches |  stp | misses | err events/100fr");
    println!("---------+-------------+-----------+------------+------+--------+-----------------");

    let started = std::time::Instant::now();
    for d_ms in [2i64, 5, 8, 12, 16, 20, 25, 30] {
        let d = Duration::from_millis(d_ms);
        let mut params = DetParams {
            frames,
            ..DetParams::default()
        };
        params.deadlines.preprocessing = d;
        params.deadlines.computer_vision = d;
        let report = run_det(42, &params);
        let observable = report.mismatches_cv + report.stp_violations + report.deadline_misses;
        // More than one observable error event can arise per frame
        // (e.g. a mismatch plus two STP rejections), so this is an event
        // rate, not a frame fraction.
        let err_pct = observable as f64 * 100.0 / frames as f64;
        // Logical end-to-end latency = (Da + L) + (Dp + L) + (Dcv + L).
        let logical = Duration::from_millis(5 + 5) + (d + Duration::from_millis(5)) * 2;
        println!(
            "   {d_ms:4}  |   {:>7}   | {:9} | {:10} | {:4} | {:6} | {err_pct:10.3}",
            logical.to_string(),
            report.decisions.len(),
            report.mismatches_cv,
            report.stp_violations,
            report.deadline_misses,
        );
    }
    println!();
    println!("expected shape: latency rises linearly with D; observable errors vanish once");
    println!("D (plus the release offset L) covers the actual stage compute time, and the");
    println!("decision count approaches the frame count.");
    println!();
    println!("sweep in {:.1}s", started.elapsed().as_secs_f64());
}
