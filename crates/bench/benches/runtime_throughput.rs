//! **Runtime ablation** — executor hot-path throughput and allocation
//! profile after the PR 3 overhaul (persistent worker pool, binary-heap
//! event queue with recycled entries, lazy tracing).
//!
//! Three questions, three harnesses:
//!
//! 1. *Allocation profile*: how many heap allocations does one reaction
//!    cost in steady state? A counting global allocator measures a
//!    timer-driven fan-out after warmup. Expected: **zero** per reaction
//!    with tracing disabled (the lazy `record_with` path never formats),
//!    a small constant with tracing enabled.
//! 2. *Tracing cost*: wall-time of the same program traced vs untraced.
//! 3. *Pool vs spawn*: wall-time of the level-parallel executor on light
//!    and heavy reaction bodies. Compare against the pre-overhaul
//!    `scheduler_throughput` numbers in EXPERIMENTS.md — the old executor
//!    spawned fresh scoped threads per batch; the pool reuses its threads
//!    across all batches and tags.
//! 4. *Arena vs map lookup*: the hot path indexes per-port/per-action
//!    state through `dear_arena::TypedArena` (a dense key-typed `Vec`);
//!    this group measures that access pattern against `HashMap` and
//!    `BTreeMap` alternatives at program-realistic sizes.
//!
//! Run with `cargo bench -p dear-bench --bench runtime_throughput`
//! (append `-- --test` for a single-pass smoke run).

// The counting allocator is the one place this workspace touches `unsafe`:
// `GlobalAlloc` is an unsafe trait, and simply delegating to `System`
// while bumping atomic counters is the standard, auditable pattern for
// measuring allocation behaviour without external tooling.
#![allow(unsafe_code)]

use criterion::{criterion_group, BenchmarkId, Criterion};
use dear_core::{ProgramBuilder, Runtime};
use dear_time::{Duration, Instant};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: pure delegation to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// `width` independent reactors, each driven by its own 1 ms timer, each
/// reaction pure arithmetic on local state: no ports, no actions — the
/// minimal steady-state hot loop.
fn build_timer_fanout(width: usize) -> Runtime {
    let mut b = ProgramBuilder::new();
    for i in 0..width {
        let mut r = b.reactor(&format!("w{i}"), 0u64);
        let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
        r.reaction("work")
            .triggered_by(t)
            .body(move |acc: &mut u64, _ctx| {
                *acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + i as u64);
            });
        r.finish();
    }
    Runtime::new(b.build().expect("fanout builds"))
}

/// Measures allocations per reaction over `tags` steady-state tags.
fn alloc_per_reaction(traced: bool, tags: u64) -> f64 {
    let mut rt = build_timer_fanout(32);
    if traced {
        rt.enable_tracing();
    }
    rt.start(Instant::EPOCH);
    // Warmup: let every buffer (heap, free list, ready levels, scratch,
    // trace vec) reach its steady-state capacity.
    rt.run_fast(256);
    if traced {
        // Start the measured window from a fresh, empty log. The new
        // trace's buffer grows by doubling, so its reallocations amortize
        // to ~0 per reaction over the window; the traced figure is
        // dominated by the per-record `format!` + event push.
        let _ = rt.take_trace();
    }
    let reactions_before = rt.stats().executed_reactions;
    let allocs_before = allocations();
    rt.run_fast(tags);
    let allocs = allocations() - allocs_before;
    let reactions = rt.stats().executed_reactions - reactions_before;
    allocs as f64 / reactions as f64
}

fn alloc_report(test_mode: bool) {
    let tags = if test_mode { 64 } else { 2048 };
    let untraced = alloc_per_reaction(false, tags);
    let traced = alloc_per_reaction(true, tags);
    dear_bench::header("runtime_throughput — allocations per reaction (steady state)");
    println!("  untraced hot path : {untraced:.4} allocs/reaction");
    println!("  traced hot path   : {traced:.4} allocs/reaction");
    println!(
        "  tracing delta     : {:.4} allocs/reaction",
        traced - untraced
    );
    assert_eq!(
        untraced, 0.0,
        "disabled-trace hot path must perform zero per-reaction allocations"
    );
}

/// One source fanning out to `width` reactors over ports (the same
/// topology the pre-overhaul `scheduler_throughput` bench used, for a
/// before/after comparison of the parallel executor).
fn run_port_fanout(width: usize, ticks: u64, workers: usize, work_iters: u64) -> u64 {
    let mut b = ProgramBuilder::new();
    let mut src = b.reactor("src", 0u64);
    let t = src.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    let out = src.output::<u64>("o");
    src.reaction("emit")
        .triggered_by(t)
        .effects(out)
        .body(move |n: &mut u64, ctx| {
            *n += 1;
            ctx.set(out, *n);
        });
    src.finish();
    for i in 0..width {
        let mut stage = b.reactor(&format!("w{i}"), 0u64);
        let inp = stage.input::<u64>("i");
        stage
            .reaction("work")
            .triggered_by(inp)
            .body(move |acc: &mut u64, ctx| {
                let mut v = *ctx.get(inp).unwrap() + i as u64;
                for _ in 0..work_iters {
                    v = black_box(
                        v.wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407),
                    );
                }
                *acc ^= v;
            });
        stage.finish();
        b.connect(out, inp).unwrap();
    }
    let mut rt = Runtime::new(b.build().expect("fanout builds"));
    rt.set_workers(workers);
    rt.start(Instant::EPOCH);
    rt.stop_at(Instant::EPOCH + Duration::from_millis(ticks as i64))
        .expect("stop scheduled");
    rt.run_fast(u64::MAX);
    rt.stats().executed_reactions
}

/// Timer fan-out driven for `ticks` tags, traced or untraced.
fn run_tracing_workload(traced: bool, ticks: u64) -> u64 {
    let mut rt = build_timer_fanout(32);
    if traced {
        rt.enable_tracing();
    }
    rt.start(Instant::EPOCH);
    rt.run_fast(ticks);
    rt.stats().executed_reactions
}

fn bench_tracing_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/tracing_width32x200");
    group.bench_function("untraced", |b| {
        b.iter(|| black_box(run_tracing_workload(false, 200)))
    });
    group.bench_function("traced", |b| {
        b.iter(|| black_box(run_tracing_workload(true, 200)))
    });
    group.finish();
}

fn bench_pool_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/fanout_width32");
    // Light bodies: the old spawn-per-batch executor paid ~9x over
    // sequential here; the persistent pool pays only channel traffic.
    group.bench_function("light_seq", |b| {
        b.iter(|| black_box(run_port_fanout(32, 50, 1, 1)))
    });
    group.bench_function("light_pool4", |b| {
        b.iter(|| black_box(run_port_fanout(32, 50, 4, 1)))
    });
    // Heavy bodies: worker scaling (bounded by the machine's cores).
    group.bench_function("heavy_seq", |b| {
        b.iter(|| black_box(run_port_fanout(32, 10, 1, 200_000)))
    });
    group.bench_function("heavy_pool4", |b| {
        b.iter(|| black_box(run_port_fanout(32, 10, 4, 200_000)))
    });
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/light_pool_workers");
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| black_box(run_port_fanout(32, 50, workers, 1))),
        );
    }
    group.finish();
}

/// A key like the runtime's `PortId`/`ActionId`: a dense `u32` newtype.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct SlotKey(u32);

impl dear_arena::Key for SlotKey {
    fn from_index(index: usize) -> Self {
        SlotKey(u32::try_from(index).expect("bench sizes fit"))
    }
    fn index(self) -> usize {
        self.0 as usize
    }
}

const LOOKUPS: u64 = 4096;

/// Pseudo-random slot sequence shared by all three containers.
fn slot_sequence(n: usize) -> impl Iterator<Item = usize> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    (0..LOOKUPS).map(move |_| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as usize % n
    })
}

fn lookup_arena(arena: &dear_arena::TypedArena<SlotKey, u64>, n: usize) -> u64 {
    use dear_arena::Key;
    let mut acc = 0u64;
    for i in slot_sequence(n) {
        acc ^= arena[SlotKey::from_index(i)];
    }
    acc
}

fn bench_state_lookup(c: &mut Criterion) {
    for n in [64usize, 1024] {
        let arena: dear_arena::TypedArena<SlotKey, u64> = (0..n as u64).collect();
        let hash: std::collections::HashMap<u32, u64> =
            (0..n as u32).map(|k| (k, u64::from(k))).collect();
        let btree: std::collections::BTreeMap<u32, u64> =
            (0..n as u32).map(|k| (k, u64::from(k))).collect();
        let mut group = c.benchmark_group(format!("runtime/state_lookup_{n}"));
        group.bench_function("typed_arena", |b| {
            b.iter(|| black_box(lookup_arena(&arena, n)))
        });
        group.bench_function("hashmap", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in slot_sequence(n) {
                    acc ^= hash[&(i as u32)];
                }
                black_box(acc)
            })
        });
        group.bench_function("btreemap", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in slot_sequence(n) {
                    acc ^= btree[&(i as u32)];
                }
                black_box(acc)
            })
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_tracing_cost,
    bench_pool_vs_sequential,
    bench_worker_scaling,
    bench_state_lookup
);

fn main() {
    // Single source of truth for flag parsing: the vendored criterion.
    let test_mode = Criterion::default().is_test_mode();
    alloc_report(test_mode);
    benches();
}
