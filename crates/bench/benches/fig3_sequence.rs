//! **Figure 3** — the tagged method-call sequence through the DEAR stack.
//!
//! Reproduces the paper's 22-step walk-through: a client reactor invokes a
//! method at tag `tc`; the client method transactor forwards it with wire
//! tag `tc + Dc`; the server releases it at `tc + Dc + L + E`, responds at
//! `ts` with wire tag `ts + Ds`; the client releases the response at
//! `ts + Ds + L + E`. This harness runs the round trip with tracing
//! enabled, prints the observed reaction sequence on both platforms, and
//! checks every value of the tag algebra.
//!
//! Run with `cargo bench -p dear-bench --bench fig3_sequence`.

use dear_bench::header;
use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_sim::{LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear_someip::{Binding, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientMethodTransactor, DearConfig, FederatedPlatform, MethodSpec, Outbox,
    ServerMethodTransactor,
};
use std::sync::{Arc, Mutex};

const SERVICE: u16 = 0x1001;
const DC: Duration = Duration::from_millis(1);
const DS: Duration = Duration::from_millis(2);
const L: Duration = Duration::from_millis(5);
const E: Duration = Duration::from_millis(1);
const TC_MS: u64 = 10;

fn main() {
    header("Figure 3: tagged message transmission between two DEAR SWCs");
    println!("parameters: Dc = {DC}, Ds = {DS}, L = {L}, E = {E}, tc = {TC_MS}ms");

    let mut sim = Simulation::new(1);
    sim.enable_tracing();
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_millis(2)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let cfg = DearConfig::new(L, E);
    let spec = MethodSpec {
        service: SERVICE,
        instance: 1,
        method: 1,
    };

    // Client platform.
    let client_tags: Arc<Mutex<Vec<(String, Tag)>>> = Arc::new(Mutex::new(Vec::new()));
    let outbox_c = Outbox::new();
    let mut bc = ProgramBuilder::new();
    let cmt = ClientMethodTransactor::declare(&mut bc, &outbox_c, "calc", DC);
    {
        let mut logic = bc.reactor("client_logic", ());
        let req = logic.output::<dear_someip::FrameBuf>("request");
        let t = logic.timer("fire", Duration::from_millis(TC_MS as i64), None);
        let log = client_tags.clone();
        logic
            .reaction("send")
            .triggered_by(t)
            .effects(req)
            .body(move |_, ctx| {
                log.lock()
                    .unwrap()
                    .push(("client sends request".into(), ctx.tag()));
                ctx.set(req, vec![7].into());
            });
        let log = client_tags.clone();
        logic
            .reaction("receive")
            .triggered_by(cmt.response)
            .body(move |_, ctx| {
                log.lock()
                    .unwrap()
                    .push(("client receives response".into(), ctx.tag()));
            });
        logic.finish();
        bc.connect(req, cmt.request).unwrap();
    }
    let mut client_rt = Runtime::new(bc.build().unwrap());
    client_rt.enable_tracing();
    let client = FederatedPlatform::new(
        "client",
        client_rt,
        VirtualClock::ideal(),
        outbox_c,
        sim.fork_rng("client-costs"),
    );
    let client_binding = Binding::new(&net, &sd, NodeId(1), 0x11);
    cmt.bind(&client, &client_binding, spec, cfg);

    // Server platform.
    let server_tags: Arc<Mutex<Vec<(String, Tag)>>> = Arc::new(Mutex::new(Vec::new()));
    let outbox_s = Outbox::new();
    let mut bs = ProgramBuilder::new();
    let smt = ServerMethodTransactor::declare(&mut bs, &outbox_s, "calc", DS);
    {
        let mut logic = bs.reactor("server_logic", ());
        let resp = logic.output::<dear_someip::FrameBuf>("response");
        let log = server_tags.clone();
        logic
            .reaction("serve")
            .triggered_by(smt.request)
            .effects(resp)
            .body(move |_, ctx| {
                log.lock()
                    .unwrap()
                    .push(("server handles request".into(), ctx.tag()));
                let v = ctx.get(smt.request).unwrap()[0];
                ctx.set(resp, vec![v + 1].into());
            });
        logic.finish();
        bs.connect(resp, smt.response).unwrap();
    }
    let mut server_rt = Runtime::new(bs.build().unwrap());
    server_rt.enable_tracing();
    let server = FederatedPlatform::new(
        "server",
        server_rt,
        VirtualClock::ideal(),
        outbox_s,
        sim.fork_rng("server-costs"),
    );
    let server_binding = Binding::new(&net, &sd, NodeId(2), 0x22);
    server_binding.offer(
        &mut sim,
        ServiceInstance::new(SERVICE, 1),
        Duration::from_secs(3600),
    );
    smt.bind(&server, &server_binding, spec, cfg);

    client.start(&mut sim);
    server.start(&mut sim);
    let started = std::time::Instant::now();
    sim.run_until(Instant::from_secs(1));
    let elapsed = started.elapsed();

    // Expected tag algebra.
    let tc = Tag::at(Instant::from_millis(TC_MS));
    let wire_req = tc.delay(DC);
    let release_req = Tag::at(wire_req.time + L + E);
    let ts = release_req;
    let wire_resp = ts.delay(DS);
    let release_resp = Tag::at(wire_resp.time + L + E);

    header("The 22 steps (grouped), expected vs observed");
    println!("steps  1- 3: client reaction at tc, bypass deposit tc+Dc, proxy call");
    println!("steps  4- 6: binding attaches tag, SOME/IP message over ethernet");
    println!("steps  7-11: server bypass, interrupt, schedule at tc+Dc+L+E, forward");
    println!("steps 12-17: server logic at ts, bypass ts+Ds, skeleton reply, send");
    println!("steps 18-22: client bypass, interrupt, schedule at ts+Ds+L+E, deliver");
    println!();
    println!("quantity                         | expected          | observed");
    println!("---------------------------------+-------------------+-------------------");
    let client_log = client_tags.lock().unwrap();
    let server_log = server_tags.lock().unwrap();
    let observed_send = client_log
        .iter()
        .find(|(what, _)| what.contains("sends"))
        .map(|(_, t)| *t);
    let observed_serve = server_log.first().map(|(_, t)| *t);
    let observed_recv = client_log
        .iter()
        .find(|(what, _)| what.contains("receives"))
        .map(|(_, t)| *t);
    let row = |name: &str, expected: Tag, observed: Option<Tag>| {
        let obs = observed.map_or("MISSING".to_string(), |t| t.to_string());
        let ok = observed == Some(expected);
        println!(
            "{name:<33}| {:<18}| {obs:<18}{}",
            expected.to_string(),
            if ok { " OK" } else { " MISMATCH" }
        );
        ok
    };
    let mut all = true;
    all &= row("tc (client request)", tc, observed_send);
    all &= row("tc+Dc+L+E (server release)", release_req, observed_serve);
    all &= row("ts+Ds+L+E (client release)", release_resp, observed_recv);
    println!();
    println!(
        "wire tags: request {} -> {}, response {} -> {}",
        tc, wire_req, ts, wire_resp
    );

    header("Reaction traces");
    for (name, platform) in [("client", &client), ("server", &server)] {
        println!("[{name}]");
        let trace = platform.with_runtime(|rt| rt.take_trace());
        for event in &trace {
            println!("  {event}");
        }
    }

    println!();
    println!(
        "tag algebra fully verified: {} ({} sim events, {:.2}ms wall time)",
        if all { "YES" } else { "NO" },
        sim.stats().executed_events,
        elapsed.as_secs_f64() * 1e3
    );
    assert!(all, "figure 3 tag algebra must verify");
}
