//! Shared helpers for the figure-regeneration harnesses.
//!
//! Every bench target regenerates one table/figure of the paper (see
//! `DESIGN.md` §4 and `EXPERIMENTS.md`). Harness scale can be adjusted
//! through environment variables without recompiling:
//!
//! * `DEAR_FRAMES` — frames per brake-assistant instance (Figure 5
//!   defaults to 20 000; the paper used 100 000);
//! * `DEAR_INSTANCES` — experiment instances (default 20, as the paper);
//! * `DEAR_TRIALS` — Figure 1 trials (default 10 000).

#![forbid(unsafe_code)]

/// Reads a `u64` environment variable with a default.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Renders a unicode bar of width proportional to `value / max`.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round() as usize;
    "█".repeat(filled.min(width))
}

/// Prints a section header in the style shared by all harnesses.
pub fn header(title: &str) {
    println!();
    println!("==========================================================================");
    println!("{title}");
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_u64_parses_and_defaults() {
        std::env::remove_var("DEAR_TEST_VAR_X");
        assert_eq!(env_u64("DEAR_TEST_VAR_X", 7), 7);
        std::env::set_var("DEAR_TEST_VAR_X", "123");
        assert_eq!(env_u64("DEAR_TEST_VAR_X", 7), 123);
        std::env::set_var("DEAR_TEST_VAR_X", "not-a-number");
        assert_eq!(env_u64("DEAR_TEST_VAR_X", 7), 7);
        std::env::remove_var("DEAR_TEST_VAR_X");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
