//! Time primitives shared by every crate in the DEAR reproduction.
//!
//! The reproduction of *Achieving Determinism in Adaptive AUTOSAR* (DATE
//! 2020) is built on a discrete notion of time with nanosecond resolution:
//!
//! * [`Instant`] — a point in time, measured in nanoseconds since an epoch.
//!   Depending on context the epoch is the start of a simulation ("true
//!   time"), the start of a platform's local clock, or the logical time
//!   origin of a reactor program.
//! * [`Duration`] — a signed span of time in nanoseconds. Durations are
//!   signed because clock offsets between platforms may be negative.
//!
//! Both types are plain newtypes over integers so that all arithmetic is
//! exact and deterministic — no floating point is involved in time keeping,
//! which matters for the bit-identical reproducibility the paper's reactor
//! semantics promises.
//!
//! # Examples
//!
//! ```
//! use dear_time::{Duration, Instant};
//!
//! let start = Instant::EPOCH + Duration::from_millis(50);
//! let period = Duration::from_millis(50);
//! let third_activation = start + period * 2;
//! assert_eq!(third_activation.as_nanos(), 150_000_000);
//! assert_eq!(third_activation - start, Duration::from_millis(100));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed span of time with nanosecond resolution.
///
/// `Duration` is a thin wrapper over an `i64` nanosecond count. The range
/// (± ~292 years) is ample for the simulations in this workspace. Arithmetic
/// panics on overflow in debug builds exactly like primitive integers;
/// checked and saturating variants are provided for the boundary cases.
///
/// # Examples
///
/// ```
/// use dear_time::Duration;
///
/// let d = Duration::from_millis(5) + Duration::from_micros(250);
/// assert_eq!(d.as_nanos(), 5_250_000);
/// assert!(d > Duration::ZERO);
/// assert_eq!(-d + d, Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(i64::MAX);
    /// The smallest (most negative) representable duration.
    pub const MIN: Duration = Duration(i64::MIN);

    /// Creates a duration from a signed nanosecond count.
    #[must_use]
    pub const fn from_nanos(nanos: i64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from a signed microsecond count.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_micros(micros: i64) -> Self {
        match micros.checked_mul(1_000) {
            Some(n) => Duration(n),
            None => panic!("duration overflow in from_micros"),
        }
    }

    /// Creates a duration from a signed millisecond count.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_millis(millis: i64) -> Self {
        match millis.checked_mul(1_000_000) {
            Some(n) => Duration(n),
            None => panic!("duration overflow in from_millis"),
        }
    }

    /// Creates a duration from a signed second count.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[must_use]
    pub const fn from_secs(secs: i64) -> Self {
        match secs.checked_mul(1_000_000_000) {
            Some(n) => Duration(n),
            None => panic!("duration overflow in from_secs"),
        }
    }

    /// Creates a duration from seconds expressed as a float.
    ///
    /// Useful for configuration; not used on deterministic hot paths.
    ///
    /// # Panics
    ///
    /// Panics if the value is not finite or overflows the representation.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite(), "duration must be finite");
        let nanos = secs * 1e9;
        assert!(
            nanos >= i64::MIN as f64 && nanos <= i64::MAX as f64,
            "duration overflow in from_secs_f64"
        );
        Duration(nanos as i64)
    }

    /// Returns the number of whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// Returns the number of whole microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> i64 {
        self.0 / 1_000
    }

    /// Returns the number of whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> i64 {
        self.0 / 1_000_000
    }

    /// Returns the number of whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> i64 {
        self.0 / 1_000_000_000
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this duration is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this duration is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Returns the absolute value of this duration.
    #[must_use]
    pub const fn abs(self) -> Self {
        Duration(self.0.abs())
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(n) => Some(Duration(n)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on overflow.
    #[must_use]
    pub const fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_sub(rhs.0) {
            Some(n) => Some(Duration(n)),
            None => None,
        }
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by an integer factor.
    #[must_use]
    pub const fn saturating_mul(self, factor: i64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("duration addition overflow"),
        )
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction overflow"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Neg for Duration {
    type Output = Duration;
    fn neg(self) -> Duration {
        Duration(self.0.checked_neg().expect("duration negation overflow"))
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(
            self.0
                .checked_mul(rhs)
                .expect("duration multiplication overflow"),
        )
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        let (sign, abs) = if n < 0 {
            ("-", n.unsigned_abs())
        } else {
            ("", n.unsigned_abs())
        };
        if abs == 0 {
            write!(f, "0s")
        } else if abs % 1_000_000_000 == 0 {
            write!(f, "{sign}{}s", abs / 1_000_000_000)
        } else if abs % 1_000_000 == 0 {
            write!(f, "{sign}{}ms", abs / 1_000_000)
        } else if abs % 1_000 == 0 {
            write!(f, "{sign}{}us", abs / 1_000)
        } else {
            write!(f, "{sign}{abs}ns")
        }
    }
}

/// A point in time with nanosecond resolution.
///
/// The epoch depends on context: simulation start ("true time"), a
/// platform's local clock origin, or a reactor program's logical time
/// origin. Mixing instants from different epochs is a logic error that the
/// type system cannot catch; the crates in this workspace therefore convert
/// explicitly at every boundary (see `dear-sim`'s `VirtualClock`).
///
/// # Examples
///
/// ```
/// use dear_time::{Duration, Instant};
///
/// let t0 = Instant::EPOCH;
/// let t1 = t0 + Duration::from_millis(50);
/// assert!(t1 > t0);
/// assert_eq!(t1 - t0, Duration::from_millis(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

impl Instant {
    /// The origin of the time axis.
    pub const EPOCH: Instant = Instant(0);
    /// The largest representable instant; used as an "infinite" sentinel.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Creates an instant from nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant(nanos)
    }

    /// Creates an instant from microseconds since the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Instant(micros * 1_000)
    }

    /// Creates an instant from milliseconds since the epoch.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Instant(millis * 1_000_000)
    }

    /// Creates an instant from seconds since the epoch.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Instant(secs * 1_000_000_000)
    }

    /// Returns the nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds since the epoch.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked addition of a (possibly negative) duration.
    ///
    /// Returns `None` if the result would precede the epoch or overflow.
    #[must_use]
    pub const fn checked_add(self, d: Duration) -> Option<Instant> {
        let n = d.as_nanos();
        if n >= 0 {
            match self.0.checked_add(n as u64) {
                Some(v) => Some(Instant(v)),
                None => None,
            }
        } else {
            match self.0.checked_sub(n.unsigned_abs()) {
                Some(v) => Some(Instant(v)),
                None => None,
            }
        }
    }

    /// Saturating addition of a (possibly negative) duration.
    ///
    /// Clamps at [`Instant::EPOCH`] and [`Instant::MAX`].
    #[must_use]
    pub const fn saturating_add(self, d: Duration) -> Instant {
        let n = d.as_nanos();
        if n >= 0 {
            Instant(self.0.saturating_add(n as u64))
        } else {
            Instant(self.0.saturating_sub(n.unsigned_abs()))
        }
    }

    /// Checked difference between two instants.
    ///
    /// Returns `None` if the result does not fit in a [`Duration`].
    #[must_use]
    pub fn checked_duration_since(self, earlier: Instant) -> Option<Duration> {
        let diff = self.0 as i128 - earlier.0 as i128;
        if diff >= i64::MIN as i128 && diff <= i64::MAX as i128 {
            Some(Duration::from_nanos(diff as i64))
        } else {
            None
        }
    }

    /// Returns the larger of two instants.
    #[must_use]
    pub fn max(self, other: Instant) -> Instant {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two instants.
    #[must_use]
    pub fn min(self, other: Instant) -> Instant {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        self.checked_add(d)
            .expect("instant arithmetic out of range")
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, d: Duration) -> Instant {
        self.checked_add(-d)
            .expect("instant arithmetic out of range")
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, earlier: Instant) -> Duration {
        self.checked_duration_since(earlier)
            .expect("instant difference out of range")
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as seconds with nanosecond remainder for readability.
        let secs = self.0 / 1_000_000_000;
        let rem = self.0 % 1_000_000_000;
        if rem == 0 {
            write!(f, "{secs}.000000000s")
        } else {
            write!(f, "{secs}.{rem:09}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(Duration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Duration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Duration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Duration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(5);
        let b = Duration::from_millis(3);
        assert_eq!(a + b, Duration::from_millis(8));
        assert_eq!(a - b, Duration::from_millis(2));
        assert_eq!(b - a, Duration::from_millis(-2));
        assert_eq!(a * 4, Duration::from_millis(20));
        assert_eq!(a / 5, Duration::from_millis(1));
        assert_eq!(-a, Duration::from_millis(-5));
        assert!((b - a).is_negative());
        assert_eq!((b - a).abs(), Duration::from_millis(2));
    }

    #[test]
    fn duration_min_max() {
        let a = Duration::from_millis(5);
        let b = Duration::from_millis(3);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_display_picks_units() {
        assert_eq!(Duration::ZERO.to_string(), "0s");
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Duration::from_millis(5).to_string(), "5ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Duration::from_nanos(13).to_string(), "13ns");
        assert_eq!(Duration::from_millis(-5).to_string(), "-5ms");
        assert_eq!(Duration::from_nanos(1_500_000).to_string(), "1500us");
    }

    #[test]
    fn duration_checked_ops_detect_overflow() {
        assert!(Duration::MAX.checked_add(Duration::from_nanos(1)).is_none());
        assert!(Duration::MIN.checked_sub(Duration::from_nanos(1)).is_none());
        assert_eq!(
            Duration::MAX.saturating_add(Duration::from_secs(1)),
            Duration::MAX
        );
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant::from_millis(100);
        assert_eq!(t + Duration::from_millis(50), Instant::from_millis(150));
        assert_eq!(t - Duration::from_millis(50), Instant::from_millis(50));
        assert_eq!(Instant::from_millis(150) - t, Duration::from_millis(50));
        assert_eq!(t + Duration::from_millis(-50), Instant::from_millis(50));
    }

    #[test]
    fn instant_saturates_at_epoch() {
        let t = Instant::from_nanos(5);
        assert_eq!(t.saturating_add(Duration::from_nanos(-10)), Instant::EPOCH);
        assert_eq!(t.checked_add(Duration::from_nanos(-10)), None);
    }

    #[test]
    fn instant_display() {
        assert_eq!(Instant::from_secs(2).to_string(), "2.000000000s");
        assert_eq!(
            Instant::from_nanos(1_000_000_001).to_string(),
            "1.000000001s"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instant_underflow_panics() {
        let _ = Instant::EPOCH - Duration::from_nanos(1);
    }

    proptest! {
        #[test]
        fn prop_duration_add_commutative(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let (da, db) = (Duration::from_nanos(a), Duration::from_nanos(b));
            prop_assert_eq!(da + db, db + da);
        }

        #[test]
        fn prop_duration_add_assoc(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000, c in -1_000_000i64..1_000_000) {
            let (da, db, dc) = (Duration::from_nanos(a), Duration::from_nanos(b), Duration::from_nanos(c));
            prop_assert_eq!((da + db) + dc, da + (db + dc));
        }

        #[test]
        fn prop_instant_roundtrip(base in 0u64..1 << 60, delta in 0i64..1 << 40) {
            let t = Instant::from_nanos(base);
            let d = Duration::from_nanos(delta);
            prop_assert_eq!((t + d) - d, t);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn prop_ordering_translation_invariant(a in 0u64..1 << 50, b in 0u64..1 << 50, shift in 0i64..1 << 40) {
            let (ta, tb) = (Instant::from_nanos(a), Instant::from_nanos(b));
            let d = Duration::from_nanos(shift);
            prop_assert_eq!(ta.cmp(&tb), (ta + d).cmp(&(tb + d)));
        }
    }
}
