//! The LBTS solver: the Chandy–Misra-style fixpoint shared by every
//! coordination level.
//!
//! PR 2's flat [`Rti`](crate::Rti) computed LBTS inline over its federate
//! table. The hierarchical coordinator runs the **same** computation at
//! two levels — each zone solves over its members (plus proxies standing
//! in for upstream zones), the root solves over zone summaries — so the
//! fixpoint lives here, behind a small graph abstraction, and a flat
//! federation is simply the one-zone special case.
//!
//! A node's **floor** (the earliest tag it may still process or send at)
//! is `max(succ(completed), min(head, arrival_floor))`, where the arrival
//! floor is the node's own LBTS (plus, for nodes with physical inputs
//! from outside the federation, the reported fence). Floors propagate
//! along edges shifted by the edge delay until stable; values start at
//! [`TAG_MAX`] and only decrease, and simple paths bound the result, so
//! `n` rounds suffice.

use dear_core::Tag;
use dear_time::{Duration, Instant};

/// The greatest representable tag, used as the "no constraint" sentinel.
/// Round-trips through the wire encoding as `dear_someip::TAG_NEVER`.
pub const TAG_MAX: Tag = Tag::new(Instant::MAX, u32::MAX);

/// The strict successor of a tag (saturating at [`TAG_MAX`]).
#[must_use]
pub fn tag_succ(tag: Tag) -> Tag {
    if tag >= TAG_MAX {
        TAG_MAX
    } else {
        tag.delay(Duration::ZERO)
    }
}

/// The earliest tag a message processed at `tag` can carry after an edge
/// with minimum delay `delay` (a DEAR edge preserves the microstep and
/// adds `D + L + E` to the time point; a zero-delay edge is the identity).
#[must_use]
pub fn edge_add(tag: Tag, delay: Duration) -> Tag {
    if delay.is_zero() || tag >= TAG_MAX {
        tag
    } else {
        Tag::new(tag.time.saturating_add(delay), tag.microstep)
    }
}

/// The earliest tag on the periodic lattice `g` **strictly after**
/// `completed`: the next whole multiple of `g` at microstep zero. A node
/// whose every local event source is a static timer with offsets and
/// periods that are multiples of `g` cannot originate events off this
/// lattice, so its stale head (≤ `completed`) may be leapt forward to it
/// wholesale instead of one microstep at a time.
#[must_use]
pub fn lattice_next(completed: Tag, g: Duration) -> Tag {
    let g_ns = g.as_nanos();
    if g_ns <= 0 || completed >= TAG_MAX {
        return tag_succ(completed);
    }
    let g_ns = g_ns.unsigned_abs();
    let now_ns = completed.time.as_nanos();
    // Next strict multiple of g: completing exactly on a lattice point
    // still advances a full period (the event at that point is done).
    // Overflow *or* landing exactly on `Instant::MAX` both clamp to the
    // sentinel: a tag with time `u64::MAX` but microstep zero would sit
    // between every real tag and [`TAG_MAX`], in wire-sentinel territory
    // (`dear_someip::TAG_NEVER` reserves that time point).
    match now_ns.checked_add(g_ns - now_ns % g_ns) {
        Some(next) if next < Instant::MAX.as_nanos() => Tag::at(Instant::from_nanos(next)),
        _ => TAG_MAX,
    }
}

/// The floor-relevant state of one node, as seen by the solver. A node is
/// a federate at zone level and a whole zone at root level.
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// The node no longer constrains anyone (resigned or declared dead):
    /// its floor is [`TAG_MAX`].
    pub released: bool,
    /// Whether the node takes physical inputs from outside the
    /// federation; such nodes bound future tags by the reported fence.
    pub external: bool,
    /// Last completed tag, if any (LTC high-water mark).
    pub completed: Option<Tag>,
    /// Earliest pending event tag ([`TAG_MAX`] when idle; the origin
    /// means "unknown, assume anything").
    pub head: Tag,
    /// Physical-time fence (meaningful only when `external`).
    pub fence: Tag,
    /// The node's declared **periodic event lattice**, if any: every
    /// locally originated event lands on a whole multiple of this
    /// duration at microstep zero. Lets [`node_floor`] leap a stale head
    /// (≤ `completed`) to [`lattice_next`] instead of waiting for the
    /// next NET — the periodic fast path of the control-plane diet.
    pub period: Option<Duration>,
}

/// A coordination graph the solver can run over: indexed nodes plus
/// per-node upstream edge lists `(upstream index, minimum tag delay)`.
pub trait LbtsGraph {
    /// Number of nodes.
    fn len(&self) -> usize;
    /// Whether the graph has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The floor-relevant state of node `i`.
    fn node(&self, i: usize) -> NodeView;
    /// Incoming edges of node `i`.
    fn upstream(&self, i: usize) -> &[(u16, Duration)];
}

/// The non-transitive part of a node's floor: what its own reports
/// promise about its future processing, with `arrival` (the transitive
/// bound on its future message arrivals) plugged in.
#[must_use]
pub fn node_floor(view: &NodeView, arrival: Tag) -> Tag {
    if view.released {
        return TAG_MAX;
    }
    let arrival_floor = if view.external {
        arrival.min(view.fence)
    } else {
        arrival
    };
    // Periodic fast path: a lattice-declared node whose reported head is
    // stale (already completed past it) cannot originate anything before
    // the next lattice point, so the solver refreshes the head itself
    // instead of stalling until the node's next NET arrives.
    let head = match (view.period, view.completed) {
        (Some(g), Some(c)) if view.head <= c => lattice_next(c, g),
        _ => view.head,
    };
    let reported = head.min(arrival_floor);
    view.completed
        .map_or(reported, |c| tag_succ(c).max(reported))
}

/// The reusable LBTS fixpoint. Owns its scratch buffer so repeated
/// recomputes on a steady topology allocate nothing.
#[derive(Debug, Default)]
pub struct LbtsSolver {
    lbts: Vec<Tag>,
}

impl LbtsSolver {
    /// Creates a solver with an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        LbtsSolver::default()
    }

    /// Runs the fixpoint: `lbts[f] = min` over upstream edges `(u, d)` of
    /// `edge_add(floor(u), d)`, where `floor(u)` itself uses `lbts[u]`.
    /// Nodes without upstream edges keep the unconstrained [`TAG_MAX`].
    /// Returns the per-node LBTS slice (valid until the next call).
    pub fn solve(&mut self, graph: &impl LbtsGraph) -> &[Tag] {
        let n = graph.len();
        self.lbts.clear();
        self.lbts.resize(n, TAG_MAX);
        for _ in 0..=n {
            let mut changed = false;
            for f in 0..n {
                if graph.upstream(f).is_empty() {
                    continue;
                }
                let mut new = TAG_MAX;
                for &(u, d) in graph.upstream(f) {
                    let u = usize::from(u);
                    let uf = node_floor(&graph.node(u), self.lbts[u]);
                    new = new.min(edge_add(uf, d));
                }
                if new != self.lbts[f] {
                    self.lbts[f] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        &self.lbts
    }

    /// The LBTS values of the latest [`LbtsSolver::solve`] call.
    #[must_use]
    pub fn lbts(&self) -> &[Tag] {
        &self.lbts
    }

    /// The floor of node `i` under the latest solve.
    #[must_use]
    pub fn floor(&self, graph: &impl LbtsGraph, i: usize) -> Tag {
        node_floor(&graph.node(i), self.lbts[i])
    }

    /// Picks the provisional-grant candidate that breaks a zero-delay
    /// stall, if any. A node whose own pending head *equals* its LBTS can
    /// never be released by a strict bound; if every binding upstream
    /// edge is zero-delay and stuck at or beyond the same tag, processing
    /// exactly the head is safe, so it may be granted provisionally. One
    /// grant per round keeps ties deterministic (minimal `(tag, index)`
    /// wins); the resulting LTC advances the rest.
    ///
    /// `eligible` supplies the caller-side conditions the solver cannot
    /// see (connected, not already granted this head, ...).
    #[must_use]
    pub fn ptag_candidate(
        &self,
        graph: &impl LbtsGraph,
        eligible: impl Fn(usize) -> bool,
    ) -> Option<(Tag, usize)> {
        let mut candidate: Option<(Tag, usize)> = None;
        for f in 0..graph.len() {
            let view = graph.node(f);
            if view.released
                || graph.upstream(f).is_empty()
                || view.head >= TAG_MAX
                || view.head != self.lbts[f]
                || !eligible(f)
            {
                continue;
            }
            let justified = graph.upstream(f).iter().all(|&(u, d)| {
                let u = usize::from(u);
                let up = graph.node(u);
                let uf = node_floor(&up, self.lbts[u]);
                edge_add(uf, d) > view.head || (d.is_zero() && up.head >= view.head)
            });
            if justified && candidate.is_none_or(|(t, i)| (view.head, f) < (t, i)) {
                candidate = Some((view.head, f));
            }
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestGraph {
        nodes: Vec<NodeView>,
        edges: Vec<Vec<(u16, Duration)>>,
    }

    impl LbtsGraph for TestGraph {
        fn len(&self) -> usize {
            self.nodes.len()
        }
        fn node(&self, i: usize) -> NodeView {
            self.nodes[i]
        }
        fn upstream(&self, i: usize) -> &[(u16, Duration)] {
            &self.edges[i]
        }
    }

    fn node(head_ms: u64) -> NodeView {
        NodeView {
            released: false,
            external: false,
            completed: None,
            head: Tag::at(Instant::from_millis(head_ms)),
            fence: Tag::ORIGIN,
            period: None,
        }
    }

    #[test]
    fn chain_propagates_shifted_floors() {
        // 0 --1ms--> 1 --1ms--> 2; node 0 pending at 10ms, the others
        // later, so the chain's floors are arrival-bounded.
        let mut g = TestGraph {
            nodes: vec![node(10), node(30), node(50)],
            edges: vec![
                vec![],
                vec![(0, Duration::from_millis(1))],
                vec![(1, Duration::from_millis(1))],
            ],
        };
        let mut solver = LbtsSolver::new();
        let lbts = solver.solve(&g);
        assert_eq!(lbts[0], TAG_MAX);
        assert_eq!(lbts[1], Tag::at(Instant::from_millis(11)));
        assert_eq!(lbts[2], Tag::at(Instant::from_millis(12)));

        // Node 0 completes 10ms: its floor rises past the head.
        g.nodes[0].completed = Some(Tag::at(Instant::from_millis(10)));
        g.nodes[0].head = TAG_MAX;
        let lbts = solver.solve(&g);
        assert!(lbts[1] > Tag::at(Instant::from_millis(10)));
    }

    #[test]
    fn released_nodes_stop_constraining() {
        let mut g = TestGraph {
            nodes: vec![node(10), node(10)],
            edges: vec![vec![], vec![(0, Duration::from_millis(1))]],
        };
        g.nodes[0].released = true;
        let mut solver = LbtsSolver::new();
        let lbts = solver.solve(&g);
        assert_eq!(lbts[1], TAG_MAX);
    }

    #[test]
    fn external_fence_bounds_the_floor() {
        let mut g = TestGraph {
            nodes: vec![node(10), node(10)],
            edges: vec![vec![], vec![(0, Duration::from_millis(1))]],
        };
        g.nodes[0].external = true;
        g.nodes[0].head = TAG_MAX; // idle...
        g.nodes[0].fence = Tag::at(Instant::from_millis(3)); // ...but fenced at 3ms
        let mut solver = LbtsSolver::new();
        let lbts = solver.solve(&g);
        assert_eq!(lbts[1], Tag::at(Instant::from_millis(4)));
    }

    #[test]
    fn zero_delay_cycle_needs_a_ptag() {
        // 0 <--0--> 1, both pending at the same tag: no strict bound can
        // advance, but the provisional candidate is justified.
        let g = TestGraph {
            nodes: vec![node(5), node(5)],
            edges: vec![vec![(1, Duration::ZERO)], vec![(0, Duration::ZERO)]],
        };
        let mut solver = LbtsSolver::new();
        let lbts = solver.solve(&g).to_vec();
        assert_eq!(lbts[0], Tag::at(Instant::from_millis(5)));
        let cand = solver.ptag_candidate(&g, |_| true);
        // Deterministic tie-break: minimal (tag, index).
        assert_eq!(cand, Some((Tag::at(Instant::from_millis(5)), 0)));
        // Caller-side eligibility is honoured.
        assert_eq!(
            solver.ptag_candidate(&g, |f| f != 0),
            Some((Tag::at(Instant::from_millis(5)), 1))
        );
    }

    #[test]
    fn lattice_next_leaps_to_the_next_strict_multiple() {
        let g = Duration::from_millis(10);
        // Mid-period completion snaps up to the next lattice point.
        assert_eq!(
            lattice_next(Tag::at(Instant::from_millis(13)), g),
            Tag::at(Instant::from_millis(20))
        );
        // Completing exactly on a point still advances a full period.
        assert_eq!(
            lattice_next(Tag::at(Instant::from_millis(20)), g),
            Tag::at(Instant::from_millis(30))
        );
        // Microsteps collapse: the next lattice tag is at microstep zero.
        assert_eq!(
            lattice_next(Tag::new(Instant::from_millis(20), 3), g),
            Tag::at(Instant::from_millis(30))
        );
        // Degenerate lattice falls back to the plain successor.
        assert_eq!(
            lattice_next(Tag::at(Instant::from_millis(7)), Duration::ZERO),
            tag_succ(Tag::at(Instant::from_millis(7)))
        );
        assert_eq!(lattice_next(TAG_MAX, g), TAG_MAX);
    }

    #[test]
    fn lattice_next_clamps_at_the_sentinel_boundary() {
        let g = Duration::from_nanos(1 << 30);
        // A completion whose next lattice point would overflow u64 nanos
        // clamps to the sentinel instead of wrapping.
        let near_max = Tag::at(Instant::from_nanos(u64::MAX - 1));
        assert_eq!(lattice_next(near_max, g), TAG_MAX);
        // A next point that lands *exactly* on `Instant::MAX` is also the
        // sentinel: `(u64::MAX, 0)` would be a tag below `TAG_MAX` but in
        // TAG_NEVER's reserved time point. 5 divides `u64::MAX`, so the
        // lattice point after `u64::MAX - 5` is exactly `u64::MAX`.
        let g2 = Duration::from_nanos(5);
        let completed = Tag::at(Instant::from_nanos(u64::MAX - 5));
        assert_eq!(lattice_next(completed, g2), TAG_MAX);
        // Just below the boundary the arithmetic is untouched.
        let safe = Tag::at(Instant::from_nanos((1 << 30) + 5));
        assert_eq!(lattice_next(safe, g), Tag::at(Instant::from_nanos(2 << 30)));
    }

    #[test]
    fn periodic_lattice_refreshes_a_stale_head() {
        // Node 0 completed 20ms but its reported head is stale at 10ms.
        // Without a lattice the floor only clears succ(completed); with a
        // declared 10ms lattice the solver leaps the head to 30ms itself.
        let mut g = TestGraph {
            nodes: vec![node(10), node(50)],
            edges: vec![vec![], vec![(0, Duration::from_millis(1))]],
        };
        g.nodes[0].completed = Some(Tag::at(Instant::from_millis(20)));
        let mut solver = LbtsSolver::new();
        let lbts = solver.solve(&g).to_vec();
        assert_eq!(lbts[1], Tag::new(Instant::from_millis(21), 1));

        g.nodes[0].period = Some(Duration::from_millis(10));
        let lbts = solver.solve(&g).to_vec();
        assert_eq!(lbts[1], Tag::at(Instant::from_millis(31)));

        // A genuinely fresh head (beyond completed) is never overridden:
        // the node may know about an aperiodic message arrival.
        g.nodes[0].head = Tag::at(Instant::from_millis(25));
        let lbts = solver.solve(&g).to_vec();
        assert_eq!(lbts[1], Tag::at(Instant::from_millis(26)));
    }

    #[test]
    fn solver_reuses_its_scratch_buffer() {
        let g = TestGraph {
            nodes: vec![node(1), node(2)],
            edges: vec![vec![], vec![(0, Duration::from_millis(1))]],
        };
        let mut solver = LbtsSolver::new();
        let first = solver.solve(&g).as_ptr();
        for _ in 0..10 {
            let again = solver.solve(&g).as_ptr();
            assert_eq!(first, again, "steady-state solves must not reallocate");
        }
    }
}
