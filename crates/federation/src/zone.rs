//! Zone coordinators: the lower tier of the hierarchical RTI.
//!
//! A zone owns the NET/LTC/fence state of its local federates and runs
//! the *same* [`LbtsSolver`](crate::LbtsSolver) the flat RTI runs — over
//! its members plus one **proxy** node per upstream zone. A proxy stands
//! in for everything beyond the zone boundary: its `head` is the floor
//! most recently relayed by the root for that upstream zone, so from the
//! solver's point of view a remote zone is just one more (never-granted)
//! federate.
//!
//! Coordination traffic is batched on every hop that can carry more than
//! one record (see `dear_someip::CoordBatch`):
//!
//! * member grants fan out as **one** frame per recompute on the zone's
//!   shared member eventgroup (refcounted zero-copy fan-out; members
//!   filter by federate id);
//! * the zone's state rolls **up** to the root as one `Floor` record —
//!   the per-zone floor, `min` over member floors — and only when it
//!   changed;
//! * the root's relayed upstream-zone floors fan **down** as one frame
//!   per zone.
//!
//! Liveness is scoped per shard: the zone watches its own members (a
//! silent member is declared dead and the zone floor rises past it), and
//! the root watches whole zones via the uplink heartbeat.

use crate::rti::{solve_grants, FederateEntry, FederationError, RtiStats, MAX_FEDERATES};
use crate::solver::{node_floor, LbtsSolver, TAG_MAX};
use dear_core::Tag;
use dear_sim::{NetworkHandle, NodeId, Simulation};
use dear_someip::{
    Binding, CoordBatch, CoordKind, CoordMsg, SdRegistry, ServiceInstance, COORD_BATCH_MARKER,
    COORD_EVENT, COORD_METHOD, COORD_SERVICE,
};
use dear_time::Duration;
use dear_transactors::tag_to_wire;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Identifies one zone within a hierarchical federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u16);

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone{}", self.0)
    }
}

/// The SOME/IP instance on which the **root** coordinator offers the
/// coordination service (zones roll floors up to it).
pub const COORD_ROOT_INSTANCE: u16 = 0x00FE;

/// First SOME/IP instance used by zone coordinators: zone `z` offers the
/// coordination service at `ZONE_INSTANCE_BASE + z`.
pub const ZONE_INSTANCE_BASE: u16 = 0x0100;

/// Eventgroup (on the zone's instance) carrying batched member grants.
/// Shared by all members of the zone: the batch fans out once and every
/// member filters it by federate id.
pub const ZONE_MEMBER_EVENTGROUP: u16 = 0x3F00;

/// First eventgroup (on the root's instance) carrying relayed floors:
/// zone `z` subscribes to `ZONE_UPLINK_EVENTGROUP_BASE + z`.
pub const ZONE_UPLINK_EVENTGROUP_BASE: u16 = 0x2000;

/// The most zones one hierarchy can hold (bounded by the instance and
/// eventgroup ranges carved out above).
pub const MAX_ZONES: usize = 0x1000;

/// The SOME/IP instance on which zone `zone` offers the coordination
/// service to its members.
#[must_use]
pub fn zone_instance(zone: ZoneId) -> u16 {
    ZONE_INSTANCE_BASE + zone.0
}

/// The eventgroup (on [`COORD_ROOT_INSTANCE`]) over which the root
/// relays upstream-zone floors to `zone`.
#[must_use]
pub fn zone_uplink_eventgroup(zone: ZoneId) -> u16 {
    ZONE_UPLINK_EVENTGROUP_BASE + zone.0
}

struct ZoneInner {
    zone: ZoneId,
    binding: Binding,
    /// Members first (graph index = registration order), proxies after.
    /// Proxies are plain entries that never connect, so the shared grant
    /// passes skip them by construction.
    table: Vec<FederateEntry>,
    member_count: usize,
    /// Graph index → global federate id, for members.
    member_ids: Vec<u16>,
    /// Global federate id → graph index.
    by_global: BTreeMap<u16, usize>,
    /// Upstream zone id → graph index of its proxy entry.
    proxy_index: BTreeMap<u16, usize>,
    solver: LbtsSolver,
    stats: RtiStats,
    liveness_deadline: Option<Duration>,
    /// Last floor rolled up to the root (roll-ups are change-driven,
    /// plus the unconditional uplink heartbeat).
    last_rollup: Option<Tag>,
    /// Control-plane diet, propagated from the hierarchy (see
    /// [`HierarchicalRti::enable_control_diet`](crate::HierarchicalRti::enable_control_diet)).
    diet: bool,
    /// Another zone imports from this one. The zone floor is the `min`
    /// over **all** member floors, so once it is consumed elsewhere no
    /// member may be DNET-classified as a sink — a silent member would
    /// hold the floor down and wedge the importing zone.
    exported: bool,
}

/// One zone coordinator (internal: constructed through
/// [`HierarchicalRti::add_zone`](crate::HierarchicalRti::add_zone)).
#[derive(Clone)]
pub(crate) struct ZoneCoordinator(Rc<RefCell<ZoneInner>>);

impl ZoneCoordinator {
    pub(crate) fn new(
        sim: &mut Simulation,
        net: &NetworkHandle,
        sd: &SdRegistry,
        node: NodeId,
        zone: ZoneId,
    ) -> Self {
        sim.observe()
            .set_lane_name(dear_observe::Lane::Zone(zone.0), &zone.to_string());
        let binding = Binding::new(net, sd, node, 0x0060_u16.wrapping_add(zone.0));
        let instance = zone_instance(zone);
        binding.offer(
            sim,
            ServiceInstance::new(COORD_SERVICE, instance),
            Duration::from_secs(1 << 30),
        );
        // Relayed floors from the root arrive on the zone's uplink
        // eventgroup.
        binding.subscribe(
            ServiceInstance::new(COORD_SERVICE, COORD_ROOT_INSTANCE),
            zone_uplink_eventgroup(zone),
        );
        let coordinator = ZoneCoordinator(Rc::new(RefCell::new(ZoneInner {
            zone,
            binding: binding.clone(),
            table: Vec::new(),
            member_count: 0,
            member_ids: Vec::new(),
            by_global: BTreeMap::new(),
            proxy_index: BTreeMap::new(),
            solver: LbtsSolver::new(),
            stats: RtiStats::default(),
            liveness_deadline: None,
            last_rollup: None,
            diet: false,
            exported: false,
        })));
        let hook = coordinator.clone();
        binding.register_method(COORD_SERVICE, COORD_METHOD, move |sim, req, _responder| {
            hook.on_member_frame(sim, &req.payload);
        });
        let hook = coordinator.clone();
        binding.on_event(COORD_SERVICE, COORD_EVENT, move |sim, msg| {
            hook.on_root_frame(sim, &msg.payload);
        });
        coordinator
    }

    /// Registers a member (called by the hierarchy with the global
    /// federate id it allocated). Returns the member's graph index.
    pub(crate) fn register_member(
        &self,
        global: u16,
        name: &str,
        node: NodeId,
        external: bool,
    ) -> Result<usize, FederationError> {
        let mut inner = self.0.borrow_mut();
        if inner.member_count >= MAX_FEDERATES {
            return Err(FederationError::Full {
                limit: MAX_FEDERATES,
            });
        }
        // Members precede proxies in the graph index space; inserting a
        // member after proxies exist shifts every proxy index up by one.
        let index = inner.member_count;
        if index < inner.table.len() {
            for entry in &mut inner.table {
                for edge in &mut entry.upstream {
                    if usize::from(edge.0) >= index {
                        edge.0 += 1;
                    }
                }
            }
            for proxy in inner.proxy_index.values_mut() {
                *proxy += 1;
            }
        }
        let mut entry = FederateEntry::new(name, node, external);
        // An exported zone's floor is consumed elsewhere: every member's
        // reports move it, so none may be suppressed as a sink.
        entry.remote_downstream = inner.exported;
        inner.table.insert(index, entry);
        inner.member_count += 1;
        inner.member_ids.insert(index, global);
        inner.by_global.insert(global, index);
        inner.stats.federates += 1;
        Ok(index)
    }

    /// Declares an intra-zone edge between member graph indices.
    pub(crate) fn connect_local(&self, upstream: usize, downstream: usize, min_delay: Duration) {
        let mut inner = self.0.borrow_mut();
        inner.table[downstream]
            .upstream
            .push((upstream as u16, min_delay));
        inner.table[upstream].has_downstream = true;
    }

    /// Marks this zone as exported (another zone imports from it): every
    /// current and future member's reports feed the rolled-up zone floor
    /// consumed elsewhere, so DNET sink detection is disabled for all of
    /// them — a cross-zone producer, or any member dragging the shared
    /// floor, must keep reporting.
    pub(crate) fn mark_exported(&self) {
        let mut inner = self.0.borrow_mut();
        inner.exported = true;
        let members = inner.member_count;
        for entry in inner.table.iter_mut().take(members) {
            entry.remote_downstream = true;
        }
    }

    /// Propagates the hierarchy-wide control-plane diet switch.
    pub(crate) fn set_control_diet(&self, diet: bool) {
        self.0.borrow_mut().diet = diet;
    }

    /// Declares an edge from a remote zone into local member `downstream`,
    /// materializing the proxy entry for that zone on first use.
    pub(crate) fn connect_from_zone(
        &self,
        upstream_zone: ZoneId,
        downstream: usize,
        min_delay: Duration,
    ) {
        let mut inner = self.0.borrow_mut();
        let proxy = match inner.proxy_index.get(&upstream_zone.0) {
            Some(&p) => p,
            None => {
                let p = inner.table.len();
                let mut entry = FederateEntry::new(
                    &format!("proxy:{upstream_zone}"),
                    inner.binding.node(),
                    false,
                );
                // A proxy's head is the floor the root most recently
                // relayed for that zone; origin until the first relay
                // ("unknown, assume anything"), exactly like a federate
                // that has not reported yet.
                entry.head = Tag::ORIGIN;
                inner.table.push(entry);
                inner.proxy_index.insert(upstream_zone.0, p);
                p
            }
        };
        inner.table[downstream]
            .upstream
            .push((proxy as u16, min_delay));
    }

    pub(crate) fn member_name(&self, index: usize) -> String {
        self.0.borrow().table[index].name.clone()
    }

    pub(crate) fn stats(&self) -> RtiStats {
        self.0.borrow().stats
    }

    /// Enables the per-member liveness watchdog (see
    /// [`Rti::enable_liveness`](crate::Rti::enable_liveness) — identical
    /// semantics, scoped to this shard).
    pub(crate) fn enable_member_liveness(&self, deadline: Duration) {
        assert!(deadline > Duration::ZERO, "deadline must be positive");
        self.0.borrow_mut().liveness_deadline = Some(deadline);
    }

    /// Starts the unconditional uplink heartbeat: every `interval` the
    /// zone re-sends its current floor to the root, change or not. This
    /// is what the root's zone watchdog listens for.
    pub(crate) fn enable_uplink_heartbeat(&self, sim: &mut Simulation, interval: Duration) {
        assert!(interval > Duration::ZERO, "interval must be positive");
        let zone = self.clone();
        sim.schedule_in(interval, move |sim| zone.heartbeat_tick(sim, interval));
    }

    fn heartbeat_tick(&self, sim: &mut Simulation, interval: Duration) {
        let floor = self.0.borrow().last_rollup;
        if let Some(floor) = floor {
            self.send_rollup(sim, floor, false);
        }
        let zone = self.clone();
        sim.schedule_in(interval, move |sim| zone.heartbeat_tick(sim, interval));
    }

    /// Handles one control frame from a member: a single record or a
    /// batch (LTC + NET packed by the platform). The zone recomputes
    /// once per *frame*, which is exactly the batching win — N records
    /// no longer trigger N fixpoints and N grant fan-outs.
    fn on_member_frame(&self, sim: &mut Simulation, payload: &[u8]) {
        let mut touched: Vec<usize> = Vec::new();
        {
            let mut inner = self.0.borrow_mut();
            let ZoneInner {
                table,
                by_global,
                stats,
                ..
            } = &mut *inner;
            let mut apply = |msg: &CoordMsg, touched: &mut Vec<usize>| {
                let Some(&index) = by_global.get(&msg.federate) else {
                    return;
                };
                if table[index].apply_control(msg, stats) && !touched.contains(&index) {
                    touched.push(index);
                }
            };
            if payload.first() == Some(&COORD_BATCH_MARKER) {
                let Ok(batch) = CoordBatch::decode(payload) else {
                    return;
                };
                for msg in batch.iter() {
                    apply(&msg, &mut touched);
                }
            } else if let Ok(msg) = CoordMsg::decode(payload) {
                apply(&msg, &mut touched);
            }
        }
        if touched.is_empty() {
            return;
        }
        for index in touched {
            self.arm_liveness(sim, index);
        }
        self.recompute(sim);
    }

    /// Handles a relayed-floor frame from the root: each `Floor` record
    /// names an upstream zone and raises its proxy's head, and each
    /// `Rejoin` record carries the one legitimate *retreat* — an upstream
    /// zone's floor fell back because a crashed member replayed its
    /// durable log and rejoined below the bound its death had released.
    fn on_root_frame(&self, sim: &mut Simulation, payload: &[u8]) {
        let changed = {
            let mut inner = self.0.borrow_mut();
            let mut changed = false;
            let apply = |inner: &mut ZoneInner, msg: &CoordMsg| {
                let retreat = msg.kind == CoordKind::Rejoin;
                if msg.kind != CoordKind::Floor && !retreat {
                    return false;
                }
                let Some(&proxy) = inner.proxy_index.get(&msg.federate) else {
                    return false;
                };
                let relayed = dear_transactors::wire_to_tag(msg.tag);
                let head = inner.table[proxy].head;
                if relayed > head || (retreat && relayed < head) {
                    inner.table[proxy].head = relayed;
                    inner.stats.floor_records += 1;
                    true
                } else {
                    false
                }
            };
            if payload.first() == Some(&COORD_BATCH_MARKER) {
                if let Ok(batch) = CoordBatch::decode(payload) {
                    for msg in batch.iter() {
                        changed |= apply(&mut inner, &msg);
                    }
                }
            } else if let Ok(msg) = CoordMsg::decode(payload) {
                changed = apply(&mut inner, &msg);
            }
            changed
        };
        if changed {
            self.recompute(sim);
        }
    }

    fn arm_liveness(&self, sim: &mut Simulation, index: usize) {
        let armed = {
            let inner = self.0.borrow();
            inner.liveness_deadline.and_then(|deadline| {
                inner
                    .table
                    .get(index)
                    .filter(|e| e.connected && !e.released())
                    .map(|e| (deadline, e.liveness_gen))
            })
        };
        let Some((deadline, generation)) = armed else {
            return;
        };
        let zone = self.clone();
        sim.schedule_in(deadline, move |sim| {
            zone.on_liveness_check(sim, index, generation);
        });
    }

    fn on_liveness_check(&self, sim: &mut Simulation, index: usize, generation: u64) {
        let traced = {
            let mut inner = self.0.borrow_mut();
            let Some(entry) = inner.table.get_mut(index) else {
                return;
            };
            if entry.liveness_gen != generation || entry.released() {
                return; // superseded, or no longer eligible
            }
            entry.dead = true;
            inner.stats.deaths += 1;
            let global = inner.member_ids[index];
            let zone = inner.zone;
            let name = inner.table[index].name.clone();
            (zone, global, name)
        };
        let (zone, global, name) = traced;
        sim.trace_with("rti", || {
            format!("{zone}: federate fed{global} ({name}) declared dead; releasing its LBTS bound")
        });
        self.recompute(sim);
    }

    /// Recomputes the zone-local LBTS, fans grants out as one batched
    /// frame, and rolls the zone floor up to the root when it changed.
    fn recompute(&self, sim: &mut Simulation) {
        let (grants, rollup, binding, instance) = {
            let mut inner = self.0.borrow_mut();
            let ZoneInner {
                table,
                member_count,
                member_ids,
                solver,
                stats,
                last_rollup,
                diet,
                ..
            } = &mut *inner;
            let grantable = *member_count;
            let grants = solve_grants(solver, table, stats, grantable, *diet);
            // The zone floor: what this zone as a whole promises the rest
            // of the federation. `min` over member floors; proxies are
            // the other zones' business.
            let mut floor = TAG_MAX;
            for (i, entry) in table.iter().enumerate().take(grantable) {
                floor = floor.min(node_floor(&entry.view(), solver.lbts()[i]));
            }
            // Roll-ups are change-driven in *both* directions: a floor
            // that fell back below the last roll-up means a dead member
            // rejoined, and must travel as a `Rejoin`-kind record so the
            // root applies the retreat its monotone `Floor` path rejects.
            let rollup = if grantable > 0 && *last_rollup != Some(floor) {
                let retreat = last_rollup.is_some_and(|prev| floor < prev);
                *last_rollup = Some(floor);
                Some((floor, retreat))
            } else {
                None
            };
            let grants: Vec<_> = grants
                .into_iter()
                .map(|(index, kind, tag, fence)| (member_ids[usize::from(index)], kind, tag, fence))
                .collect();
            (
                grants,
                rollup,
                inner.binding.clone(),
                zone_instance(inner.zone),
            )
        };
        let observe = sim.observe().clone();
        if observe.is_enabled() {
            let now = sim.now();
            let zone = self.0.borrow().zone;
            observe.count("coord/fixpoint/zone", 1);
            observe.record_value("coord/grants_per_round", grants.len() as u64);
            observe.instant(dear_observe::Lane::Zone(zone.0), "fixpoint", now);
            // The zone-level coordination lag: how far the floor this
            // round promised to the rest of the federation trails the
            // true time at which it was computed.
            if let Some((floor, _)) = rollup {
                if floor < crate::solver::TAG_MAX {
                    observe.record_duration("coord/zone_floor_lag_ns", now - floor.time);
                }
            }
        }

        if !grants.is_empty() {
            let mut batch = CoordBatch::pooled(&binding.pool());
            for (global, kind, tag, fence) in grants {
                batch.push(&CoordMsg {
                    kind,
                    federate: global,
                    tag: tag_to_wire(tag),
                    fence,
                });
            }
            observe.record_value("coord/batch_size", batch.len() as u64);
            binding.notify(
                sim,
                ServiceInstance::new(COORD_SERVICE, instance),
                ZONE_MEMBER_EVENTGROUP,
                COORD_EVENT,
                batch.freeze(),
            );
            self.0.borrow_mut().stats.batches_sent += 1;
        }
        if let Some((floor, retreat)) = rollup {
            self.send_rollup(sim, floor, retreat);
        }
    }

    /// Sends the zone floor to the root as a one-record batch frame. A
    /// `retreat` roll-up (floor below the previous one — a member
    /// rejoined) travels as a `Rejoin`-kind record, the only record the
    /// root applies non-monotonically.
    fn send_rollup(&self, sim: &mut Simulation, floor: Tag, retreat: bool) {
        let (binding, zone) = {
            let inner = self.0.borrow();
            (inner.binding.clone(), inner.zone)
        };
        let kind = if retreat {
            CoordKind::Rejoin
        } else {
            CoordKind::Floor
        };
        let mut batch = CoordBatch::pooled(&binding.pool());
        batch.push(&CoordMsg::new(kind, zone.0, tag_to_wire(floor)));
        if binding
            .call_no_return(
                sim,
                COORD_SERVICE,
                COORD_ROOT_INSTANCE,
                COORD_METHOD,
                batch.freeze(),
            )
            .is_ok()
        {
            let mut inner = self.0.borrow_mut();
            inner.stats.floor_records += 1;
            inner.stats.batches_sent += 1;
        }
    }
}
