//! The coordinated platform driver: `FederatedPlatform` semantics plus
//! RTI-granted tag advances.
//!
//! A [`CoordinatedPlatform`] gates tag processing on **both** conditions:
//!
//! 1. the platform's local physical clock has passed the tag (the same
//!    rule the decentralized driver enforces — this keeps deadline
//!    behaviour and therefore event traces bit-identical), and
//! 2. the tag lies strictly below the bound granted by the [`Rti`]
//!    (inclusively below for a provisional PTAG).
//!
//! After every processed tag the platform reports LTC, and whenever its
//! queue head or physical fence changes it reports NET; grants arrive as
//! coordination-service notifications and widen the runtime's tag bound.
//! All coordination counters land in the shared
//! [`TransactorStats`], so centralized and decentralized runs report
//! comparable numbers.

use crate::hierarchy::HierarchicalRti;
use crate::rti::{FederateId, FederationError, Rti};
use crate::solver::{tag_succ, TAG_MAX};
use crate::zone::{zone_instance, ZoneId, ZONE_MEMBER_EVENTGROUP};
use dear_core::{PhysicalAction, ReactionId, Runtime, RuntimeStats, StepOutcome, Tag};
use dear_durable::{EventLog, Record};
use dear_observe::{Lane, Observe};
use dear_sim::{LatencyModel, SimRng, Simulation, VirtualClock};
use dear_someip::{
    coord_eventgroup, Binding, CoordBatch, CoordKind, CoordMsg, ServiceInstance, WireTag,
    COORD_BATCH_MARKER, COORD_EVENT, COORD_INSTANCE, COORD_METHOD, COORD_SERVICE, DNET_SINK,
    TAG_NEVER,
};
use dear_time::Instant;
use dear_transactors::{
    tag_to_wire, wire_to_tag, OutboundMsg, Outbox, PlatformDriver, TransactorStats,
};
use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

type RouteHandler = Rc<dyn Fn(&mut Simulation, OutboundMsg)>;

type EncodeFn = Rc<dyn Fn(&dyn Any) -> Option<Vec<u8>>>;
type ReplayFn = Rc<dyn Fn(&mut Runtime, Tag, &[u8]) -> bool>;

/// Per-action serialization pair for durable input logging: `encode`
/// turns a live payload into log bytes at injection time, `replay`
/// rebuilds and re-schedules it from those bytes during recovery.
struct InputCodec {
    encode: EncodeFn,
    replay: ReplayFn,
}

/// How many processed tags elapse between durable-log checkpoints by
/// default. Each checkpoint rotates the log segment, so this bounds both
/// replay length and segment size.
const DEFAULT_SNAPSHOT_EVERY: u64 = 32;

/// The outcome of one [`CoordinatedPlatform::recover`] call: where the
/// incarnation died, what replay rebuilt, and what went back on the wire.
#[derive(Clone, Debug)]
pub struct PlatformRecovery {
    /// True time at which [`CoordinatedPlatform::crash`] took the
    /// federate down.
    pub crashed_at: Instant,
    /// True time at which the `Rejoin` frame went out and the platform
    /// resumed live operation.
    pub rejoined_at: Instant,
    /// Logged tags re-processed from the log.
    pub replayed_tags: u64,
    /// Logged physical-action payloads re-scheduled from the log.
    pub replayed_inputs: u64,
    /// Outbound messages swallowed during replay because the previous
    /// incarnation had already drained them to the wire.
    pub suppressed_sends: u64,
    /// Outbound messages the previous incarnation produced but never
    /// drained, re-sent after replay completed.
    pub resent_sends: u64,
    /// Greatest tag the replay re-processed (`None`: crashed before
    /// completing any tag).
    pub last_processed: Option<Tag>,
    /// Granted bound restored from the log's high-water mark.
    pub restored_bound: Option<Tag>,
    /// The new incarnation number carried by the `Rejoin` frame.
    pub incarnation: u32,
    /// Replay steps whose outcome disagreed with the log (0 on any
    /// healthy recovery — nonzero means the log and program diverged).
    pub replay_mismatches: u64,
}

impl fmt::Display for PlatformRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejoin #{}: replayed {} tags / {} inputs, suppressed {} resent {} sends, outage {}ns",
            self.incarnation,
            self.replayed_tags,
            self.replayed_inputs,
            self.suppressed_sends,
            self.resent_sends,
            (self.rejoined_at - self.crashed_at).as_nanos(),
        )
    }
}

struct PlatformInner {
    name: String,
    runtime: Runtime,
    clock: VirtualClock,
    outbox: Outbox,
    routes: BTreeMap<u32, RouteHandler>,
    costs: BTreeMap<ReactionId, LatencyModel>,
    cost_rng: SimRng,
    busy_until: Instant,
    generation: u64,
    started: bool,
    resigned: bool,
    federate: FederateId,
    binding: Binding,
    /// SOME/IP instance of the coordinator this platform reports to:
    /// `COORD_INSTANCE` under a flat RTI, the zone's instance under a
    /// hierarchical one.
    coord_instance: u16,
    /// Whether to speak the batched protocol (hierarchical zones): LTC +
    /// NET packed into one frame per step, grants arriving as batches on
    /// the shared member eventgroup.
    batched: bool,
    stats: TransactorStats,
    /// Telemetry handle, captured from the simulation at `start` (a
    /// disabled handle until then — every record call is one branch).
    observe: Observe,
    /// Last (head, fence) pair reported to the RTI, to suppress repeats.
    last_net: Option<(WireTag, WireTag)>,
    /// True time of the most recent NET actually sent, for the NET→TAG
    /// round-trip histogram (taken by the first grant that answers it).
    last_net_sent_at: Option<Instant>,
    /// True time at which the current grant wait began, if blocked.
    blocked_since: Option<Instant>,
    /// True time of the currently armed wake-up, if one is pending.
    ///
    /// Re-arms that would not change the wake time are suppressed so
    /// that grant arrivals never reshuffle same-instant event order —
    /// that is what keeps centralized traces bit-identical to
    /// decentralized ones.
    armed_wake: Option<Instant>,
    /// Greatest tag processed so far (for the never-beyond-bound check).
    max_processed: Option<Tag>,
    /// Whether the federate was registered with physical inputs from
    /// outside the federation. External federates always report fence
    /// advances; only pure federates are eligible for same-head NET
    /// dedup (their fence is never consulted by the solver).
    external: bool,
    /// The program's periodic event lattice, declared to the coordinator
    /// at start. `Some` only when the coordinator's control diet was on
    /// at build time and the program is statically periodic (timers
    /// only — see [`dear_core::Program::periodic_lattice`]).
    lattice: Option<dear_time::Duration>,
    /// The DNET suppression flag word most recently pushed by the
    /// coordinator (zero until the first push): which of this federate's
    /// reports provably cannot move any downstream LBTS.
    dnet_flags: u32,
    /// Durable event log, when crash recovery is enabled. Every granted
    /// bound, processed tag, injected input and drained outbox batch is
    /// appended so a fresh incarnation can replay to the exact crash
    /// point.
    log: Option<EventLog>,
    /// Input codecs keyed by physical-action id, for durable input
    /// logging and replay.
    codecs: BTreeMap<u32, InputCodec>,
    /// Processed tags between durable checkpoints.
    snapshot_every: u64,
    /// Processed tags since the last checkpoint.
    processed_since_snapshot: u64,
    /// Whether the federate is currently down ([`CoordinatedPlatform::crash`]).
    crashed: bool,
    /// True time of the crash, reported by the next recovery.
    crashed_at: Option<Instant>,
    /// Incarnation number: 0 for the original process, bumped by every
    /// recovery and carried in the `Rejoin` frame's fence microstep so
    /// the coordinator can drop stale-incarnation control echoes.
    incarnation: u32,
    /// Bumped on every crash. Scheduled outbox drains capture the epoch
    /// at scheduling time and no-op on mismatch — the wake-up
    /// `generation` cannot guard them because `arm` bumps it on every
    /// re-arm.
    epoch: u64,
    /// Report of the most recent recovery, if any.
    last_recovery: Option<PlatformRecovery>,
}

impl PlatformInner {
    /// Whether the NET report with queue head `head` may be skipped,
    /// counting it when so. Two rules, both fixpoint-neutral: a
    /// DNET-flagged sink constrains nobody downstream, and a pure
    /// federate whose head is unchanged since its last report adds no
    /// information (its fence is never consulted by the solver). The
    /// heartbeat path bypasses this on purpose — liveness needs traffic.
    fn suppress_net(&mut self, head: WireTag) -> bool {
        let sink = self.dnet_flags & DNET_SINK != 0;
        let same_head = !self.external && self.last_net.is_some_and(|(h, _)| h == head);
        if sink || same_head {
            self.stats.record_net_suppressed();
            self.observe.count("coord/nets_suppressed", 1);
            true
        } else {
            false
        }
    }
}

/// A platform participating in a centrally coordinated federation.
///
/// Cheap to clone; clones share the platform.
#[derive(Clone)]
pub struct CoordinatedPlatform(Rc<RefCell<PlatformInner>>);

impl fmt::Debug for CoordinatedPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("CoordinatedPlatform")
            .field("name", &inner.name)
            .field("federate", &inner.federate)
            .field("started", &inner.started)
            .field("granted", &inner.runtime.tag_bound())
            .finish()
    }
}

impl CoordinatedPlatform {
    /// Creates a platform around a built runtime and registers it with
    /// the RTI as a federate hosted on `binding`'s node.
    ///
    /// `external` declares physical inputs from outside the federation
    /// (see [`Rti::register`]). The binding is also used to exchange
    /// coordination messages with the RTI, alongside its data traffic.
    ///
    /// # Panics
    ///
    /// Panics if the RTI's federate table is full; use
    /// [`CoordinatedPlatform::try_new`] to handle that as an error.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        rti: &Rti,
        binding: &Binding,
        external: bool,
    ) -> Self {
        Self::try_new(
            name, runtime, clock, outbox, cost_rng, rti, binding, external,
        )
        .expect("federate registration failed")
    }

    /// Fallible [`CoordinatedPlatform::new`]: registration reports
    /// coordinator capacity exhaustion instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates [`Rti::register`] errors.
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        rti: &Rti,
        binding: &Binding,
        external: bool,
    ) -> Result<Self, FederationError> {
        let federate = rti.register(name, binding.node(), external)?;
        Ok(Self::build(
            name,
            runtime,
            clock,
            outbox,
            cost_rng,
            federate,
            binding,
            COORD_INSTANCE,
            coord_eventgroup(federate.0),
            false,
            external,
            rti.control_diet_enabled(),
        ))
    }

    /// Creates a platform registered with zone `zone` of a hierarchical
    /// federation. The platform reports NET/LTC to its zone coordinator
    /// — batched, one control frame per step — and receives grants from
    /// the zone's shared member eventgroup, filtering the batch by its
    /// own (global) federate id.
    ///
    /// # Errors
    ///
    /// Propagates [`HierarchicalRti::register`] errors (unknown zone,
    /// capacity exhausted).
    #[allow(clippy::too_many_arguments)]
    pub fn new_in_zone(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        hierarchy: &HierarchicalRti,
        zone: ZoneId,
        binding: &Binding,
        external: bool,
    ) -> Result<Self, FederationError> {
        let federate = hierarchy.register(zone, name, binding.node(), external)?;
        Ok(Self::build(
            name,
            runtime,
            clock,
            outbox,
            cost_rng,
            federate,
            binding,
            zone_instance(zone),
            ZONE_MEMBER_EVENTGROUP,
            true,
            external,
            hierarchy.control_diet_enabled(),
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        federate: FederateId,
        binding: &Binding,
        coord_instance: u16,
        grant_eventgroup: u16,
        batched: bool,
        external: bool,
        diet: bool,
    ) -> Self {
        // The periodic lattice is declared only under the control diet:
        // without it the platform sends no `Period` record and the
        // coordinator's calendar — and every trace — stays unchanged.
        let lattice = if diet {
            runtime.program().periodic_lattice()
        } else {
            None
        };
        let platform = CoordinatedPlatform(Rc::new(RefCell::new(PlatformInner {
            name: name.into(),
            runtime,
            clock,
            outbox,
            routes: BTreeMap::new(),
            costs: BTreeMap::new(),
            cost_rng,
            busy_until: Instant::EPOCH,
            generation: 0,
            started: false,
            resigned: false,
            federate,
            binding: binding.clone(),
            coord_instance,
            batched,
            stats: TransactorStats::new(),
            observe: Observe::disabled(),
            last_net: None,
            last_net_sent_at: None,
            blocked_since: None,
            armed_wake: None,
            max_processed: None,
            external,
            lattice,
            dnet_flags: 0,
            log: None,
            codecs: BTreeMap::new(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            processed_since_snapshot: 0,
            crashed: false,
            crashed_at: None,
            incarnation: 0,
            epoch: 0,
            last_recovery: None,
        })));
        binding.subscribe(
            ServiceInstance::new(COORD_SERVICE, coord_instance),
            grant_eventgroup,
        );
        let hook = platform.clone();
        binding.on_event(COORD_SERVICE, COORD_EVENT, move |sim, msg| {
            hook.on_grant_frame(sim, &msg.payload);
        });
        platform
    }

    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// The federate id assigned by the RTI (for topology declarations).
    #[must_use]
    pub fn federate_id(&self) -> FederateId {
        self.0.borrow().federate
    }

    /// The coordination counters (shared handle).
    #[must_use]
    pub fn coordination_stats(&self) -> TransactorStats {
        self.0.borrow().stats.clone()
    }

    /// The greatest tag processed so far.
    #[must_use]
    pub fn max_processed_tag(&self) -> Option<Tag> {
        self.0.borrow().max_processed
    }

    /// The currently granted exclusive tag bound.
    #[must_use]
    pub fn granted_bound(&self) -> Option<Tag> {
        self.0.borrow().runtime.tag_bound()
    }

    /// Registers the interpreter for an outbox route.
    pub fn register_route(
        &self,
        route: u32,
        handler: impl Fn(&mut Simulation, OutboundMsg) + 'static,
    ) {
        self.0.borrow_mut().routes.insert(route, Rc::new(handler));
    }

    /// Attaches a modelled compute cost to a reaction.
    pub fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel) {
        self.0.borrow_mut().costs.insert(reaction, model);
    }

    /// The platform's local clock reading at the current simulation time.
    #[must_use]
    pub fn local_now(&self, sim: &Simulation) -> Instant {
        self.0.borrow().clock.local_time(sim.now())
    }

    /// Runs a closure with mutable access to the runtime.
    pub fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        f(&mut self.0.borrow_mut().runtime)
    }

    /// Runtime statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.0.borrow().runtime.stats()
    }

    /// Attaches a durable event log. From `start` on, every granted
    /// bound, processed tag, registered input and outbox drain is
    /// appended, enabling [`CoordinatedPlatform::crash`] /
    /// [`CoordinatedPlatform::recover`].
    ///
    /// # Panics
    ///
    /// Panics if the platform already started — the log must see the
    /// `Started` anchor record first.
    pub fn attach_durable(&self, log: EventLog) {
        let mut inner = self.0.borrow_mut();
        assert!(!inner.started, "attach the durable log before start");
        inner.log = Some(log);
    }

    /// The attached durable log, if any.
    #[must_use]
    pub fn durable_log(&self) -> Option<EventLog> {
        self.0.borrow().log.clone()
    }

    /// Sets how many processed tags elapse between durable checkpoints
    /// (default 32).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn set_snapshot_every(&self, every: u64) {
        assert!(every > 0, "snapshot interval must be positive");
        self.0.borrow_mut().snapshot_every = every;
    }

    /// Registers a serialization codec for a physical action, so
    /// payloads injected through [`CoordinatedPlatform::inject_at`] /
    /// [`CoordinatedPlatform::inject_now`] are durably logged and can be
    /// rebuilt during recovery replay.
    pub fn register_durable_input<T: Send + Sync + 'static>(
        &self,
        action: PhysicalAction<T>,
        encode: impl Fn(&T) -> Vec<u8> + 'static,
        decode: impl Fn(&[u8]) -> Option<T> + 'static,
    ) {
        let key = action.id().index() as u32;
        let encode: EncodeFn = Rc::new(move |value| value.downcast_ref::<T>().map(&encode));
        let replay: ReplayFn = Rc::new(move |runtime, tag, bytes| {
            decode(bytes)
                .map(|value| runtime.schedule_physical_at(&action, value, tag).is_ok())
                .unwrap_or(false)
        });
        self.0
            .borrow_mut()
            .codecs
            .insert(key, InputCodec { encode, replay });
    }

    /// Whether the federate is currently down.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.0.borrow().crashed
    }

    /// Report of the most recent recovery, if any.
    #[must_use]
    pub fn last_recovery(&self) -> Option<PlatformRecovery> {
        self.0.borrow().last_recovery.clone()
    }

    /// Kills the federate process: all armed wake-ups and scheduled
    /// outbox drains are stranded, undrained outputs are lost, and the
    /// control plane goes silent (the liveness watchdog will eventually
    /// declare the federate dead). Frames addressed to the federate keep
    /// landing in its durable log — the durable-inbox property recovery
    /// replay depends on. Idempotent while down.
    ///
    /// # Panics
    ///
    /// Panics if the platform has not started.
    pub fn crash(&self, sim: &Simulation) {
        let mut inner = self.0.borrow_mut();
        assert!(inner.started, "crash before start");
        if inner.crashed {
            return;
        }
        inner.crashed = true;
        inner.crashed_at = Some(sim.now());
        inner.generation += 1; // strand every armed wake-up
        inner.epoch += 1; // strand every scheduled outbox drain
        inner.armed_wake = None;
        inner.blocked_since = None;
        inner.last_net = None;
        inner.last_net_sent_at = None;
        // In-flight outputs die with the process; replay decides which
        // of them the wire actually saw.
        let _ = inner.outbox.drain();
        inner.observe.count("recovery/crashes", 1);
    }

    /// Restarts a crashed federate from its durable log: replays every
    /// logged input and processed tag into `fresh` (a newly built
    /// runtime for the *same* program), suppressing outbound messages
    /// the previous incarnation already drained, re-sending the ones it
    /// did not, restoring the granted bound, and announcing the new
    /// incarnation to the coordinator with a `Rejoin` frame.
    ///
    /// Replay steps run at the clock readings the log recorded, so
    /// deadline misses — and anything a reaction read off the physical
    /// clock — come out exactly as the first incarnation saw them.
    ///
    /// # Panics
    ///
    /// Panics if the platform is not crashed or has no attached log.
    pub fn recover(&self, sim: &mut Simulation, fresh: Runtime) -> PlatformRecovery {
        let (mut report, resend, rejoin) = {
            let mut inner = self.0.borrow_mut();
            assert!(inner.crashed, "recover on a live platform");
            let log = inner
                .log
                .clone()
                .expect("recover requires an attached durable log");
            let records = log.replay();
            // Outbound watermark: everything at or below this tag was on
            // the wire before the crash and must not be sent twice.
            let watermark = records
                .iter()
                .filter_map(|r| match r {
                    Record::Drained { tag } => Some(*tag),
                    _ => None,
                })
                .max();
            inner.runtime = fresh;
            let lane = Lane::Federate(inner.federate.0);
            let observe = inner.observe.clone();
            inner.runtime.set_observe(observe, lane);
            inner.incarnation += 1;
            inner.busy_until = Instant::EPOCH;
            inner.dnet_flags = 0;
            inner.last_net = None;
            inner.last_net_sent_at = None;
            inner.blocked_since = None;
            inner.armed_wake = None;
            inner.max_processed = None;
            inner.processed_since_snapshot = 0;
            let crashed_at = inner.crashed_at.take().unwrap_or_else(|| sim.now());
            let mut report = PlatformRecovery {
                crashed_at,
                rejoined_at: sim.now(),
                replayed_tags: 0,
                replayed_inputs: 0,
                suppressed_sends: 0,
                resent_sends: 0,
                last_processed: None,
                restored_bound: None,
                incarnation: inner.incarnation,
                replay_mismatches: 0,
            };
            let mut resend: Vec<OutboundMsg> = Vec::new();
            let mut max_granted: Option<Tag> = None;
            let inner = &mut *inner;
            for record in &records {
                match record {
                    Record::Started { anchor } => {
                        inner.runtime.start(Instant::from_nanos(*anchor));
                    }
                    Record::Input { key, tag, bytes } => {
                        let ok = inner
                            .codecs
                            .get(key)
                            .is_some_and(|c| (c.replay)(&mut inner.runtime, *tag, bytes));
                        if ok {
                            report.replayed_inputs += 1;
                        } else {
                            report.replay_mismatches += 1;
                        }
                    }
                    Record::Granted { bound } => {
                        max_granted = Some(max_granted.map_or(*bound, |m| m.max(*bound)));
                    }
                    Record::Processed { tag, local } => {
                        inner.runtime.set_tag_bound(tag_succ(*tag));
                        match inner.runtime.step(Instant::from_nanos(*local)) {
                            StepOutcome::Processed(summary) if summary.tag == *tag => {
                                report.replayed_tags += 1;
                                inner.max_processed = Some(
                                    inner
                                        .max_processed
                                        .map_or(summary.tag, |m| m.max(summary.tag)),
                                );
                            }
                            _ => report.replay_mismatches += 1,
                        }
                        // Outbound effects of the replayed step: swallow
                        // what the wire already saw, hold the rest for a
                        // post-replay re-send.
                        for msg in inner.outbox.drain() {
                            if watermark.is_some_and(|w| wire_to_tag(msg.tag) <= w) {
                                inner.stats.record_replay_suppressed();
                                report.suppressed_sends += 1;
                            } else {
                                resend.push(msg);
                            }
                        }
                    }
                    Record::Drained { .. } | Record::Snapshot { .. } => {}
                }
            }
            if let Some(bound) = max_granted {
                inner.runtime.set_tag_bound(bound);
                report.restored_bound = Some(bound);
            }
            report.last_processed = inner.max_processed;
            report.resent_sends = resend.len() as u64;
            inner.crashed = false;
            // The Rejoin frame: tag = last replayed tag (TAG_NEVER when
            // the federate died before completing any), fence microstep
            // = the new incarnation, which must strictly exceed the one
            // the coordinator last saw.
            let rejoin = CoordMsg {
                kind: CoordKind::Rejoin,
                federate: inner.federate.0,
                tag: inner.max_processed.map_or(TAG_NEVER, tag_to_wire),
                fence: WireTag::new(0, inner.incarnation),
            };
            inner.observe.count("recovery/rejoins", 1);
            inner
                .observe
                .record_value("recovery/replayed_tags", report.replayed_tags);
            inner
                .observe
                .record_value("recovery/replayed_inputs", report.replayed_inputs);
            inner
                .observe
                .record_value("recovery/suppressed_sends", report.suppressed_sends);
            inner
                .observe
                .record_duration("recovery/outage_ns", sim.now() - crashed_at);
            inner.observe.span(lane, "rejoin", crashed_at, sim.now());
            (report, resend, rejoin)
        };
        // Outputs the previous incarnation produced but never drained go
        // on the wire now — exactly once, after the suppression pass.
        for msg in resend {
            let handler = self.0.borrow().routes.get(&msg.route).cloned();
            match handler {
                Some(h) => h(sim, msg),
                None => panic!(
                    "outbox message for unregistered route {} on platform {}",
                    msg.route,
                    self.0.borrow().name
                ),
            }
        }
        self.send_to_rti(sim, rejoin);
        self.report_status(sim);
        self.arm(sim);
        report.rejoined_at = sim.now();
        self.0.borrow_mut().last_recovery = Some(report.clone());
        report
    }

    /// Starts the runtime, announces the federate to the RTI and arms the
    /// first wake-up.
    pub fn start(&self, sim: &mut Simulation) {
        let (federate, lattice) = {
            let mut inner = self.0.borrow_mut();
            assert!(!inner.started, "platform already started");
            inner.started = true;
            // Capture the simulation's telemetry handle: the platform's
            // own coordination metrics and the runtime's per-tag spans
            // both land on this federate's lane.
            inner.observe = sim.observe().clone();
            let lane = Lane::Federate(inner.federate.0);
            inner.observe.set_lane_name(lane, &inner.name);
            let observe = inner.observe.clone();
            inner.runtime.set_observe(observe, lane);
            let local_now = inner.clock.local_time(sim.now());
            inner.runtime.start(local_now);
            if let Some(log) = inner.log.clone() {
                // Anchor record: replay restarts the fresh runtime at the
                // same local clock reading.
                log.append(&Record::Started {
                    anchor: local_now.as_nanos(),
                });
            }
            (inner.federate, inner.lattice)
        };
        self.send_to_rti(sim, CoordMsg::new(CoordKind::Join, federate.0, TAG_NEVER));
        // Declare the periodic lattice (control diet only): the solver
        // may then leap this federate's stale head whole periods, and
        // grant-ahead windows become eligible.
        if let Some(g) = lattice {
            if let Ok(nanos) = u64::try_from(g.as_nanos()) {
                if nanos > 0 {
                    self.send_to_rti(
                        sim,
                        CoordMsg::new(CoordKind::Period, federate.0, WireTag::new(nanos, 0)),
                    );
                }
            }
        }
        self.report_status(sim);
        self.arm(sim);
    }

    /// Starts a periodic control-plane heartbeat: every `interval` the
    /// platform re-reports its NET (queue head + fence) to the RTI
    /// *unconditionally*, bypassing the change-suppression of the normal
    /// reporting path.
    ///
    /// This is what the RTI's liveness watchdog
    /// ([`Rti::enable_liveness`]) listens for: a federate blocked on a
    /// grant is silent on the normal path — it has nothing new to report
    /// — and without a heartbeat it would be indistinguishable from a
    /// dead one. The heartbeat keeps ticking until the federate resigns,
    /// so drive such simulations with `run_until`, not
    /// `run_to_completion`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn enable_heartbeat(&self, sim: &mut Simulation, interval: dear_time::Duration) {
        assert!(
            interval > dear_time::Duration::ZERO,
            "interval must be positive"
        );
        let platform = self.clone();
        sim.schedule_in(interval, move |sim| platform.heartbeat_tick(sim, interval));
    }

    fn heartbeat_tick(&self, sim: &mut Simulation, interval: dear_time::Duration) {
        let msg = {
            let mut inner = self.0.borrow_mut();
            if inner.resigned {
                return; // resignation ends the heartbeat
            }
            // A crashed process sends nothing — its silence is what the
            // liveness watchdog detects — but the tick keeps rescheduling
            // so the heartbeat resumes the moment recovery completes.
            if inner.started && !inner.crashed {
                let head = inner.runtime.next_tag().map_or(TAG_NEVER, tag_to_wire);
                let local_now = inner.clock.local_time(sim.now());
                let fence = tag_to_wire(Tag::at(local_now));
                inner.last_net = Some((head, fence));
                inner.last_net_sent_at = Some(sim.now());
                inner.stats.record_net_sent();
                inner.observe.count("coord/sent/net", 1);
                Some(CoordMsg::net(inner.federate.0, head, fence))
            } else {
                None
            }
        };
        if let Some(msg) = msg {
            self.send_to_rti(sim, msg);
        }
        let platform = self.clone();
        sim.schedule_in(interval, move |sim| platform.heartbeat_tick(sim, interval));
    }

    /// Requests runtime shutdown at the given local time.
    pub fn stop_at_local(&self, sim: &mut Simulation, local: Instant) {
        {
            let mut inner = self.0.borrow_mut();
            let _ = inner.runtime.stop_at(local);
        }
        self.report_status(sim);
        self.arm(sim);
    }

    /// Injects a payload into a physical action at an exact tag.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's safe-to-process or not-running errors.
    pub fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), dear_core::RuntimeError> {
        let result = {
            let mut inner = self.0.borrow_mut();
            let key = action.id().index() as u32;
            // Encode before scheduling: the payload moves into the queue.
            let encoded = if inner.log.is_some() {
                inner.codecs.get(&key).and_then(|c| (c.encode)(&value))
            } else {
                None
            };
            if inner.crashed {
                // Durable inbox: the frame reached a downed federate. It
                // cannot be processed now, but logging it lets recovery
                // replay rebuild the event at this exact tag.
                return match (inner.log.clone(), encoded) {
                    (Some(log), Some(bytes)) => {
                        log.append(&Record::Input { key, tag, bytes });
                        Ok(())
                    }
                    _ => Err(dear_core::RuntimeError::NotRunning),
                };
            }
            let result = inner.runtime.schedule_physical_at(action, value, tag);
            if result.is_ok() {
                if let (Some(log), Some(bytes)) = (inner.log.clone(), encoded) {
                    log.append(&Record::Input { key, tag, bytes });
                }
            }
            result
        };
        if result.is_ok() {
            self.report_status(sim);
            self.arm(sim);
        }
        result
    }

    /// Injects a payload tagged with the local physical arrival time.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's not-running error.
    pub fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, dear_core::RuntimeError> {
        let result = {
            let mut inner = self.0.borrow_mut();
            if inner.crashed {
                // Arrival-time tagging needs a live local clock; there is
                // no exact tag to log, so the injection is refused rather
                // than replayed at a made-up time.
                return Err(dear_core::RuntimeError::NotRunning);
            }
            let key = action.id().index() as u32;
            let encoded = if inner.log.is_some() {
                inner.codecs.get(&key).and_then(|c| (c.encode)(&value))
            } else {
                None
            };
            let local_now = inner.clock.local_time(sim.now());
            let result = inner.runtime.schedule_physical(action, value, local_now);
            if let (Ok(tag), Some(log), Some(bytes)) = (&result, inner.log.clone(), encoded) {
                log.append(&Record::Input {
                    key,
                    tag: *tag,
                    bytes,
                });
            }
            result
        };
        if result.is_ok() {
            self.report_status(sim);
            self.arm(sim);
        }
        result
    }

    fn send_to_rti(&self, sim: &mut Simulation, msg: CoordMsg) {
        let (binding, instance) = {
            let inner = self.0.borrow();
            (inner.binding.clone(), inner.coord_instance)
        };
        // Control messages ride recycled pool frames like all data-plane
        // traffic: encode once into a headroom buffer, wire-assemble in
        // place, zero steady-state allocations.
        let payload = msg.encode_into(&binding.pool());
        binding
            .call_no_return(sim, COORD_SERVICE, instance, COORD_METHOD, payload)
            .expect("coordination service not offered — construct the coordinator first");
    }

    /// Batched-protocol step report: the LTC plus (when it changed) the
    /// NET packed into a single control frame, so the zone recomputes
    /// once instead of twice and the wire carries one header.
    fn send_step_batch(&self, sim: &mut Simulation, ltc: CoordMsg) {
        let (binding, instance, net) = {
            let mut inner = self.0.borrow_mut();
            let net = if !inner.started || inner.resigned || inner.crashed {
                None
            } else {
                let head = inner.runtime.next_tag().map_or(TAG_NEVER, tag_to_wire);
                let local_now = inner.clock.local_time(sim.now());
                let fence = tag_to_wire(Tag::at(local_now));
                if inner.last_net == Some((head, fence)) || inner.suppress_net(head) {
                    None
                } else {
                    inner.last_net = Some((head, fence));
                    inner.last_net_sent_at = Some(sim.now());
                    inner.stats.record_net_sent();
                    inner.observe.count("coord/sent/net", 1);
                    Some(CoordMsg::net(inner.federate.0, head, fence))
                }
            };
            inner.stats.record_coord_batch_sent();
            (inner.binding.clone(), inner.coord_instance, net)
        };
        let mut batch = CoordBatch::pooled(&binding.pool());
        batch.push(&ltc);
        if let Some(net) = net {
            batch.push(&net);
        }
        self.0
            .borrow()
            .observe
            .record_value("coord/step_batch_size", batch.len() as u64);
        binding
            .call_no_return(sim, COORD_SERVICE, instance, COORD_METHOD, batch.freeze())
            .expect("coordination service not offered — construct the coordinator first");
    }

    /// Reports NET (queue head + physical fence) when it changed.
    fn report_status(&self, sim: &mut Simulation) {
        let msg = {
            let mut inner = self.0.borrow_mut();
            if !inner.started || inner.resigned || inner.crashed {
                None
            } else {
                let head = inner.runtime.next_tag().map_or(TAG_NEVER, tag_to_wire);
                let local_now = inner.clock.local_time(sim.now());
                let fence = tag_to_wire(Tag::at(local_now));
                if inner.last_net == Some((head, fence)) || inner.suppress_net(head) {
                    None
                } else {
                    inner.last_net = Some((head, fence));
                    inner.last_net_sent_at = Some(sim.now());
                    inner.stats.record_net_sent();
                    inner.observe.count("coord/sent/net", 1);
                    Some(CoordMsg::net(inner.federate.0, head, fence))
                }
            }
        };
        if let Some(msg) = msg {
            self.send_to_rti(sim, msg);
        }
    }

    /// Dispatches one grant notification frame: either a flat-protocol
    /// single record or a zone batch, from which the platform applies
    /// the records addressed to its own federate id (in frame order —
    /// the same order a flat RTI would have delivered them in).
    fn on_grant_frame(&self, sim: &mut Simulation, payload: &[u8]) {
        let now = sim.now();
        if payload.first() == Some(&COORD_BATCH_MARKER) {
            let Ok(batch) = CoordBatch::decode(payload) else {
                return;
            };
            {
                let inner = self.0.borrow();
                inner.stats.record_coord_batch_received();
                inner
                    .observe
                    .record_value("coord/grant_batch_size", batch.len() as u64);
            }
            let mut applied = false;
            for msg in batch.iter() {
                applied |= self.apply_grant(&msg, now);
            }
            if applied {
                self.arm(sim);
            }
        } else if let Ok(msg) = CoordMsg::decode(payload) {
            if self.apply_grant(&msg, now) {
                self.arm(sim);
            }
        }
    }

    /// Applies one grant record if it is addressed to this federate.
    fn apply_grant(&self, msg: &CoordMsg, now: Instant) -> bool {
        let mut inner = self.0.borrow_mut();
        if msg.federate != inner.federate.0 {
            return false;
        }
        if inner.crashed {
            // Durable inbox for the control plane: grants addressed to a
            // downed federate land in its log so recovery can restore
            // the bound, but nothing moves until then.
            if let Some(log) = inner.log.clone() {
                match msg.kind {
                    CoordKind::Tag => {
                        let bound = wire_to_tag(msg.tag);
                        let horizon = wire_to_tag(msg.fence);
                        log.append(&Record::Granted {
                            bound: if horizon > bound { horizon } else { bound },
                        });
                    }
                    CoordKind::Ptag => {
                        log.append(&Record::Granted {
                            bound: tag_succ(wire_to_tag(msg.tag)),
                        });
                    }
                    _ => {}
                }
            }
            return false;
        }
        let applied = match msg.kind {
            CoordKind::Tag => {
                let bound = wire_to_tag(msg.tag);
                let horizon = wire_to_tag(msg.fence);
                if horizon > bound {
                    // Grant-ahead window: free-run to the horizon with no
                    // per-tag round-trips. The clock gate still paces
                    // every tag to its physical time.
                    inner.runtime.set_tag_bound(horizon);
                    inner.stats.record_windowed_grant();
                    let len = horizon.time - bound.time;
                    inner.observe.record_value(
                        "coord/window_len",
                        u64::try_from(len.as_nanos()).unwrap_or(0),
                    );
                } else {
                    inner.runtime.set_tag_bound(bound);
                }
                if let Some(log) = inner.log.clone() {
                    log.append(&Record::Granted {
                        bound: if horizon > bound { horizon } else { bound },
                    });
                }
                inner.stats.record_grant_received(false);
                true
            }
            CoordKind::Ptag => {
                // Provisional: process up to and including the tag.
                let bound = tag_succ(wire_to_tag(msg.tag));
                inner.runtime.set_tag_bound(bound);
                if let Some(log) = inner.log.clone() {
                    log.append(&Record::Granted { bound });
                }
                inner.stats.record_grant_received(true);
                true
            }
            CoordKind::Dnet => {
                // Suppression-state push: remember which of our reports
                // the coordinator has proven irrelevant downstream.
                inner.dnet_flags = msg.fence.microstep;
                inner
                    .observe
                    .record_value("coord/dnet_horizon_ns", msg.tag.nanos.min(i64::MAX as u64));
                false // no bound change, nothing to re-arm
            }
            _ => false,
        };
        if applied {
            inner.observe.count("coord/grants_received", 1);
            // The NET→TAG round trip: report out, fixpoint at the
            // coordinator, grant back. The first grant answering the
            // outstanding NET takes the measurement.
            if let Some(sent) = inner.last_net_sent_at.take() {
                inner
                    .observe
                    .record_duration("coord/net_tag_rtt_ns", now - sent);
            }
        }
        applied
    }

    /// Schedules the next wake-up for the earliest *granted* pending tag.
    fn arm(&self, sim: &mut Simulation) {
        let (wake_at, generation) = {
            let mut inner = self.0.borrow_mut();
            if !inner.started || inner.crashed || !inner.runtime.is_running() {
                return;
            }
            if inner.runtime.next_tag().is_none() {
                return;
            }
            let Some(tag) = inner.runtime.next_releasable_tag() else {
                // Head exists but lies beyond the granted bound: wait for
                // the RTI. The grant handler re-arms.
                inner.armed_wake = None;
                if inner.blocked_since.is_none() {
                    inner.blocked_since = Some(sim.now());
                }
                return;
            };
            if let Some(since) = inner.blocked_since.take() {
                let now = sim.now();
                inner.stats.add_grant_wait(now - since);
                inner
                    .observe
                    .record_duration("coord/grant_wait_ns", now - since);
                inner
                    .observe
                    .span(Lane::Federate(inner.federate.0), "grant-wait", since, now);
            }
            let tag_true = inner.clock.true_time_at_local(tag.time);
            let wake = tag_true.max(inner.busy_until).max(sim.now());
            if inner.armed_wake == Some(wake) {
                // A wake-up for this instant is already pending; keep its
                // calendar position.
                return;
            }
            inner.armed_wake = Some(wake);
            inner.generation += 1;
            (wake, inner.generation)
        };
        let platform = self.clone();
        sim.schedule_at(wake_at, move |sim| platform.on_wake(sim, generation));
    }

    fn on_wake(&self, sim: &mut Simulation, generation: u64) {
        {
            let mut inner = self.0.borrow_mut();
            if generation != inner.generation || !inner.started || inner.crashed {
                return;
            }
            inner.armed_wake = None;
        }
        let (outcome, drain_at, ltc) = {
            let mut inner = self.0.borrow_mut();
            let local_now = inner.clock.local_time(sim.now());
            let outcome = inner.runtime.step(local_now);
            let mut drain_at = sim.now();
            let mut ltc = None;
            if let StepOutcome::Processed(summary) = outcome {
                // The acceptance invariant: a processed tag must lie
                // within the granted bound (exclusive).
                if inner.runtime.tag_bound().is_some_and(|b| summary.tag >= b) {
                    inner.stats.record_bound_breach();
                }
                inner.max_processed = Some(
                    inner
                        .max_processed
                        .map_or(summary.tag, |m| m.max(summary.tag)),
                );
                if let Some(log) = inner.log.clone() {
                    // The logged clock reading is what replay feeds back
                    // into `step` — deadline classification depends on it.
                    log.append(&Record::Processed {
                        tag: summary.tag,
                        local: local_now.as_nanos(),
                    });
                    inner.processed_since_snapshot += 1;
                    if inner.processed_since_snapshot >= inner.snapshot_every {
                        log.append(&Record::Snapshot {
                            seq: 0,
                            last_processed: inner.max_processed,
                            granted: inner.runtime.tag_bound(),
                        });
                        inner.processed_since_snapshot = 0;
                    }
                }
                let executed: Vec<ReactionId> = inner.runtime.executed_at_last_tag().to_vec();
                let mut total = dear_time::Duration::ZERO;
                for rid in executed {
                    if let Some(model) = inner.costs.get(&rid) {
                        let model = model.clone();
                        total += model.sample(&mut inner.cost_rng);
                    }
                }
                let busy_from = inner.busy_until.max(sim.now());
                inner.busy_until = busy_from + total;
                drain_at = inner.busy_until;
                if total > dear_time::Duration::ZERO {
                    inner.observe.span_tagged(
                        Lane::Federate(inner.federate.0),
                        "compute",
                        busy_from,
                        inner.busy_until,
                        summary.tag.as_logical(),
                    );
                }
                if inner.observe.is_enabled() {
                    let occupancy = inner.binding.pool().stats().occupancy();
                    inner.observe.gauge(
                        "frame/occupancy",
                        i64::try_from(occupancy).unwrap_or(i64::MAX),
                    );
                    inner
                        .observe
                        .record_value("frame/occupancy_hist", occupancy);
                }
                if inner.dnet_flags & DNET_SINK != 0 {
                    // DNET sink: no downstream LBTS can move on this LTC,
                    // so the report (and the recompute it would trigger)
                    // is pure overhead. Our own grants ride upstream
                    // reports, which the coordinator still receives.
                    inner.stats.record_net_suppressed();
                    inner.observe.count("coord/nets_suppressed", 1);
                } else {
                    ltc = Some(CoordMsg::new(
                        CoordKind::Ltc,
                        inner.federate.0,
                        tag_to_wire(summary.tag),
                    ));
                    inner.stats.record_ltc_sent();
                    inner.observe.count("coord/sent/ltc", 1);
                }
            }
            (outcome, drain_at, ltc)
        };
        if let Some(msg) = ltc {
            if self.0.borrow().batched {
                // Zone protocol: LTC + NET in one frame. The later
                // report_status call sees an up-to-date `last_net` and
                // suppresses the duplicate.
                self.send_step_batch(sim, msg);
            } else {
                self.send_to_rti(sim, msg);
            }
        }
        match outcome {
            StepOutcome::Processed(_) => {
                if drain_at > sim.now() {
                    let platform = self.clone();
                    // The epoch guard strands this drain if the federate
                    // crashes first: recovery replay then decides whether
                    // the batch goes on the wire.
                    let epoch = self.0.borrow().epoch;
                    sim.schedule_at(drain_at, move |sim| {
                        if platform.0.borrow().epoch == epoch {
                            platform.drain_outbox(sim);
                        }
                    });
                } else {
                    self.drain_outbox(sim);
                }
            }
            StepOutcome::Stopped => {
                self.resign(sim);
                return;
            }
            StepOutcome::Idle => {}
        }
        self.report_status(sim);
        self.arm(sim);
    }

    fn resign(&self, sim: &mut Simulation) {
        let msg = {
            let mut inner = self.0.borrow_mut();
            if inner.resigned {
                None
            } else {
                inner.resigned = true;
                Some(CoordMsg::new(
                    CoordKind::Resign,
                    inner.federate.0,
                    TAG_NEVER,
                ))
            }
        };
        if let Some(msg) = msg {
            self.send_to_rti(sim, msg);
        }
    }

    fn drain_outbox(&self, sim: &mut Simulation) {
        let msgs = {
            let inner = self.0.borrow();
            inner.outbox.drain()
        };
        if msgs.is_empty() {
            return;
        }
        // Watermark record: every message at or below this tag is now on
        // the wire, so recovery replay must not send it again. Tags only
        // grow between drains, which makes the batch maximum a prefix
        // watermark.
        if let Some(log) = self.0.borrow().log.clone() {
            if let Some(max) = msgs.iter().map(|m| wire_to_tag(m.tag)).max() {
                log.append(&Record::Drained { tag: max });
            }
        }
        for msg in msgs {
            let handler = self.0.borrow().routes.get(&msg.route).cloned();
            match handler {
                Some(h) => h(sim, msg),
                None => panic!(
                    "outbox message for unregistered route {} on platform {}",
                    msg.route,
                    self.0.borrow().name
                ),
            }
        }
    }
}

impl PlatformDriver for CoordinatedPlatform {
    fn driver_name(&self) -> String {
        self.name()
    }

    fn register_route(&self, route: u32, handler: impl Fn(&mut Simulation, OutboundMsg) + 'static) {
        CoordinatedPlatform::register_route(self, route, handler);
    }

    fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel) {
        CoordinatedPlatform::set_reaction_cost(self, reaction, model);
    }

    fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        CoordinatedPlatform::with_runtime(self, f)
    }

    fn start(&self, sim: &mut Simulation) {
        CoordinatedPlatform::start(self, sim);
    }

    fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), dear_core::RuntimeError> {
        CoordinatedPlatform::inject_at(self, sim, action, value, tag)
    }

    fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, dear_core::RuntimeError> {
        CoordinatedPlatform::inject_now(self, sim, action, value)
    }
}

/// The unconstrained sentinel a source federate receives as its first
/// grant round-trips to [`TAG_MAX`].
#[allow(dead_code)]
const _ASSERT_SENTINEL: () = {
    // Compile-time reminder that TAG_NEVER and TAG_MAX are twins.
    assert!(TAG_NEVER.nanos == u64::MAX);
    assert!(TAG_MAX.microstep == u32::MAX);
};
