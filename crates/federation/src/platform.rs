//! The coordinated platform driver: `FederatedPlatform` semantics plus
//! RTI-granted tag advances.
//!
//! A [`CoordinatedPlatform`] gates tag processing on **both** conditions:
//!
//! 1. the platform's local physical clock has passed the tag (the same
//!    rule the decentralized driver enforces — this keeps deadline
//!    behaviour and therefore event traces bit-identical), and
//! 2. the tag lies strictly below the bound granted by the [`Rti`]
//!    (inclusively below for a provisional PTAG).
//!
//! After every processed tag the platform reports LTC, and whenever its
//! queue head or physical fence changes it reports NET; grants arrive as
//! coordination-service notifications and widen the runtime's tag bound.
//! All coordination counters land in the shared
//! [`TransactorStats`], so centralized and decentralized runs report
//! comparable numbers.

use crate::hierarchy::HierarchicalRti;
use crate::rti::{FederateId, FederationError, Rti};
use crate::solver::{tag_succ, TAG_MAX};
use crate::zone::{zone_instance, ZoneId, ZONE_MEMBER_EVENTGROUP};
use dear_core::{PhysicalAction, ReactionId, Runtime, RuntimeStats, StepOutcome, Tag};
use dear_observe::{Lane, Observe};
use dear_sim::{LatencyModel, SimRng, Simulation, VirtualClock};
use dear_someip::{
    coord_eventgroup, Binding, CoordBatch, CoordKind, CoordMsg, ServiceInstance, WireTag,
    COORD_BATCH_MARKER, COORD_EVENT, COORD_INSTANCE, COORD_METHOD, COORD_SERVICE, DNET_SINK,
    TAG_NEVER,
};
use dear_time::Instant;
use dear_transactors::{
    tag_to_wire, wire_to_tag, OutboundMsg, Outbox, PlatformDriver, TransactorStats,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

type RouteHandler = Rc<dyn Fn(&mut Simulation, OutboundMsg)>;

struct PlatformInner {
    name: String,
    runtime: Runtime,
    clock: VirtualClock,
    outbox: Outbox,
    routes: BTreeMap<u32, RouteHandler>,
    costs: BTreeMap<ReactionId, LatencyModel>,
    cost_rng: SimRng,
    busy_until: Instant,
    generation: u64,
    started: bool,
    resigned: bool,
    federate: FederateId,
    binding: Binding,
    /// SOME/IP instance of the coordinator this platform reports to:
    /// `COORD_INSTANCE` under a flat RTI, the zone's instance under a
    /// hierarchical one.
    coord_instance: u16,
    /// Whether to speak the batched protocol (hierarchical zones): LTC +
    /// NET packed into one frame per step, grants arriving as batches on
    /// the shared member eventgroup.
    batched: bool,
    stats: TransactorStats,
    /// Telemetry handle, captured from the simulation at `start` (a
    /// disabled handle until then — every record call is one branch).
    observe: Observe,
    /// Last (head, fence) pair reported to the RTI, to suppress repeats.
    last_net: Option<(WireTag, WireTag)>,
    /// True time of the most recent NET actually sent, for the NET→TAG
    /// round-trip histogram (taken by the first grant that answers it).
    last_net_sent_at: Option<Instant>,
    /// True time at which the current grant wait began, if blocked.
    blocked_since: Option<Instant>,
    /// True time of the currently armed wake-up, if one is pending.
    ///
    /// Re-arms that would not change the wake time are suppressed so
    /// that grant arrivals never reshuffle same-instant event order —
    /// that is what keeps centralized traces bit-identical to
    /// decentralized ones.
    armed_wake: Option<Instant>,
    /// Greatest tag processed so far (for the never-beyond-bound check).
    max_processed: Option<Tag>,
    /// Whether the federate was registered with physical inputs from
    /// outside the federation. External federates always report fence
    /// advances; only pure federates are eligible for same-head NET
    /// dedup (their fence is never consulted by the solver).
    external: bool,
    /// The program's periodic event lattice, declared to the coordinator
    /// at start. `Some` only when the coordinator's control diet was on
    /// at build time and the program is statically periodic (timers
    /// only — see [`dear_core::Program::periodic_lattice`]).
    lattice: Option<dear_time::Duration>,
    /// The DNET suppression flag word most recently pushed by the
    /// coordinator (zero until the first push): which of this federate's
    /// reports provably cannot move any downstream LBTS.
    dnet_flags: u32,
}

impl PlatformInner {
    /// Whether the NET report with queue head `head` may be skipped,
    /// counting it when so. Two rules, both fixpoint-neutral: a
    /// DNET-flagged sink constrains nobody downstream, and a pure
    /// federate whose head is unchanged since its last report adds no
    /// information (its fence is never consulted by the solver). The
    /// heartbeat path bypasses this on purpose — liveness needs traffic.
    fn suppress_net(&mut self, head: WireTag) -> bool {
        let sink = self.dnet_flags & DNET_SINK != 0;
        let same_head = !self.external && self.last_net.is_some_and(|(h, _)| h == head);
        if sink || same_head {
            self.stats.record_net_suppressed();
            self.observe.count("coord/nets_suppressed", 1);
            true
        } else {
            false
        }
    }
}

/// A platform participating in a centrally coordinated federation.
///
/// Cheap to clone; clones share the platform.
#[derive(Clone)]
pub struct CoordinatedPlatform(Rc<RefCell<PlatformInner>>);

impl fmt::Debug for CoordinatedPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("CoordinatedPlatform")
            .field("name", &inner.name)
            .field("federate", &inner.federate)
            .field("started", &inner.started)
            .field("granted", &inner.runtime.tag_bound())
            .finish()
    }
}

impl CoordinatedPlatform {
    /// Creates a platform around a built runtime and registers it with
    /// the RTI as a federate hosted on `binding`'s node.
    ///
    /// `external` declares physical inputs from outside the federation
    /// (see [`Rti::register`]). The binding is also used to exchange
    /// coordination messages with the RTI, alongside its data traffic.
    ///
    /// # Panics
    ///
    /// Panics if the RTI's federate table is full; use
    /// [`CoordinatedPlatform::try_new`] to handle that as an error.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        rti: &Rti,
        binding: &Binding,
        external: bool,
    ) -> Self {
        Self::try_new(
            name, runtime, clock, outbox, cost_rng, rti, binding, external,
        )
        .expect("federate registration failed")
    }

    /// Fallible [`CoordinatedPlatform::new`]: registration reports
    /// coordinator capacity exhaustion instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates [`Rti::register`] errors.
    #[allow(clippy::too_many_arguments)]
    pub fn try_new(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        rti: &Rti,
        binding: &Binding,
        external: bool,
    ) -> Result<Self, FederationError> {
        let federate = rti.register(name, binding.node(), external)?;
        Ok(Self::build(
            name,
            runtime,
            clock,
            outbox,
            cost_rng,
            federate,
            binding,
            COORD_INSTANCE,
            coord_eventgroup(federate.0),
            false,
            external,
            rti.control_diet_enabled(),
        ))
    }

    /// Creates a platform registered with zone `zone` of a hierarchical
    /// federation. The platform reports NET/LTC to its zone coordinator
    /// — batched, one control frame per step — and receives grants from
    /// the zone's shared member eventgroup, filtering the batch by its
    /// own (global) federate id.
    ///
    /// # Errors
    ///
    /// Propagates [`HierarchicalRti::register`] errors (unknown zone,
    /// capacity exhausted).
    #[allow(clippy::too_many_arguments)]
    pub fn new_in_zone(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        hierarchy: &HierarchicalRti,
        zone: ZoneId,
        binding: &Binding,
        external: bool,
    ) -> Result<Self, FederationError> {
        let federate = hierarchy.register(zone, name, binding.node(), external)?;
        Ok(Self::build(
            name,
            runtime,
            clock,
            outbox,
            cost_rng,
            federate,
            binding,
            zone_instance(zone),
            ZONE_MEMBER_EVENTGROUP,
            true,
            external,
            hierarchy.control_diet_enabled(),
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        federate: FederateId,
        binding: &Binding,
        coord_instance: u16,
        grant_eventgroup: u16,
        batched: bool,
        external: bool,
        diet: bool,
    ) -> Self {
        // The periodic lattice is declared only under the control diet:
        // without it the platform sends no `Period` record and the
        // coordinator's calendar — and every trace — stays unchanged.
        let lattice = if diet {
            runtime.program().periodic_lattice()
        } else {
            None
        };
        let platform = CoordinatedPlatform(Rc::new(RefCell::new(PlatformInner {
            name: name.into(),
            runtime,
            clock,
            outbox,
            routes: BTreeMap::new(),
            costs: BTreeMap::new(),
            cost_rng,
            busy_until: Instant::EPOCH,
            generation: 0,
            started: false,
            resigned: false,
            federate,
            binding: binding.clone(),
            coord_instance,
            batched,
            stats: TransactorStats::new(),
            observe: Observe::disabled(),
            last_net: None,
            last_net_sent_at: None,
            blocked_since: None,
            armed_wake: None,
            max_processed: None,
            external,
            lattice,
            dnet_flags: 0,
        })));
        binding.subscribe(
            ServiceInstance::new(COORD_SERVICE, coord_instance),
            grant_eventgroup,
        );
        let hook = platform.clone();
        binding.on_event(COORD_SERVICE, COORD_EVENT, move |sim, msg| {
            hook.on_grant_frame(sim, &msg.payload);
        });
        platform
    }

    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// The federate id assigned by the RTI (for topology declarations).
    #[must_use]
    pub fn federate_id(&self) -> FederateId {
        self.0.borrow().federate
    }

    /// The coordination counters (shared handle).
    #[must_use]
    pub fn coordination_stats(&self) -> TransactorStats {
        self.0.borrow().stats.clone()
    }

    /// The greatest tag processed so far.
    #[must_use]
    pub fn max_processed_tag(&self) -> Option<Tag> {
        self.0.borrow().max_processed
    }

    /// The currently granted exclusive tag bound.
    #[must_use]
    pub fn granted_bound(&self) -> Option<Tag> {
        self.0.borrow().runtime.tag_bound()
    }

    /// Registers the interpreter for an outbox route.
    pub fn register_route(
        &self,
        route: u32,
        handler: impl Fn(&mut Simulation, OutboundMsg) + 'static,
    ) {
        self.0.borrow_mut().routes.insert(route, Rc::new(handler));
    }

    /// Attaches a modelled compute cost to a reaction.
    pub fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel) {
        self.0.borrow_mut().costs.insert(reaction, model);
    }

    /// The platform's local clock reading at the current simulation time.
    #[must_use]
    pub fn local_now(&self, sim: &Simulation) -> Instant {
        self.0.borrow().clock.local_time(sim.now())
    }

    /// Runs a closure with mutable access to the runtime.
    pub fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        f(&mut self.0.borrow_mut().runtime)
    }

    /// Runtime statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.0.borrow().runtime.stats()
    }

    /// Starts the runtime, announces the federate to the RTI and arms the
    /// first wake-up.
    pub fn start(&self, sim: &mut Simulation) {
        let (federate, lattice) = {
            let mut inner = self.0.borrow_mut();
            assert!(!inner.started, "platform already started");
            inner.started = true;
            // Capture the simulation's telemetry handle: the platform's
            // own coordination metrics and the runtime's per-tag spans
            // both land on this federate's lane.
            inner.observe = sim.observe().clone();
            let lane = Lane::Federate(inner.federate.0);
            inner.observe.set_lane_name(lane, &inner.name);
            let observe = inner.observe.clone();
            inner.runtime.set_observe(observe, lane);
            let local_now = inner.clock.local_time(sim.now());
            inner.runtime.start(local_now);
            (inner.federate, inner.lattice)
        };
        self.send_to_rti(sim, CoordMsg::new(CoordKind::Join, federate.0, TAG_NEVER));
        // Declare the periodic lattice (control diet only): the solver
        // may then leap this federate's stale head whole periods, and
        // grant-ahead windows become eligible.
        if let Some(g) = lattice {
            if let Ok(nanos) = u64::try_from(g.as_nanos()) {
                if nanos > 0 {
                    self.send_to_rti(
                        sim,
                        CoordMsg::new(CoordKind::Period, federate.0, WireTag::new(nanos, 0)),
                    );
                }
            }
        }
        self.report_status(sim);
        self.arm(sim);
    }

    /// Starts a periodic control-plane heartbeat: every `interval` the
    /// platform re-reports its NET (queue head + fence) to the RTI
    /// *unconditionally*, bypassing the change-suppression of the normal
    /// reporting path.
    ///
    /// This is what the RTI's liveness watchdog
    /// ([`Rti::enable_liveness`]) listens for: a federate blocked on a
    /// grant is silent on the normal path — it has nothing new to report
    /// — and without a heartbeat it would be indistinguishable from a
    /// dead one. The heartbeat keeps ticking until the federate resigns,
    /// so drive such simulations with `run_until`, not
    /// `run_to_completion`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn enable_heartbeat(&self, sim: &mut Simulation, interval: dear_time::Duration) {
        assert!(
            interval > dear_time::Duration::ZERO,
            "interval must be positive"
        );
        let platform = self.clone();
        sim.schedule_in(interval, move |sim| platform.heartbeat_tick(sim, interval));
    }

    fn heartbeat_tick(&self, sim: &mut Simulation, interval: dear_time::Duration) {
        let msg = {
            let mut inner = self.0.borrow_mut();
            if inner.resigned {
                return; // resignation ends the heartbeat
            }
            if inner.started {
                let head = inner.runtime.next_tag().map_or(TAG_NEVER, tag_to_wire);
                let local_now = inner.clock.local_time(sim.now());
                let fence = tag_to_wire(Tag::at(local_now));
                inner.last_net = Some((head, fence));
                inner.last_net_sent_at = Some(sim.now());
                inner.stats.record_net_sent();
                inner.observe.count("coord/sent/net", 1);
                Some(CoordMsg::net(inner.federate.0, head, fence))
            } else {
                None
            }
        };
        if let Some(msg) = msg {
            self.send_to_rti(sim, msg);
        }
        let platform = self.clone();
        sim.schedule_in(interval, move |sim| platform.heartbeat_tick(sim, interval));
    }

    /// Requests runtime shutdown at the given local time.
    pub fn stop_at_local(&self, sim: &mut Simulation, local: Instant) {
        {
            let mut inner = self.0.borrow_mut();
            let _ = inner.runtime.stop_at(local);
        }
        self.report_status(sim);
        self.arm(sim);
    }

    /// Injects a payload into a physical action at an exact tag.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's safe-to-process or not-running errors.
    pub fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), dear_core::RuntimeError> {
        let result = {
            let mut inner = self.0.borrow_mut();
            inner.runtime.schedule_physical_at(action, value, tag)
        };
        if result.is_ok() {
            self.report_status(sim);
            self.arm(sim);
        }
        result
    }

    /// Injects a payload tagged with the local physical arrival time.
    ///
    /// # Errors
    ///
    /// Propagates the runtime's not-running error.
    pub fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, dear_core::RuntimeError> {
        let result = {
            let mut inner = self.0.borrow_mut();
            let local_now = inner.clock.local_time(sim.now());
            inner.runtime.schedule_physical(action, value, local_now)
        };
        if result.is_ok() {
            self.report_status(sim);
            self.arm(sim);
        }
        result
    }

    fn send_to_rti(&self, sim: &mut Simulation, msg: CoordMsg) {
        let (binding, instance) = {
            let inner = self.0.borrow();
            (inner.binding.clone(), inner.coord_instance)
        };
        // Control messages ride recycled pool frames like all data-plane
        // traffic: encode once into a headroom buffer, wire-assemble in
        // place, zero steady-state allocations.
        let payload = msg.encode_into(&binding.pool());
        binding
            .call_no_return(sim, COORD_SERVICE, instance, COORD_METHOD, payload)
            .expect("coordination service not offered — construct the coordinator first");
    }

    /// Batched-protocol step report: the LTC plus (when it changed) the
    /// NET packed into a single control frame, so the zone recomputes
    /// once instead of twice and the wire carries one header.
    fn send_step_batch(&self, sim: &mut Simulation, ltc: CoordMsg) {
        let (binding, instance, net) = {
            let mut inner = self.0.borrow_mut();
            let net = if !inner.started || inner.resigned {
                None
            } else {
                let head = inner.runtime.next_tag().map_or(TAG_NEVER, tag_to_wire);
                let local_now = inner.clock.local_time(sim.now());
                let fence = tag_to_wire(Tag::at(local_now));
                if inner.last_net == Some((head, fence)) || inner.suppress_net(head) {
                    None
                } else {
                    inner.last_net = Some((head, fence));
                    inner.last_net_sent_at = Some(sim.now());
                    inner.stats.record_net_sent();
                    inner.observe.count("coord/sent/net", 1);
                    Some(CoordMsg::net(inner.federate.0, head, fence))
                }
            };
            inner.stats.record_coord_batch_sent();
            (inner.binding.clone(), inner.coord_instance, net)
        };
        let mut batch = CoordBatch::pooled(&binding.pool());
        batch.push(&ltc);
        if let Some(net) = net {
            batch.push(&net);
        }
        self.0
            .borrow()
            .observe
            .record_value("coord/step_batch_size", batch.len() as u64);
        binding
            .call_no_return(sim, COORD_SERVICE, instance, COORD_METHOD, batch.freeze())
            .expect("coordination service not offered — construct the coordinator first");
    }

    /// Reports NET (queue head + physical fence) when it changed.
    fn report_status(&self, sim: &mut Simulation) {
        let msg = {
            let mut inner = self.0.borrow_mut();
            if !inner.started || inner.resigned {
                None
            } else {
                let head = inner.runtime.next_tag().map_or(TAG_NEVER, tag_to_wire);
                let local_now = inner.clock.local_time(sim.now());
                let fence = tag_to_wire(Tag::at(local_now));
                if inner.last_net == Some((head, fence)) || inner.suppress_net(head) {
                    None
                } else {
                    inner.last_net = Some((head, fence));
                    inner.last_net_sent_at = Some(sim.now());
                    inner.stats.record_net_sent();
                    inner.observe.count("coord/sent/net", 1);
                    Some(CoordMsg::net(inner.federate.0, head, fence))
                }
            }
        };
        if let Some(msg) = msg {
            self.send_to_rti(sim, msg);
        }
    }

    /// Dispatches one grant notification frame: either a flat-protocol
    /// single record or a zone batch, from which the platform applies
    /// the records addressed to its own federate id (in frame order —
    /// the same order a flat RTI would have delivered them in).
    fn on_grant_frame(&self, sim: &mut Simulation, payload: &[u8]) {
        let now = sim.now();
        if payload.first() == Some(&COORD_BATCH_MARKER) {
            let Ok(batch) = CoordBatch::decode(payload) else {
                return;
            };
            {
                let inner = self.0.borrow();
                inner.stats.record_coord_batch_received();
                inner
                    .observe
                    .record_value("coord/grant_batch_size", batch.len() as u64);
            }
            let mut applied = false;
            for msg in batch.iter() {
                applied |= self.apply_grant(&msg, now);
            }
            if applied {
                self.arm(sim);
            }
        } else if let Ok(msg) = CoordMsg::decode(payload) {
            if self.apply_grant(&msg, now) {
                self.arm(sim);
            }
        }
    }

    /// Applies one grant record if it is addressed to this federate.
    fn apply_grant(&self, msg: &CoordMsg, now: Instant) -> bool {
        let mut inner = self.0.borrow_mut();
        if msg.federate != inner.federate.0 {
            return false;
        }
        let applied = match msg.kind {
            CoordKind::Tag => {
                let bound = wire_to_tag(msg.tag);
                let horizon = wire_to_tag(msg.fence);
                if horizon > bound {
                    // Grant-ahead window: free-run to the horizon with no
                    // per-tag round-trips. The clock gate still paces
                    // every tag to its physical time.
                    inner.runtime.set_tag_bound(horizon);
                    inner.stats.record_windowed_grant();
                    let len = horizon.time - bound.time;
                    inner.observe.record_value(
                        "coord/window_len",
                        u64::try_from(len.as_nanos()).unwrap_or(0),
                    );
                } else {
                    inner.runtime.set_tag_bound(bound);
                }
                inner.stats.record_grant_received(false);
                true
            }
            CoordKind::Ptag => {
                // Provisional: process up to and including the tag.
                inner.runtime.set_tag_bound(tag_succ(wire_to_tag(msg.tag)));
                inner.stats.record_grant_received(true);
                true
            }
            CoordKind::Dnet => {
                // Suppression-state push: remember which of our reports
                // the coordinator has proven irrelevant downstream.
                inner.dnet_flags = msg.fence.microstep;
                inner
                    .observe
                    .record_value("coord/dnet_horizon_ns", msg.tag.nanos.min(i64::MAX as u64));
                false // no bound change, nothing to re-arm
            }
            _ => false,
        };
        if applied {
            inner.observe.count("coord/grants_received", 1);
            // The NET→TAG round trip: report out, fixpoint at the
            // coordinator, grant back. The first grant answering the
            // outstanding NET takes the measurement.
            if let Some(sent) = inner.last_net_sent_at.take() {
                inner
                    .observe
                    .record_duration("coord/net_tag_rtt_ns", now - sent);
            }
        }
        applied
    }

    /// Schedules the next wake-up for the earliest *granted* pending tag.
    fn arm(&self, sim: &mut Simulation) {
        let (wake_at, generation) = {
            let mut inner = self.0.borrow_mut();
            if !inner.started || !inner.runtime.is_running() {
                return;
            }
            if inner.runtime.next_tag().is_none() {
                return;
            }
            let Some(tag) = inner.runtime.next_releasable_tag() else {
                // Head exists but lies beyond the granted bound: wait for
                // the RTI. The grant handler re-arms.
                inner.armed_wake = None;
                if inner.blocked_since.is_none() {
                    inner.blocked_since = Some(sim.now());
                }
                return;
            };
            if let Some(since) = inner.blocked_since.take() {
                let now = sim.now();
                inner.stats.add_grant_wait(now - since);
                inner
                    .observe
                    .record_duration("coord/grant_wait_ns", now - since);
                inner
                    .observe
                    .span(Lane::Federate(inner.federate.0), "grant-wait", since, now);
            }
            let tag_true = inner.clock.true_time_at_local(tag.time);
            let wake = tag_true.max(inner.busy_until).max(sim.now());
            if inner.armed_wake == Some(wake) {
                // A wake-up for this instant is already pending; keep its
                // calendar position.
                return;
            }
            inner.armed_wake = Some(wake);
            inner.generation += 1;
            (wake, inner.generation)
        };
        let platform = self.clone();
        sim.schedule_at(wake_at, move |sim| platform.on_wake(sim, generation));
    }

    fn on_wake(&self, sim: &mut Simulation, generation: u64) {
        {
            let mut inner = self.0.borrow_mut();
            if generation != inner.generation || !inner.started {
                return;
            }
            inner.armed_wake = None;
        }
        let (outcome, drain_at, ltc) = {
            let mut inner = self.0.borrow_mut();
            let local_now = inner.clock.local_time(sim.now());
            let outcome = inner.runtime.step(local_now);
            let mut drain_at = sim.now();
            let mut ltc = None;
            if let StepOutcome::Processed(summary) = outcome {
                // The acceptance invariant: a processed tag must lie
                // within the granted bound (exclusive).
                if inner.runtime.tag_bound().is_some_and(|b| summary.tag >= b) {
                    inner.stats.record_bound_breach();
                }
                inner.max_processed = Some(
                    inner
                        .max_processed
                        .map_or(summary.tag, |m| m.max(summary.tag)),
                );
                let executed: Vec<ReactionId> = inner.runtime.executed_at_last_tag().to_vec();
                let mut total = dear_time::Duration::ZERO;
                for rid in executed {
                    if let Some(model) = inner.costs.get(&rid) {
                        let model = model.clone();
                        total += model.sample(&mut inner.cost_rng);
                    }
                }
                let busy_from = inner.busy_until.max(sim.now());
                inner.busy_until = busy_from + total;
                drain_at = inner.busy_until;
                if total > dear_time::Duration::ZERO {
                    inner.observe.span_tagged(
                        Lane::Federate(inner.federate.0),
                        "compute",
                        busy_from,
                        inner.busy_until,
                        summary.tag.as_logical(),
                    );
                }
                if inner.observe.is_enabled() {
                    let occupancy = inner.binding.pool().stats().occupancy();
                    inner.observe.gauge(
                        "frame/occupancy",
                        i64::try_from(occupancy).unwrap_or(i64::MAX),
                    );
                    inner
                        .observe
                        .record_value("frame/occupancy_hist", occupancy);
                }
                if inner.dnet_flags & DNET_SINK != 0 {
                    // DNET sink: no downstream LBTS can move on this LTC,
                    // so the report (and the recompute it would trigger)
                    // is pure overhead. Our own grants ride upstream
                    // reports, which the coordinator still receives.
                    inner.stats.record_net_suppressed();
                    inner.observe.count("coord/nets_suppressed", 1);
                } else {
                    ltc = Some(CoordMsg::new(
                        CoordKind::Ltc,
                        inner.federate.0,
                        tag_to_wire(summary.tag),
                    ));
                    inner.stats.record_ltc_sent();
                    inner.observe.count("coord/sent/ltc", 1);
                }
            }
            (outcome, drain_at, ltc)
        };
        if let Some(msg) = ltc {
            if self.0.borrow().batched {
                // Zone protocol: LTC + NET in one frame. The later
                // report_status call sees an up-to-date `last_net` and
                // suppresses the duplicate.
                self.send_step_batch(sim, msg);
            } else {
                self.send_to_rti(sim, msg);
            }
        }
        match outcome {
            StepOutcome::Processed(_) => {
                if drain_at > sim.now() {
                    let platform = self.clone();
                    sim.schedule_at(drain_at, move |sim| platform.drain_outbox(sim));
                } else {
                    self.drain_outbox(sim);
                }
            }
            StepOutcome::Stopped => {
                self.resign(sim);
                return;
            }
            StepOutcome::Idle => {}
        }
        self.report_status(sim);
        self.arm(sim);
    }

    fn resign(&self, sim: &mut Simulation) {
        let msg = {
            let mut inner = self.0.borrow_mut();
            if inner.resigned {
                None
            } else {
                inner.resigned = true;
                Some(CoordMsg::new(
                    CoordKind::Resign,
                    inner.federate.0,
                    TAG_NEVER,
                ))
            }
        };
        if let Some(msg) = msg {
            self.send_to_rti(sim, msg);
        }
    }

    fn drain_outbox(&self, sim: &mut Simulation) {
        let msgs = {
            let inner = self.0.borrow();
            inner.outbox.drain()
        };
        for msg in msgs {
            let handler = self.0.borrow().routes.get(&msg.route).cloned();
            match handler {
                Some(h) => h(sim, msg),
                None => panic!(
                    "outbox message for unregistered route {} on platform {}",
                    msg.route,
                    self.0.borrow().name
                ),
            }
        }
    }
}

impl PlatformDriver for CoordinatedPlatform {
    fn driver_name(&self) -> String {
        self.name()
    }

    fn register_route(&self, route: u32, handler: impl Fn(&mut Simulation, OutboundMsg) + 'static) {
        CoordinatedPlatform::register_route(self, route, handler);
    }

    fn set_reaction_cost(&self, reaction: ReactionId, model: LatencyModel) {
        CoordinatedPlatform::set_reaction_cost(self, reaction, model);
    }

    fn with_runtime<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        CoordinatedPlatform::with_runtime(self, f)
    }

    fn start(&self, sim: &mut Simulation) {
        CoordinatedPlatform::start(self, sim);
    }

    fn inject_at<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
        tag: Tag,
    ) -> Result<(), dear_core::RuntimeError> {
        CoordinatedPlatform::inject_at(self, sim, action, value, tag)
    }

    fn inject_now<T: Send + Sync + 'static>(
        &self,
        sim: &mut Simulation,
        action: &PhysicalAction<T>,
        value: T,
    ) -> Result<Tag, dear_core::RuntimeError> {
        CoordinatedPlatform::inject_now(self, sim, action, value)
    }
}

/// The unconstrained sentinel a source federate receives as its first
/// grant round-trips to [`TAG_MAX`].
#[allow(dead_code)]
const _ASSERT_SENTINEL: () = {
    // Compile-time reminder that TAG_NEVER and TAG_MAX are twins.
    assert!(TAG_NEVER.nanos == u64::MAX);
    assert!(TAG_MAX.microstep == u32::MAX);
};
