//! The hierarchical RTI: a root coordinator over zone coordinators.
//!
//! Fleet-scale topology (ROADMAP north star): instead of one flat RTI
//! tracking every federate, federates register with **zone coordinators**
//! (one per vehicle, rack, or platoon segment), and the zones roll
//! per-zone floors up to a **root** that runs the very same
//! [`LbtsSolver`](crate::LbtsSolver) over zone summaries:
//!
//! ```text
//!                         ┌──────┐
//!            floor Z0..Zn │ root │ relayed upstream floors
//!               ┌────────►│      ├─────────┐
//!               │         └──▲───┘         ▼
//!          ┌────┴───┐        │         ┌────────┐
//!          │ zone 0 │   ┌────┴───┐     │ zone n │
//!          └─▲────┬─┘   │ zone 1 │     └─▲────┬─┘
//!   NET/LTC  │    │TAG  └────────┘       │    │
//!        ┌───┴────▼──┐ ...           ┌───┴────▼──┐
//!        │ federates │               │ federates │
//!        └───────────┘               └───────────┘
//! ```
//!
//! The root sees one node per zone (head = the zone's reported floor)
//! and the zone-level edge skeleton (the `min` delay over all federate
//! edges crossing each zone pair). Its fixpoint yields, per zone, the
//! least bound on tags that can still arrive from each upstream zone;
//! those **relayed floors** fan back down as batched `Floor` records and
//! feed the zones' proxy entries. Every hop is change-driven and
//! monotone (floors only rise), so the two levels converge without any
//! global barrier — convergence lag is what the `fleet_scale` bench
//! measures against the flat RTI.
//!
//! Zero-delay cycles must stay zone-local: the root issues no
//! provisional grants, so a zero-delay cycle crossing zones would stall
//! (assign such federates to one zone, exactly like Lingua Franca keeps
//! them in one enclave).
//!
//! Liveness is scoped per shard: zones watch their members; the root
//! watches zones via the uplink heartbeat and releases a silent zone's
//! floor so sibling zones keep advancing.

use crate::rti::{FederateId, FederationError, RtiStats, MAX_FEDERATES};
use crate::solver::{node_floor, LbtsGraph, LbtsSolver, NodeView};
use crate::zone::{
    zone_uplink_eventgroup, ZoneCoordinator, ZoneId, COORD_ROOT_INSTANCE, MAX_ZONES,
};
use dear_core::Tag;
use dear_sim::{NetworkHandle, NodeId, Simulation};
use dear_someip::{
    Binding, CoordBatch, CoordKind, CoordMsg, SdRegistry, ServiceInstance, COORD_BATCH_MARKER,
    COORD_EVENT, COORD_METHOD, COORD_SERVICE,
};
use dear_time::Duration;
use dear_transactors::{tag_to_wire, wire_to_tag};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One downward relay batch: `(upstream federate, clamped floor,
/// retreat?)` — a retreat fans down as a `Rejoin`-kind record.
type RelayRecords = Vec<(u16, Tag, bool)>;

struct ZoneEntry {
    /// Floor most recently rolled up by the zone (monotone max; origin
    /// until the first roll-up = "unknown, assume anything").
    floor: Tag,
    /// Declared dead by the root's zone watchdog.
    dead: bool,
    /// Generation guard for the zone watchdog, bumped per roll-up.
    liveness_gen: u64,
    /// Zone-level edge skeleton: (upstream zone, min delay over all
    /// federate edges crossing that zone pair).
    upstream: Vec<(u16, Duration)>,
    /// Last floor relayed down to this zone, per upstream zone
    /// (relays are change-driven).
    last_relay: BTreeMap<u16, Tag>,
}

impl ZoneEntry {
    fn view(&self) -> NodeView {
        NodeView {
            released: self.dead,
            external: false,
            completed: None,
            head: self.floor,
            fence: Tag::ORIGIN,
            // Zone floors aggregate many federates; the periodic fast
            // path applies inside zones, not to zone summaries.
            period: None,
        }
    }
}

/// The zone summaries as an [`LbtsGraph`]: graph index = zone id.
struct ZoneGraph<'a>(&'a [ZoneEntry]);

impl LbtsGraph for ZoneGraph<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn node(&self, i: usize) -> NodeView {
        self.0[i].view()
    }
    fn upstream(&self, i: usize) -> &[(u16, Duration)] {
        &self.0[i].upstream
    }
}

struct RootInner {
    binding: Binding,
    zones: Vec<ZoneCoordinator>,
    entries: Vec<ZoneEntry>,
    /// Global federate id → (zone, member graph index).
    fed_map: Vec<(u16, usize)>,
    solver: LbtsSolver,
    stats: RtiStats,
    liveness_deadline: Option<Duration>,
    /// Control-plane diet switch, propagated to every zone (current and
    /// future) so the whole hierarchy diets — or none of it does.
    diet: bool,
}

/// A shared handle to the two-level coordinator (root + zones).
///
/// Cheap to clone; clones share the coordinator. See the module docs for
/// the topology; the federate-facing API mirrors [`Rti`](crate::Rti) —
/// register, connect, enable liveness — with a [`ZoneId`] picking the
/// shard a federate lives in. [`CoordinatedPlatform::new_in_zone`]
/// builds platforms against it.
///
/// [`CoordinatedPlatform::new_in_zone`]:
///     crate::CoordinatedPlatform::new_in_zone
#[derive(Clone)]
pub struct HierarchicalRti(Rc<RefCell<RootInner>>);

impl fmt::Debug for HierarchicalRti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("HierarchicalRti")
            .field("node", &inner.binding.node())
            .field("zones", &inner.zones.len())
            .field("federates", &inner.fed_map.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl HierarchicalRti {
    /// Creates the root coordinator on `node` and offers the coordination
    /// service at [`COORD_ROOT_INSTANCE`]. Zones are added with
    /// [`HierarchicalRti::add_zone`].
    ///
    /// Like the flat RTI, every coordination link must deliver in order
    /// (the default for all link configs).
    #[must_use]
    pub fn new(sim: &mut Simulation, net: &NetworkHandle, sd: &SdRegistry, node: NodeId) -> Self {
        sim.observe()
            .set_lane_name(dear_observe::Lane::Root, "root");
        let binding = Binding::new(net, sd, node, 0x0053);
        binding.offer(
            sim,
            ServiceInstance::new(COORD_SERVICE, COORD_ROOT_INSTANCE),
            Duration::from_secs(1 << 30),
        );
        let root = HierarchicalRti(Rc::new(RefCell::new(RootInner {
            binding: binding.clone(),
            zones: Vec::new(),
            entries: Vec::new(),
            fed_map: Vec::new(),
            solver: LbtsSolver::new(),
            stats: RtiStats::default(),
            liveness_deadline: None,
            diet: false,
        })));
        let hook = root.clone();
        binding.register_method(COORD_SERVICE, COORD_METHOD, move |sim, req, _responder| {
            hook.on_rollup_frame(sim, &req.payload);
        });
        root
    }

    /// Adds a zone coordinator hosted on `node` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if [`MAX_ZONES`] zones already exist.
    pub fn add_zone(
        &self,
        sim: &mut Simulation,
        net: &NetworkHandle,
        sd: &SdRegistry,
        node: NodeId,
    ) -> ZoneId {
        let mut inner = self.0.borrow_mut();
        assert!(inner.zones.len() < MAX_ZONES, "zone capacity exhausted");
        let zone = ZoneId(inner.zones.len() as u16);
        let coordinator = ZoneCoordinator::new(sim, net, sd, node, zone);
        coordinator.set_control_diet(inner.diet);
        inner.zones.push(coordinator);
        inner.entries.push(ZoneEntry {
            floor: Tag::ORIGIN,
            dead: false,
            liveness_gen: 0,
            upstream: Vec::new(),
            last_relay: BTreeMap::new(),
        });
        zone
    }

    /// Registers a federate hosted on `node` with zone `zone`. The
    /// returned id is global to the federation (grants are addressed by
    /// it), while all of the federate's control traffic stays within its
    /// zone.
    ///
    /// # Errors
    ///
    /// [`FederationError::UnknownZone`] for a zone never added;
    /// [`FederationError::Full`] once [`MAX_FEDERATES`] federates are
    /// registered.
    pub fn register(
        &self,
        zone: ZoneId,
        name: &str,
        node: NodeId,
        external: bool,
    ) -> Result<FederateId, FederationError> {
        let (coordinator, global) = {
            let inner = self.0.borrow();
            if usize::from(zone.0) >= inner.zones.len() {
                return Err(FederationError::UnknownZone(zone));
            }
            if inner.fed_map.len() >= MAX_FEDERATES {
                return Err(FederationError::Full {
                    limit: MAX_FEDERATES,
                });
            }
            (
                inner.zones[usize::from(zone.0)].clone(),
                inner.fed_map.len() as u16,
            )
        };
        let index = coordinator.register_member(global, name, node, external)?;
        let mut inner = self.0.borrow_mut();
        inner.fed_map.push((zone.0, index));
        inner.stats.federates += 1;
        Ok(FederateId(global))
    }

    /// Declares a coordination edge (see [`Rti::connect`](crate::Rti::connect)).
    /// Intra-zone edges stay inside the member's zone; a cross-zone edge
    /// materializes a proxy in the downstream zone and widens the
    /// zone-level skeleton the root solves over (keeping the `min` delay
    /// per zone pair).
    pub fn connect(&self, upstream: FederateId, downstream: FederateId, min_delay: Duration) {
        assert!(!min_delay.is_negative(), "edge delays must be non-negative");
        let (up_zone, up_index, down_zone, down_index, down_coord) = {
            let inner = self.0.borrow();
            let (uz, ui) = inner.fed_map[usize::from(upstream.0)];
            let (dz, di) = inner.fed_map[usize::from(downstream.0)];
            (uz, ui, dz, di, inner.zones[usize::from(dz)].clone())
        };
        if up_zone == down_zone {
            down_coord.connect_local(up_index, down_index, min_delay);
            return;
        }
        down_coord.connect_from_zone(ZoneId(up_zone), down_index, min_delay);
        // The upstream zone's floor is now consumed elsewhere: none of
        // its members may be DNET-classified as a sink (a silent member
        // would hold the shared floor down and wedge this zone).
        self.0.borrow().zones[usize::from(up_zone)].mark_exported();
        let mut inner = self.0.borrow_mut();
        let skeleton = &mut inner.entries[usize::from(down_zone)].upstream;
        match skeleton.iter_mut().find(|(z, _)| *z == up_zone) {
            Some((_, d)) => *d = (*d).min(min_delay),
            None => skeleton.push((up_zone, min_delay)),
        }
    }

    /// Number of zones.
    #[must_use]
    pub fn zone_count(&self) -> usize {
        self.0.borrow().zones.len()
    }

    /// Number of registered federates across all zones.
    #[must_use]
    pub fn federate_count(&self) -> usize {
        self.0.borrow().fed_map.len()
    }

    /// The zone a federate registered with.
    #[must_use]
    pub fn zone_of(&self, fed: FederateId) -> ZoneId {
        ZoneId(self.0.borrow().fed_map[usize::from(fed.0)].0)
    }

    /// The federate's name (for reports).
    #[must_use]
    pub fn federate_name(&self, fed: FederateId) -> String {
        let (zone, index) = {
            let inner = self.0.borrow();
            let (z, i) = inner.fed_map[usize::from(fed.0)];
            (inner.zones[usize::from(z)].clone(), i)
        };
        zone.member_name(index)
    }

    /// Root-level counters (floor records exchanged, zone deaths,
    /// relay batches).
    #[must_use]
    pub fn root_stats(&self) -> RtiStats {
        self.0.borrow().stats
    }

    /// One zone's counters (member NET/LTC traffic, grants, deaths).
    #[must_use]
    pub fn zone_stats(&self, zone: ZoneId) -> RtiStats {
        self.0.borrow().zones[usize::from(zone.0)].stats()
    }

    /// Federation-wide counters: the field-wise sum of the root's and
    /// every zone's [`RtiStats`] (except `federates`, which is the
    /// global registration count).
    #[must_use]
    pub fn stats(&self) -> RtiStats {
        let inner = self.0.borrow();
        let mut total = inner.stats;
        total.federates = inner.fed_map.len() as u64;
        for zone in &inner.zones {
            let z = zone.stats();
            total.nets_received += z.nets_received;
            total.ltcs_received += z.ltcs_received;
            total.tags_issued += z.tags_issued;
            total.ptags_issued += z.ptags_issued;
            total.deaths += z.deaths;
            total.floor_records += z.floor_records;
            total.batches_sent += z.batches_sent;
            total.window_tags += z.window_tags;
            total.dnets_sent += z.dnets_sent;
            total.rejoins += z.rejoins;
        }
        total
    }

    /// Enables the coordination control-plane diet across the hierarchy:
    /// every zone (already added or added later) issues DNET suppression
    /// pushes and grant-ahead windows, and solves with the periodic fast
    /// path. Must be called before the platforms are constructed (they
    /// query it once, at build time). Opt-in, like
    /// [`Rti::enable_control_diet`](crate::Rti::enable_control_diet).
    pub fn enable_control_diet(&self) {
        let mut inner = self.0.borrow_mut();
        inner.diet = true;
        for zone in &inner.zones {
            zone.set_control_diet(true);
        }
    }

    /// Whether [`HierarchicalRti::enable_control_diet`] has been called.
    #[must_use]
    pub fn control_diet_enabled(&self) -> bool {
        self.0.borrow().diet
    }

    /// Enables liveness end to end, scoped per shard: every zone watches
    /// its members with `deadline` (identical semantics to
    /// [`Rti::enable_liveness`](crate::Rti::enable_liveness)), sends an
    /// unconditional floor heartbeat to the root every `deadline / 2`,
    /// and the root declares a zone dead after `deadline` of uplink
    /// silence — releasing its floor so sibling zones keep advancing,
    /// counting it in [`RtiStats::deaths`] and tracing it under `"rti"`.
    pub fn enable_liveness(&self, sim: &mut Simulation, deadline: Duration) {
        assert!(deadline > Duration::ZERO, "deadline must be positive");
        let zones = {
            let mut inner = self.0.borrow_mut();
            inner.liveness_deadline = Some(deadline);
            inner.zones.clone()
        };
        let heartbeat = Duration::from_nanos((deadline.as_nanos() / 2).max(1));
        for zone in zones {
            zone.enable_member_liveness(deadline);
            zone.enable_uplink_heartbeat(sim, heartbeat);
        }
    }

    /// Handles one roll-up frame from a zone: batched `Floor` records
    /// (monotone rises) plus `Rejoin`-kind roll-ups, the one record that
    /// may *retreat* a zone's floor — a crashed member replayed its
    /// durable log and rejoined below the bound its death had released.
    fn on_rollup_frame(&self, sim: &mut Simulation, payload: &[u8]) {
        let mut touched: Vec<u16> = Vec::new();
        {
            let mut inner = self.0.borrow_mut();
            let apply = |inner: &mut RootInner, msg: &CoordMsg, touched: &mut Vec<u16>| {
                let retreat = msg.kind == CoordKind::Rejoin;
                if msg.kind != CoordKind::Floor && !retreat {
                    return;
                }
                let Some(entry) = inner.entries.get_mut(usize::from(msg.federate)) else {
                    return;
                };
                // Dead zones stay dead (see Rti::on_msg): a zombie's late
                // roll-up must not resurrect a released floor. The one
                // exception is a Rejoin-kind roll-up — the zone actively
                // reporting a revived member is also proof of life for
                // the zone itself. The zone→root link delivers in order,
                // so a pre-death Floor echo can never overtake it.
                if entry.dead && !retreat {
                    return;
                }
                entry.liveness_gen += 1;
                let relayed = wire_to_tag(msg.tag);
                if retreat {
                    entry.dead = false;
                    // Non-monotone on purpose: the rejoined member resumed
                    // below the zone's released floor.
                    entry.floor = relayed;
                    inner.stats.rejoins += 1;
                } else {
                    entry.floor = entry.floor.max(relayed);
                }
                inner.stats.floor_records += 1;
                if !touched.contains(&msg.federate) {
                    touched.push(msg.federate);
                }
            };
            if payload.first() == Some(&COORD_BATCH_MARKER) {
                let Ok(batch) = CoordBatch::decode(payload) else {
                    return;
                };
                for msg in batch.iter() {
                    apply(&mut inner, &msg, &mut touched);
                }
            } else if let Ok(msg) = CoordMsg::decode(payload) {
                apply(&mut inner, &msg, &mut touched);
            }
        }
        if touched.is_empty() {
            return;
        }
        for zone in touched {
            self.arm_zone_liveness(sim, ZoneId(zone));
        }
        self.recompute(sim);
    }

    fn arm_zone_liveness(&self, sim: &mut Simulation, zone: ZoneId) {
        let armed = {
            let inner = self.0.borrow();
            inner.liveness_deadline.and_then(|deadline| {
                inner
                    .entries
                    .get(usize::from(zone.0))
                    .filter(|e| !e.dead)
                    .map(|e| (deadline, e.liveness_gen))
            })
        };
        let Some((deadline, generation)) = armed else {
            return;
        };
        let root = self.clone();
        sim.schedule_in(deadline, move |sim| {
            root.on_zone_liveness_check(sim, zone, generation);
        });
    }

    fn on_zone_liveness_check(&self, sim: &mut Simulation, zone: ZoneId, generation: u64) {
        {
            let mut inner = self.0.borrow_mut();
            let Some(entry) = inner.entries.get_mut(usize::from(zone.0)) else {
                return;
            };
            if entry.liveness_gen != generation || entry.dead {
                return; // superseded, or already dead
            }
            entry.dead = true;
            inner.stats.deaths += 1;
        }
        sim.trace_with("rti", || {
            format!("{zone} declared dead (uplink silence); releasing its floor for sibling zones")
        });
        self.recompute(sim);
    }

    /// Recomputes the zone-level fixpoint and relays changed upstream
    /// floors down, one batched frame per downstream zone. A relay that
    /// fell below the last one (an upstream member rejoined) fans down as
    /// a `Rejoin`-kind record so the zone retreats its proxy head.
    fn recompute(&self, sim: &mut Simulation) {
        let relays: Vec<(ZoneId, RelayRecords)> = {
            let mut inner = self.0.borrow_mut();
            let RootInner {
                entries,
                solver,
                stats,
                ..
            } = &mut *inner;
            let lbts = solver.solve(&ZoneGraph(entries)).to_vec();
            let mut relays = Vec::new();
            for z in 0..entries.len() {
                let mut records: Vec<(u16, Tag, bool)> = Vec::new();
                for e in 0..entries[z].upstream.len() {
                    let (up, _) = entries[z].upstream[e];
                    // What the downstream zone may assume about `up`:
                    // its floor under the *root's* (global) fixpoint —
                    // the same clamp the flat RTI applies through
                    // node_floor, so a zone's optimistic self-report
                    // never leaks past its own upstream constraints.
                    let relayed =
                        node_floor(&entries[usize::from(up)].view(), lbts[usize::from(up)]);
                    let prev = entries[z].last_relay.get(&up).copied();
                    if prev == Some(relayed) {
                        continue;
                    }
                    let retreat = prev.is_some_and(|p| relayed < p);
                    entries[z].last_relay.insert(up, relayed);
                    records.push((up, relayed, retreat));
                }
                if !records.is_empty() {
                    stats.floor_records += records.len() as u64;
                    stats.batches_sent += 1;
                    relays.push((ZoneId(z as u16), records));
                }
            }
            relays
        };
        let observe = sim.observe().clone();
        if observe.is_enabled() {
            let now = sim.now();
            observe.count("coord/fixpoint/root", 1);
            observe.instant(dear_observe::Lane::Root, "fixpoint", now);
            // Root-level coordination lag: how far each relayed upstream
            // floor trails true time when it fans back down.
            for (_, records) in &relays {
                observe.record_value("coord/batch_size", records.len() as u64);
                for (_, floor, _) in records {
                    if *floor < crate::solver::TAG_MAX {
                        observe.record_duration("coord/root_relay_lag_ns", now - floor.time);
                    }
                }
            }
        }

        let binding = self.0.borrow().binding.clone();
        for (zone, records) in relays {
            let mut batch = CoordBatch::pooled(&binding.pool());
            for (up, floor, retreat) in records {
                let kind = if retreat {
                    CoordKind::Rejoin
                } else {
                    CoordKind::Floor
                };
                batch.push(&CoordMsg::new(kind, up, tag_to_wire(floor)));
            }
            binding.notify(
                sim,
                ServiceInstance::new(COORD_SERVICE, COORD_ROOT_INSTANCE),
                zone_uplink_eventgroup(zone),
                COORD_EVENT,
                batch.freeze(),
            );
        }
    }
}
