//! # dear-federation — centralized logical-time coordination
//!
//! The DEAR transactors of `dear-transactors` coordinate a federation
//! *decentrally*: each platform releases received events at
//! `t + D + L + E` and gates processing on its local physical clock
//! (PTIDES, paper §III). The Lingua Franca ecosystem the paper builds on
//! also defines a *centralized* coordinator — an RTI that tracks every
//! federate's next-event tag and explicitly grants tag advances. This
//! crate implements that coordinator on top of the same simulated
//! SOME/IP middleware:
//!
//! * [`LbtsSolver`] — the Chandy–Misra-style LBTS fixpoint itself,
//!   shared by every coordination level over the [`LbtsGraph`] trait;
//! * [`Rti`] — the flat coordinator: per-federate NET/LTC state, the
//!   declared inter-federate topology, and TAG/PTAG grants (including
//!   provisional grants that break zero-delay cycles);
//! * [`HierarchicalRti`] — the fleet-scale topology: zone coordinators
//!   own their local federates and roll per-zone floors up to a root
//!   that solves the same fixpoint over zone summaries, with batched
//!   coordination frames on every fan-out/roll-up hop and per-shard
//!   liveness (a silent zone is released without stalling its siblings);
//! * [`CoordinatedPlatform`] — a drop-in [`PlatformDriver`]: the
//!   decentralized driver's clock gating *plus* grant gating through the
//!   runtime's externally granted tag bound, with all coordination
//!   counters reported through `TransactorStats`. It speaks both the
//!   flat single-record protocol and the zones' batched protocol
//!   ([`CoordinatedPlatform::new_in_zone`]).
//!
//! Because the grant layer is strictly additive, a centralized run
//! produces **bit-identical event traces** to a decentralized run of the
//! same scenario — verified by `tests/federation_equivalence.rs` on the
//! brake-assistant topology.
//!
//! ## Quickstart
//!
//! ```
//! use dear_core::{ProgramBuilder, Runtime};
//! use dear_federation::{CoordinatedPlatform, Rti};
//! use dear_sim::{LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
//! use dear_someip::{Binding, SdRegistry};
//! use dear_time::{Duration, Instant};
//! use dear_transactors::Outbox;
//!
//! let mut sim = Simulation::new(7);
//! let net = NetworkHandle::new(
//!     LinkConfig::ideal(Duration::from_micros(50)),
//!     sim.fork_rng("net"),
//! );
//! let sd = SdRegistry::new();
//! let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
//!
//! let mut b = ProgramBuilder::new();
//! let mut r = b.reactor("tick", 0u32);
//! let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(10)));
//! r.reaction("count").triggered_by(t).body(|n: &mut u32, _| *n += 1);
//! r.finish();
//!
//! let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
//! let platform = CoordinatedPlatform::new(
//!     "solo",
//!     Runtime::new(b.build()?),
//!     VirtualClock::ideal(),
//!     Outbox::new(),
//!     sim.fork_rng("costs"),
//!     &rti,
//!     &binding,
//!     false,
//! );
//! platform.start(&mut sim);
//! sim.run_until(Instant::from_millis(100));
//! // A federate without upstream edges is granted an unbounded advance.
//! assert!(platform.stats().processed_tags > 5);
//! assert_eq!(platform.coordination_stats().bound_breaches(), 0);
//! # Ok::<(), dear_core::AssemblyError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod hierarchy;
mod platform;
mod rti;
mod solver;
mod zone;

pub use hierarchy::HierarchicalRti;
pub use platform::{CoordinatedPlatform, PlatformRecovery};
pub use rti::{FederateId, FederationError, Rti, RtiStats, MAX_FEDERATES};
pub use solver::{
    edge_add, lattice_next, node_floor, tag_succ, LbtsGraph, LbtsSolver, NodeView, TAG_MAX,
};
pub use zone::{
    zone_instance, zone_uplink_eventgroup, ZoneId, COORD_ROOT_INSTANCE, MAX_ZONES,
    ZONE_INSTANCE_BASE, ZONE_MEMBER_EVENTGROUP, ZONE_UPLINK_EVENTGROUP_BASE,
};

// Re-exported so scenario code can pick a strategy without importing
// dear-transactors separately.
pub use dear_transactors::{Coordination, PlatformDriver};

// Re-exported so recovery scenarios can build and inspect durable logs
// without importing dear-durable separately.
pub use dear_durable::{EventLog, LogStats, LogStorage, MemStorage, Record as LogRecord};
