//! The RTI (run-time infrastructure): a centralized logical-time
//! coordinator for federated DEAR deployments.
//!
//! The RTI tracks, per federate, the last completed tag (LTC), the
//! earliest pending event tag plus a physical-time fence (NET), and the
//! declared inter-federate topology with per-edge minimum tag delays
//! (`D + L + E` for a DEAR transactor edge). From these it computes each
//! federate's **LBTS** (least bound on incoming tags) — a tag below which
//! no further message can possibly arrive — and grants tag advances:
//!
//! * **TAG(b)** — the federate may process all tags *strictly before* `b`;
//! * **PTAG(g)** — provisional grant for exactly tag `g`, issued to break
//!   zero-delay cycles where no strict bound can advance.
//!
//! The fixpoint itself lives in [`LbtsSolver`](crate::LbtsSolver): the
//! flat RTI is the one-zone special case of the hierarchical coordinator
//! ([`HierarchicalRti`](crate::HierarchicalRti)), running the solver over
//! its full federate table.
//!
//! All control traffic rides the SOME/IP coordination service defined in
//! `dear-someip::coord`; the RTI is itself just a node with a binding, so
//! grant latency is governed by the simulated network like any other
//! message — which is exactly what the `coordination_lag` bench measures.

use crate::solver::{tag_succ, LbtsGraph, LbtsSolver, NodeView, TAG_MAX};
use dear_core::Tag;
use dear_sim::{NetworkHandle, NodeId, Simulation};
use dear_someip::{
    coord_eventgroup, Binding, CoordKind, CoordMsg, SdRegistry, ServiceInstance, WireTag,
    COORD_EVENT, COORD_EVENTGROUP_BASE, COORD_INSTANCE, COORD_METHOD, COORD_SERVICE,
    DNET_NET_LATTICE, DNET_SINK, TAG_NEVER,
};
use dear_time::Duration;
use dear_transactors::{tag_to_wire, wire_to_tag};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The most federates one coordinator (flat RTI or hierarchical zone
/// space) can register: per-federate grant eventgroups start at
/// `COORD_EVENTGROUP_BASE`, so ids beyond this would wrap the u16
/// eventgroup space.
pub const MAX_FEDERATES: usize = (u16::MAX - COORD_EVENTGROUP_BASE) as usize;

/// How many declared periods a grant-ahead window runs past the strict
/// fixpoint bound. Large enough to amortize the TAG round-trip over a
/// burst of periodic steps, small enough that a topology change (a new
/// fault, a late joiner) is picked up within a handful of periods.
pub(crate) const GRANT_WINDOW_PERIODS: u32 = 8;

/// Identifies one federate within a federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FederateId(pub u16);

impl fmt::Display for FederateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fed{}", self.0)
    }
}

/// Errors reported by the federation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FederationError {
    /// The coordinator's federate table is full (see [`MAX_FEDERATES`]).
    Full {
        /// The capacity that the registration would have exceeded.
        limit: usize,
    },
    /// The referenced zone was never added to the hierarchy.
    UnknownZone(crate::ZoneId),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::Full { limit } => {
                write!(f, "federation full: at most {limit} federates can register")
            }
            FederationError::UnknownZone(zone) => {
                write!(f, "unknown zone {zone}")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// Counters describing a coordinator's activity (the flat RTI, one zone,
/// or the hierarchy root — levels that don't handle a message class
/// leave its counter at zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtiStats {
    /// Registered federates.
    pub federates: u64,
    /// NET reports received.
    pub nets_received: u64,
    /// LTC reports received.
    pub ltcs_received: u64,
    /// TAG grants issued.
    pub tags_issued: u64,
    /// PTAG (provisional) grants issued.
    pub ptags_issued: u64,
    /// Federates declared dead by the liveness watchdog (NET/LTC silence
    /// past the configured deadline).
    pub deaths: u64,
    /// Floor records exchanged with the other hierarchy level (zone
    /// roll-ups sent / received at the root, relayed floors fanned back
    /// down). Always zero for a flat RTI.
    pub floor_records: u64,
    /// Batched coordination frames sent (grant fan-outs, roll-ups,
    /// floor broadcasts). Always zero for a flat RTI, which sends one
    /// record per frame.
    pub batches_sent: u64,
    /// Extra future tags covered by grant-ahead windows, beyond the
    /// windowed TAG's own strict bound. Zero unless the control diet is
    /// enabled (see [`Rti::enable_control_diet`]).
    pub window_tags: u64,
    /// DNET suppression-state records pushed to federates. Zero unless
    /// the control diet is enabled.
    pub dnets_sent: u64,
    /// Rejoin records accepted: dead federates (or zones) revived after
    /// replaying their durable log. Stale rejoins rejected by the
    /// incarnation guard are not counted.
    pub rejoins: u64,
}

impl fmt::Display for RtiStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "federates={} nets={} ltcs={} tags={} ptags={} deaths={} floors={} batches={} \
             windows={} dnets={} rejoins={}",
            self.federates,
            self.nets_received,
            self.ltcs_received,
            self.tags_issued,
            self.ptags_issued,
            self.deaths,
            self.floor_records,
            self.batches_sent,
            self.window_tags,
            self.dnets_sent,
            self.rejoins
        )
    }
}

pub(crate) struct FederateEntry {
    pub(crate) name: String,
    #[allow(dead_code)]
    pub(crate) node: NodeId,
    /// Whether the federate takes physical inputs from outside the
    /// federation (sensors, legacy AP components). Such federates bound
    /// their future event tags by the reported fence; pure federates are
    /// bounded transitively through their upstream LBTS.
    pub(crate) external: bool,
    pub(crate) connected: bool,
    pub(crate) resigned: bool,
    /// Declared dead by the liveness watchdog: treated like a resigned
    /// federate for LBTS purposes so survivors keep advancing, but
    /// counted and traced separately.
    pub(crate) dead: bool,
    /// Generation guard for liveness wake-ups: every received control
    /// message bumps it, superseding the previously armed check.
    pub(crate) liveness_gen: u64,
    /// Last completed tag (monotone max over LTC reports).
    pub(crate) completed: Option<Tag>,
    /// Earliest pending event tag from the latest NET ([`TAG_MAX`] when
    /// idle; starts at origin = "unknown, assume anything").
    pub(crate) head: Tag,
    /// Physical-time fence from NET reports (monotone max).
    pub(crate) fence: Tag,
    /// Exclusive bound of the last TAG grant.
    pub(crate) last_granted: Option<Tag>,
    /// Tag of the last PTAG grant.
    pub(crate) last_ptag: Option<Tag>,
    /// Incoming edges: (upstream graph index, minimum tag delay). For the
    /// flat RTI the index is the upstream federate id; a zone coordinator
    /// uses its own member/proxy index space.
    pub(crate) upstream: Vec<(u16, Duration)>,
    /// Declared periodic event lattice (from a `Period` record): every
    /// locally originated event tag is a whole multiple of this duration
    /// at microstep zero. Only sent by platforms under the control diet.
    pub(crate) period: Option<Duration>,
    /// The federate has at least one downstream edge at this coordinator.
    pub(crate) has_downstream: bool,
    /// The federate feeds a downstream in another zone (set by the
    /// hierarchy when a cross-zone edge departs from this member).
    pub(crate) remote_downstream: bool,
    /// The DNET flag word last pushed to the federate, so suppression
    /// state is re-sent only when it changes.
    pub(crate) last_dnet: Option<u32>,
    /// Incarnation high-water mark: every accepted `Rejoin` carries an
    /// incarnation (in the record's fence microstep slot) that must
    /// exceed this, so a duplicated or stale rejoin can neither revive a
    /// federate twice nor rewind its completed tag.
    pub(crate) incarnation: u32,
}

impl FederateEntry {
    pub(crate) fn new(name: &str, node: NodeId, external: bool) -> Self {
        FederateEntry {
            name: name.into(),
            node,
            external,
            connected: false,
            resigned: false,
            dead: false,
            liveness_gen: 0,
            completed: None,
            head: Tag::ORIGIN,
            fence: Tag::ORIGIN,
            last_granted: None,
            last_ptag: None,
            upstream: Vec::new(),
            period: None,
            has_downstream: false,
            remote_downstream: false,
            last_dnet: None,
            incarnation: 0,
        }
    }

    pub(crate) fn released(&self) -> bool {
        self.resigned || self.dead
    }

    pub(crate) fn view(&self) -> NodeView {
        NodeView {
            released: self.released(),
            external: self.external,
            completed: self.completed,
            head: self.head,
            fence: self.fence,
            // Only ever `Some` under the control diet (platforms declare
            // their lattice only when the diet is on), so the solver's
            // periodic fast path stays inert by default.
            period: self.period,
        }
    }

    /// Whether the federate constrains nothing at this coordinator: no
    /// local downstream edge and no cross-zone downstream. Its NET/LTC
    /// reports can never move any other node's LBTS.
    pub(crate) fn is_sink(&self) -> bool {
        !self.has_downstream && !self.remote_downstream
    }

    /// Applies one federate → coordinator control record and bumps the
    /// matching counters. Returns `false` when the record must not count
    /// as a sign of life (grant/floor echoes, messages to the dead) —
    /// the liveness generation is bumped only for genuine reports, so an
    /// echo can neither disarm the armed watchdog nor revive a zombie.
    pub(crate) fn apply_control(&mut self, msg: &CoordMsg, stats: &mut RtiStats) -> bool {
        // Rejoin is the one record the dead may send: it must be looked at
        // *before* the zombie filter below, and it alone may clear `dead`.
        if msg.kind == CoordKind::Rejoin {
            return self.apply_rejoin(msg, stats);
        }
        if self.dead {
            return false;
        }
        // Grants and DNET pushes are coordinator → federate only, and
        // floor records are coordinator ↔ coordinator only.
        if matches!(
            msg.kind,
            CoordKind::Tag | CoordKind::Ptag | CoordKind::Floor | CoordKind::Dnet
        ) {
            return false;
        }
        self.liveness_gen += 1;
        match msg.kind {
            CoordKind::Join => self.connected = true,
            CoordKind::Net => {
                self.head = wire_to_tag(msg.tag);
                self.fence = self.fence.max(wire_to_tag(msg.fence));
                stats.nets_received += 1;
            }
            CoordKind::Ltc => {
                let tag = wire_to_tag(msg.tag);
                self.completed = Some(self.completed.map_or(tag, |c| c.max(tag)));
                stats.ltcs_received += 1;
            }
            CoordKind::Resign => self.resigned = true,
            CoordKind::Period => {
                let nanos = i64::try_from(msg.tag.nanos).unwrap_or(i64::MAX);
                self.period = (nanos > 0).then(|| Duration::from_nanos(nanos));
            }
            // Unreachable: filtered above.
            CoordKind::Tag
            | CoordKind::Ptag
            | CoordKind::Floor
            | CoordKind::Dnet
            | CoordKind::Rejoin => return false,
        }
        true
    }

    /// Applies a `Rejoin` record: revives a dead federate at its replayed
    /// completed tag. The incarnation carried in the record's fence
    /// microstep must strictly exceed the stored high-water mark —
    /// duplicates and stale pre-crash echoes fall through as dead letters.
    /// Resignation stays final: a resigned federate has declared it
    /// imposes no further constraints, and nothing downstream waits on it.
    fn apply_rejoin(&mut self, msg: &CoordMsg, stats: &mut RtiStats) -> bool {
        let incarnation = msg.fence.microstep;
        if incarnation <= self.incarnation || self.resigned {
            return false;
        }
        self.incarnation = incarnation;
        self.dead = false;
        self.connected = true;
        self.liveness_gen += 1;
        // The replayed LTC high-water mark: the federate is exactly where
        // it was. The head floors back from the released TAG_MAX to the
        // conservative successor until a fresh NET report lands. The wire
        // sentinel means the federate crashed before completing any tag —
        // that is the fresh-join state, not a completed `TAG_MAX`.
        if msg.tag == TAG_NEVER {
            self.completed = None;
            self.head = Tag::ORIGIN;
        } else {
            let completed = wire_to_tag(msg.tag);
            self.completed = Some(completed);
            self.head = tag_succ(completed);
        }
        // Forget grant/suppression high-water marks so the next recompute
        // re-sends the current bound and DNET state: the recovered
        // platform restored its logged bound, and over-granting is
        // harmless (a lower re-sent bound is ignored monotonically).
        self.last_granted = None;
        self.last_ptag = None;
        self.last_dnet = None;
        stats.rejoins += 1;
        true
    }
}

/// The flat federate table as an [`LbtsGraph`]: graph index = federate id.
pub(crate) struct FederateGraph<'a>(pub(crate) &'a [FederateEntry]);

impl LbtsGraph for FederateGraph<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn node(&self, i: usize) -> NodeView {
        self.0[i].view()
    }
    fn upstream(&self, i: usize) -> &[(u16, Duration)] {
        &self.0[i].upstream
    }
}

/// The grant-ahead window for federate `f` under the control diet, if one
/// is justified: the strict bound pushed out by [`GRANT_WINDOW_PERIODS`]
/// lattice periods. Requires the federate *and every direct upstream* to
/// be lattice-declared (or released) — then every tag the federate can
/// receive or originate inside the window rides the periodic lattice the
/// solver already leaps over, and the platform's own clock gate (a tag is
/// never processed before physical time reaches it, the PTIDES `D+L+E`
/// argument from the paper) keeps the free-run safe.
fn grant_horizon(federates: &[FederateEntry], f: usize, bound: Tag) -> Option<Tag> {
    let entry = &federates[f];
    let g = entry.period?;
    if bound >= TAG_MAX {
        return None; // already unconstrained; a window adds nothing
    }
    let lattice_ok = entry.upstream.iter().all(|&(u, _)| {
        let up = &federates[usize::from(u)];
        up.released() || up.period.is_some()
    });
    if !lattice_ok {
        return None;
    }
    let span = g.as_nanos().checked_mul(i64::from(GRANT_WINDOW_PERIODS))?;
    // Checked, clamped tag math: near the end of the timeline the horizon
    // must stay *strictly below* `TAG_MAX` — saturating into
    // `Instant::MAX` would produce a tag in the wire sentinel's reserved
    // time point (`dear_someip::TAG_NEVER`), which a platform would then
    // echo back as an LTC and corrupt the fixpoint. No window is issued
    // instead; the strict bound alone already covers such a federate.
    let horizon_ns = bound.time.as_nanos().checked_add(span.unsigned_abs())?;
    if horizon_ns >= dear_time::Instant::MAX.as_nanos() {
        return None;
    }
    Some(Tag::new(
        dear_time::Instant::from_nanos(horizon_ns),
        bound.microstep,
    ))
}

/// Runs the solver over `federates` and returns the grants it justifies,
/// in deterministic order: the TAG pass (strict bounds that advanced)
/// followed by at most one PTAG (zero-delay stall breaker, minimal
/// `(tag, index)` tie-break), followed — under the control diet — by the
/// DNET suppression records whose flag word changed. Updates per-entry
/// grant high-water marks and the issue counters. Shared verbatim by the
/// flat RTI and the zone coordinators — the flat path is the one-zone
/// special case.
///
/// Each returned record is `(federate, kind, tag, fence)`: the fence slot
/// of the wire record carries the window horizon on a TAG and the flag
/// word on a DNET, and stays zero otherwise.
pub(crate) fn solve_grants(
    solver: &mut LbtsSolver,
    federates: &mut [FederateEntry],
    stats: &mut RtiStats,
    grantable: usize,
    diet: bool,
) -> Vec<(u16, CoordKind, Tag, WireTag)> {
    let lbts = solver.solve(&FederateGraph(federates)).to_vec();
    let mut grants = Vec::new();
    // TAG pass: strict bounds that advanced. Only the first `grantable`
    // entries are real members (a zone's table continues with proxies).
    for (f, &bound) in lbts.iter().enumerate().take(grantable) {
        let entry = &federates[f];
        if !entry.connected || entry.released() {
            continue;
        }
        if entry.last_granted.is_none_or(|g| bound > g) {
            let window = if diet {
                grant_horizon(federates, f, bound)
            } else {
                None
            };
            match window {
                Some(horizon) => {
                    grants.push((f as u16, CoordKind::Tag, bound, tag_to_wire(horizon)));
                    // The horizon is the new high-water mark: intermediate
                    // bounds inside the window never echo back as TAGs.
                    federates[f].last_granted = Some(horizon);
                    stats.window_tags += u64::from(GRANT_WINDOW_PERIODS);
                }
                None => {
                    grants.push((f as u16, CoordKind::Tag, bound, WireTag::new(0, 0)));
                    federates[f].last_granted = Some(bound);
                }
            }
            stats.tags_issued += 1;
        }
    }
    // PTAG pass: break a zero-delay stall (see LbtsSolver::ptag_candidate).
    let candidate = solver.ptag_candidate(&FederateGraph(federates), |f| {
        let entry = &federates[f];
        f < grantable && entry.connected && entry.last_ptag.is_none_or(|p| entry.head > p)
    });
    if let Some((tag, f)) = candidate {
        grants.push((f as u16, CoordKind::Ptag, tag, WireTag::new(0, 0)));
        federates[f].last_ptag = Some(tag);
        stats.ptags_issued += 1;
    }
    // DNET pass: push each member's suppression state when it changes.
    // Flags only ever *add* report traffic here to *remove* much more on
    // the federate side; a dead or resigned federate is skipped (its
    // state is moot — release already unblocks everyone downstream).
    if diet {
        for f in 0..grantable {
            let entry = &federates[f];
            if !entry.connected || entry.released() {
                continue;
            }
            let mut flags = 0u32;
            if entry.period.is_some() {
                flags |= DNET_NET_LATTICE;
            }
            if entry.is_sink() {
                flags |= DNET_SINK;
            }
            if flags != 0 && entry.last_dnet != Some(flags) {
                // The horizon slot: "no report before this tag can move a
                // downstream LBTS". A sink's reports never can.
                let horizon = if entry.is_sink() { TAG_MAX } else { lbts[f] };
                grants.push((f as u16, CoordKind::Dnet, horizon, WireTag::new(0, flags)));
                federates[f].last_dnet = Some(flags);
                stats.dnets_sent += 1;
            }
        }
    }
    grants
}

struct RtiInner {
    binding: Binding,
    federates: Vec<FederateEntry>,
    solver: LbtsSolver,
    stats: RtiStats,
    /// Liveness deadline: a connected federate silent (no NET/LTC/Join)
    /// for longer than this is declared dead. `None` disables the
    /// watchdog (the default — death detection is opt-in so that
    /// fault-free scenarios schedule zero extra events).
    liveness_deadline: Option<Duration>,
    /// Control-plane diet (DNET suppression, grant-ahead windows, the
    /// periodic fast path). Opt-in so existing deployments keep their
    /// control traffic — and traces — bit for bit.
    diet: bool,
}

/// A shared handle to the centralized coordinator.
///
/// Cheap to clone; clones share the coordinator.
#[derive(Clone)]
pub struct Rti(Rc<RefCell<RtiInner>>);

impl fmt::Debug for Rti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("Rti")
            .field("node", &inner.binding.node())
            .field("federates", &inner.federates.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Rti {
    /// Creates the RTI on `node`, offers the coordination service and
    /// starts listening for control messages.
    ///
    /// The coordination channel must deliver messages **in order** per
    /// link (the default for every [`LinkConfig`](dear_sim::LinkConfig)
    /// constructor; the analogue of Lingua Franca's TCP connections to
    /// its RTI). NET reports carry no sequence numbers, so a link
    /// configured with `.reordering()` could deliver a stale head last
    /// and stall grants until the next report.
    #[must_use]
    pub fn new(sim: &mut Simulation, net: &NetworkHandle, sd: &SdRegistry, node: NodeId) -> Self {
        sim.observe().set_lane_name(dear_observe::Lane::Root, "rti");
        let binding = Binding::new(net, sd, node, 0x0052);
        binding.offer(
            sim,
            ServiceInstance::new(COORD_SERVICE, COORD_INSTANCE),
            Duration::from_secs(1 << 30),
        );
        let rti = Rti(Rc::new(RefCell::new(RtiInner {
            binding: binding.clone(),
            federates: Vec::new(),
            solver: LbtsSolver::new(),
            stats: RtiStats::default(),
            liveness_deadline: None,
            diet: false,
        })));
        let hook = rti.clone();
        binding.register_method(COORD_SERVICE, COORD_METHOD, move |sim, req, _responder| {
            if let Ok(msg) = CoordMsg::decode(&req.payload) {
                hook.on_msg(sim, msg);
            }
        });
        rti
    }

    /// Registers a federate hosted on `node`.
    ///
    /// `external` declares whether the federate receives physical inputs
    /// from outside the federation (see the module docs); when in doubt,
    /// `true` is always sound, merely more conservative.
    ///
    /// # Errors
    ///
    /// [`FederationError::Full`] once [`MAX_FEDERATES`] federates are
    /// registered — at fleet scale an over-subscribed coordinator is a
    /// reportable deployment error, not a crash.
    pub fn register(
        &self,
        name: &str,
        node: NodeId,
        external: bool,
    ) -> Result<FederateId, FederationError> {
        let mut inner = self.0.borrow_mut();
        if inner.federates.len() >= MAX_FEDERATES {
            return Err(FederationError::Full {
                limit: MAX_FEDERATES,
            });
        }
        let id = FederateId(inner.federates.len() as u16);
        inner
            .federates
            .push(FederateEntry::new(name, node, external));
        inner.stats.federates += 1;
        Ok(id)
    }

    /// Declares a coordination edge: messages caused by `upstream`
    /// processing tag `t` reach `downstream` with a tag of at least
    /// `edge_add(t, min_delay)`. For a DEAR transactor edge the delay is
    /// the sender deadline plus the network and clock bounds, `D + L + E`.
    pub fn connect(&self, upstream: FederateId, downstream: FederateId, min_delay: Duration) {
        assert!(!min_delay.is_negative(), "edge delays must be non-negative");
        let mut inner = self.0.borrow_mut();
        inner.federates[downstream.0 as usize]
            .upstream
            .push((upstream.0, min_delay));
        inner.federates[upstream.0 as usize].has_downstream = true;
    }

    /// Enables the coordination **control-plane diet**: DNET suppression
    /// pushes, grant-ahead windows, and the solver's periodic fast path.
    /// Must be called before the platforms are constructed (they query it
    /// once, at build time, to decide whether to declare their lattice
    /// and honour suppression). Opt-in: without this call the RTI's
    /// control traffic — and therefore every trace — is unchanged.
    pub fn enable_control_diet(&self) {
        self.0.borrow_mut().diet = true;
    }

    /// Whether [`Rti::enable_control_diet`] has been called.
    #[must_use]
    pub fn control_diet_enabled(&self) -> bool {
        self.0.borrow().diet
    }

    /// The federate's name (for reports).
    #[must_use]
    pub fn federate_name(&self, fed: FederateId) -> String {
        self.0.borrow().federates[fed.0 as usize].name.clone()
    }

    /// The exclusive bound most recently granted to `fed`, if any.
    #[must_use]
    pub fn last_granted(&self, fed: FederateId) -> Option<Tag> {
        self.0.borrow().federates[fed.0 as usize].last_granted
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RtiStats {
        self.0.borrow().stats
    }

    /// Enables the liveness watchdog: a connected federate that sends no
    /// control message (NET/LTC) for longer than `deadline` is declared
    /// **dead** — its LBTS contribution is released (like a resignation)
    /// so surviving federates keep advancing, the death is counted in
    /// [`RtiStats::deaths`] and recorded in the simulation trace under
    /// `"rti"`.
    ///
    /// The deadline should cover the federate's longest legitimate
    /// silence: its heartbeat period (see
    /// [`CoordinatedPlatform::enable_heartbeat`]) plus the coordination
    /// link's worst-case latency — a federate blocked on a grant reports
    /// nothing on the normal path, so pair liveness with heartbeats or
    /// blocked survivors will be declared dead too. Control messages from
    /// a dead federate are ignored, with one exception: a `Rejoin` record
    /// from a federate that replayed its durable log revives the entry at
    /// its replayed completed tag (see
    /// [`CoordinatedPlatform::recover`](crate::CoordinatedPlatform::recover)).
    ///
    /// [`CoordinatedPlatform::enable_heartbeat`]:
    ///     crate::CoordinatedPlatform::enable_heartbeat
    ///
    /// Detection is opt-in: without this call the RTI schedules no
    /// watchdog events, so fault-free scenarios keep their calendars —
    /// and therefore their traces — exactly as before.
    pub fn enable_liveness(&self, deadline: Duration) {
        assert!(deadline > Duration::ZERO, "deadline must be positive");
        self.0.borrow_mut().liveness_deadline = Some(deadline);
    }

    fn on_msg(&self, sim: &mut Simulation, msg: CoordMsg) {
        {
            let mut inner = self.0.borrow_mut();
            let RtiInner {
                federates, stats, ..
            } = &mut *inner;
            let Some(entry) = federates.get_mut(msg.federate as usize) else {
                return;
            };
            if !entry.apply_control(&msg, stats) {
                return;
            }
        }
        self.arm_liveness(sim, FederateId(msg.federate));
        self.recompute(sim);
    }

    /// Arms (or supersedes) the liveness check for one federate: if no
    /// further control message arrives within the deadline, it is
    /// declared dead at exactly `now + deadline` — a well-defined tag.
    fn arm_liveness(&self, sim: &mut Simulation, fed: FederateId) {
        let armed = {
            let inner = self.0.borrow();
            inner.liveness_deadline.and_then(|deadline| {
                inner
                    .federates
                    .get(fed.0 as usize)
                    .filter(|e| e.connected && !e.released())
                    .map(|e| (deadline, e.liveness_gen))
            })
        };
        let Some((deadline, generation)) = armed else {
            return;
        };
        let rti = self.clone();
        sim.schedule_in(deadline, move |sim| {
            rti.on_liveness_check(sim, fed, generation);
        });
    }

    fn on_liveness_check(&self, sim: &mut Simulation, fed: FederateId, generation: u64) {
        let name = {
            let mut inner = self.0.borrow_mut();
            let Some(entry) = inner.federates.get_mut(fed.0 as usize) else {
                return;
            };
            if entry.liveness_gen != generation || entry.released() {
                return; // superseded, or no longer eligible
            }
            entry.dead = true;
            inner.stats.deaths += 1;
            inner.federates[fed.0 as usize].name.clone()
        };
        sim.trace_with("rti", || {
            format!("federate {fed} ({name}) declared dead; releasing its LBTS bound")
        });
        // Survivors downstream of the dead federate get their bound
        // released right here.
        self.recompute(sim);
    }

    /// Recomputes every federate's LBTS and sends out newly justified
    /// grants, one single-record frame per grant on the federate's own
    /// eventgroup (the flat protocol; zones batch instead).
    fn recompute(&self, sim: &mut Simulation) {
        let grants = {
            let mut inner = self.0.borrow_mut();
            let diet = inner.diet;
            let RtiInner {
                federates,
                solver,
                stats,
                ..
            } = &mut *inner;
            let grantable = federates.len();
            solve_grants(solver, federates, stats, grantable, diet)
        };
        let observe = sim.observe().clone();
        if observe.is_enabled() {
            observe.count("coord/fixpoint/flat", 1);
            observe.record_value("coord/grants_per_round", grants.len() as u64);
            observe.instant(dear_observe::Lane::Root, "fixpoint", sim.now());
        }

        let binding = self.0.borrow().binding.clone();
        let pool = binding.pool();
        for (fed, kind, tag, fence) in grants {
            let msg = CoordMsg {
                kind,
                federate: fed,
                tag: tag_to_wire(tag),
                fence,
            };
            binding.notify(
                sim,
                ServiceInstance::new(COORD_SERVICE, COORD_INSTANCE),
                coord_eventgroup(fed),
                COORD_EVENT,
                msg.encode_into(&pool),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_time::Instant;

    fn lattice_entry(period_ms: i64) -> FederateEntry {
        let mut entry = FederateEntry::new("f", NodeId(1), false);
        entry.period = Some(Duration::from_millis(period_ms));
        entry
    }

    #[test]
    fn grant_horizon_pushes_the_bound_by_the_window() {
        let feds = vec![lattice_entry(10)];
        let bound = Tag::at(Instant::from_millis(100));
        assert_eq!(
            grant_horizon(&feds, 0, bound),
            Some(Tag::at(Instant::from_millis(
                100 + 10 * u64::from(GRANT_WINDOW_PERIODS)
            )))
        );
    }

    #[test]
    fn grant_horizon_clamps_instead_of_saturating_into_the_sentinel() {
        let feds = vec![lattice_entry(10)];
        // A bound so late that `bound + 8g` overflows u64 nanoseconds: no
        // window, rather than a saturated tag at `Instant::MAX` (the wire
        // sentinel's reserved time point).
        let bound = Tag::new(Instant::from_nanos(u64::MAX - 1), 2);
        assert_eq!(grant_horizon(&feds, 0, bound), None);
        // A bound that lands *exactly* on `Instant::MAX` clamps too.
        let window_ns =
            Duration::from_millis(10).as_nanos().unsigned_abs() * u64::from(GRANT_WINDOW_PERIODS);
        let exact = Tag::new(Instant::from_nanos(u64::MAX - window_ns), 0);
        assert_eq!(grant_horizon(&feds, 0, exact), None);
        // One nanosecond earlier the window is intact and keeps the
        // bound's microstep.
        let safe = Tag::new(Instant::from_nanos(u64::MAX - window_ns - 1), 7);
        assert_eq!(
            grant_horizon(&feds, 0, safe),
            Some(Tag::new(Instant::from_nanos(u64::MAX - 1), 7))
        );
        // The unconstrained sentinel itself never gets a window.
        assert_eq!(grant_horizon(&feds, 0, TAG_MAX), None);
    }
}
