//! The RTI (run-time infrastructure): a centralized logical-time
//! coordinator for federated DEAR deployments.
//!
//! The RTI tracks, per federate, the last completed tag (LTC), the
//! earliest pending event tag plus a physical-time fence (NET), and the
//! declared inter-federate topology with per-edge minimum tag delays
//! (`D + L + E` for a DEAR transactor edge). From these it computes each
//! federate's **LBTS** (least bound on incoming tags) — a tag below which
//! no further message can possibly arrive — and grants tag advances:
//!
//! * **TAG(b)** — the federate may process all tags *strictly before* `b`;
//! * **PTAG(g)** — provisional grant for exactly tag `g`, issued to break
//!   zero-delay cycles where no strict bound can advance.
//!
//! The computation is a Chandy–Misra-style fixpoint: a federate's *floor*
//! (the earliest tag it may still process or send at) is
//! `max(succ(completed), min(head, arrival_floor))`, where the arrival
//! floor is the federate's own LBTS (plus, for federates with physical
//! inputs from outside the federation, the reported fence). Floors
//! propagate along edges shifted by the edge delay until stable.
//!
//! All control traffic rides the SOME/IP coordination service defined in
//! `dear-someip::coord`; the RTI is itself just a node with a binding, so
//! grant latency is governed by the simulated network like any other
//! message — which is exactly what the `coordination_lag` bench measures.

use dear_core::Tag;
use dear_sim::{NetworkHandle, NodeId, Simulation};
use dear_someip::{
    coord_eventgroup, Binding, CoordKind, CoordMsg, SdRegistry, ServiceInstance, COORD_EVENT,
    COORD_INSTANCE, COORD_METHOD, COORD_SERVICE,
};
use dear_time::{Duration, Instant};
use dear_transactors::{tag_to_wire, wire_to_tag};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The greatest representable tag, used as the "no constraint" sentinel.
/// Round-trips through the wire encoding as `dear_someip::TAG_NEVER`.
pub const TAG_MAX: Tag = Tag::new(Instant::MAX, u32::MAX);

/// The strict successor of a tag (saturating at [`TAG_MAX`]).
#[must_use]
pub fn tag_succ(tag: Tag) -> Tag {
    if tag >= TAG_MAX {
        TAG_MAX
    } else {
        tag.delay(Duration::ZERO)
    }
}

/// The earliest tag a message processed at `tag` can carry after an edge
/// with minimum delay `delay` (a DEAR edge preserves the microstep and
/// adds `D + L + E` to the time point; a zero-delay edge is the identity).
#[must_use]
pub fn edge_add(tag: Tag, delay: Duration) -> Tag {
    if delay.is_zero() || tag >= TAG_MAX {
        tag
    } else {
        Tag::new(tag.time.saturating_add(delay), tag.microstep)
    }
}

/// Identifies one federate within a federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FederateId(pub u16);

impl fmt::Display for FederateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fed{}", self.0)
    }
}

/// Counters describing the RTI's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtiStats {
    /// Registered federates.
    pub federates: u64,
    /// NET reports received.
    pub nets_received: u64,
    /// LTC reports received.
    pub ltcs_received: u64,
    /// TAG grants issued.
    pub tags_issued: u64,
    /// PTAG (provisional) grants issued.
    pub ptags_issued: u64,
    /// Federates declared dead by the liveness watchdog (NET/LTC silence
    /// past the configured deadline).
    pub deaths: u64,
}

impl fmt::Display for RtiStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "federates={} nets={} ltcs={} tags={} ptags={} deaths={}",
            self.federates,
            self.nets_received,
            self.ltcs_received,
            self.tags_issued,
            self.ptags_issued,
            self.deaths
        )
    }
}

struct FederateEntry {
    name: String,
    #[allow(dead_code)]
    node: NodeId,
    /// Whether the federate takes physical inputs from outside the
    /// federation (sensors, legacy AP components). Such federates bound
    /// their future event tags by the reported fence; pure federates are
    /// bounded transitively through their upstream LBTS.
    external: bool,
    connected: bool,
    resigned: bool,
    /// Declared dead by the liveness watchdog: treated like a resigned
    /// federate for LBTS purposes so survivors keep advancing, but
    /// counted and traced separately.
    dead: bool,
    /// Generation guard for liveness wake-ups: every received control
    /// message bumps it, superseding the previously armed check.
    liveness_gen: u64,
    /// Last completed tag (monotone max over LTC reports).
    completed: Option<Tag>,
    /// Earliest pending event tag from the latest NET ([`TAG_MAX`] when
    /// idle; starts at origin = "unknown, assume anything").
    head: Tag,
    /// Physical-time fence from NET reports (monotone max).
    fence: Tag,
    /// Exclusive bound of the last TAG grant.
    last_granted: Option<Tag>,
    /// Tag of the last PTAG grant.
    last_ptag: Option<Tag>,
    /// Incoming edges: (upstream federate, minimum tag delay).
    upstream: Vec<(FederateId, Duration)>,
}

struct RtiInner {
    binding: Binding,
    federates: Vec<FederateEntry>,
    stats: RtiStats,
    /// Liveness deadline: a connected federate silent (no NET/LTC/Join)
    /// for longer than this is declared dead. `None` disables the
    /// watchdog (the default — death detection is opt-in so that
    /// fault-free scenarios schedule zero extra events).
    liveness_deadline: Option<Duration>,
}

/// A shared handle to the centralized coordinator.
///
/// Cheap to clone; clones share the coordinator.
#[derive(Clone)]
pub struct Rti(Rc<RefCell<RtiInner>>);

impl fmt::Debug for Rti {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("Rti")
            .field("node", &inner.binding.node())
            .field("federates", &inner.federates.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Rti {
    /// Creates the RTI on `node`, offers the coordination service and
    /// starts listening for control messages.
    ///
    /// The coordination channel must deliver messages **in order** per
    /// link (the default for every [`LinkConfig`](dear_sim::LinkConfig)
    /// constructor; the analogue of Lingua Franca's TCP connections to
    /// its RTI). NET reports carry no sequence numbers, so a link
    /// configured with `.reordering()` could deliver a stale head last
    /// and stall grants until the next report.
    #[must_use]
    pub fn new(sim: &mut Simulation, net: &NetworkHandle, sd: &SdRegistry, node: NodeId) -> Self {
        let binding = Binding::new(net, sd, node, 0x0052);
        binding.offer(
            sim,
            ServiceInstance::new(COORD_SERVICE, COORD_INSTANCE),
            Duration::from_secs(1 << 30),
        );
        let rti = Rti(Rc::new(RefCell::new(RtiInner {
            binding: binding.clone(),
            federates: Vec::new(),
            stats: RtiStats::default(),
            liveness_deadline: None,
        })));
        let hook = rti.clone();
        binding.register_method(COORD_SERVICE, COORD_METHOD, move |sim, req, _responder| {
            if let Ok(msg) = CoordMsg::decode(&req.payload) {
                hook.on_msg(sim, msg);
            }
        });
        rti
    }

    /// Registers a federate hosted on `node`.
    ///
    /// `external` declares whether the federate receives physical inputs
    /// from outside the federation (see the module docs); when in doubt,
    /// `true` is always sound, merely more conservative.
    pub fn register(&self, name: &str, node: NodeId, external: bool) -> FederateId {
        let mut inner = self.0.borrow_mut();
        let id = FederateId(u16::try_from(inner.federates.len()).expect("federate count"));
        inner.federates.push(FederateEntry {
            name: name.into(),
            node,
            external,
            connected: false,
            resigned: false,
            dead: false,
            liveness_gen: 0,
            completed: None,
            head: Tag::ORIGIN,
            fence: Tag::ORIGIN,
            last_granted: None,
            last_ptag: None,
            upstream: Vec::new(),
        });
        inner.stats.federates += 1;
        id
    }

    /// Declares a coordination edge: messages caused by `upstream`
    /// processing tag `t` reach `downstream` with a tag of at least
    /// `edge_add(t, min_delay)`. For a DEAR transactor edge the delay is
    /// the sender deadline plus the network and clock bounds, `D + L + E`.
    pub fn connect(&self, upstream: FederateId, downstream: FederateId, min_delay: Duration) {
        assert!(!min_delay.is_negative(), "edge delays must be non-negative");
        let mut inner = self.0.borrow_mut();
        inner.federates[downstream.0 as usize]
            .upstream
            .push((upstream, min_delay));
    }

    /// The federate's name (for reports).
    #[must_use]
    pub fn federate_name(&self, fed: FederateId) -> String {
        self.0.borrow().federates[fed.0 as usize].name.clone()
    }

    /// The exclusive bound most recently granted to `fed`, if any.
    #[must_use]
    pub fn last_granted(&self, fed: FederateId) -> Option<Tag> {
        self.0.borrow().federates[fed.0 as usize].last_granted
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RtiStats {
        self.0.borrow().stats
    }

    /// Enables the liveness watchdog: a connected federate that sends no
    /// control message (NET/LTC) for longer than `deadline` is declared
    /// **dead** — its LBTS contribution is released (like a resignation)
    /// so surviving federates keep advancing, the death is counted in
    /// [`RtiStats::deaths`] and recorded in the simulation trace under
    /// `"rti"`.
    ///
    /// The deadline should cover the federate's longest legitimate
    /// silence: its heartbeat period (see
    /// [`CoordinatedPlatform::enable_heartbeat`]) plus the coordination
    /// link's worst-case latency — a federate blocked on a grant reports
    /// nothing on the normal path, so pair liveness with heartbeats or
    /// blocked survivors will be declared dead too. Death is final;
    /// control messages from a dead federate are ignored (an operator
    /// restart re-registers under a fresh federate id).
    ///
    /// [`CoordinatedPlatform::enable_heartbeat`]:
    ///     crate::CoordinatedPlatform::enable_heartbeat
    ///
    /// Detection is opt-in: without this call the RTI schedules no
    /// watchdog events, so fault-free scenarios keep their calendars —
    /// and therefore their traces — exactly as before.
    pub fn enable_liveness(&self, deadline: Duration) {
        assert!(deadline > Duration::ZERO, "deadline must be positive");
        self.0.borrow_mut().liveness_deadline = Some(deadline);
    }

    fn on_msg(&self, sim: &mut Simulation, msg: CoordMsg) {
        {
            let mut inner = self.0.borrow_mut();
            let Some(entry) = inner.federates.get_mut(msg.federate as usize) else {
                return;
            };
            // Dead federates stay dead: a zombie's late reports must not
            // re-tighten the LBTS the survivors were already granted.
            if entry.dead {
                return;
            }
            // Grants are RTI → federate only; ignore echoes *before*
            // touching the liveness generation — an echo must neither
            // count as a sign of life nor supersede (and thereby disarm)
            // the currently scheduled liveness check.
            if matches!(msg.kind, CoordKind::Tag | CoordKind::Ptag) {
                return;
            }
            entry.liveness_gen += 1;
            match msg.kind {
                CoordKind::Join => entry.connected = true,
                CoordKind::Net => {
                    entry.head = wire_to_tag(msg.tag);
                    entry.fence = entry.fence.max(wire_to_tag(msg.fence));
                    inner.stats.nets_received += 1;
                }
                CoordKind::Ltc => {
                    let tag = wire_to_tag(msg.tag);
                    entry.completed = Some(entry.completed.map_or(tag, |c| c.max(tag)));
                    inner.stats.ltcs_received += 1;
                }
                CoordKind::Resign => entry.resigned = true,
                // Unreachable: echoes were filtered out above.
                CoordKind::Tag | CoordKind::Ptag => return,
            }
        }
        self.arm_liveness(sim, FederateId(msg.federate));
        self.recompute(sim);
    }

    /// Arms (or supersedes) the liveness check for one federate: if no
    /// further control message arrives within the deadline, it is
    /// declared dead at exactly `now + deadline` — a well-defined tag.
    fn arm_liveness(&self, sim: &mut Simulation, fed: FederateId) {
        let armed = {
            let inner = self.0.borrow();
            inner.liveness_deadline.and_then(|deadline| {
                inner
                    .federates
                    .get(fed.0 as usize)
                    .filter(|e| e.connected && !e.resigned && !e.dead)
                    .map(|e| (deadline, e.liveness_gen))
            })
        };
        let Some((deadline, generation)) = armed else {
            return;
        };
        let rti = self.clone();
        sim.schedule_in(deadline, move |sim| {
            rti.on_liveness_check(sim, fed, generation);
        });
    }

    fn on_liveness_check(&self, sim: &mut Simulation, fed: FederateId, generation: u64) {
        let name = {
            let mut inner = self.0.borrow_mut();
            let Some(entry) = inner.federates.get_mut(fed.0 as usize) else {
                return;
            };
            if entry.liveness_gen != generation || entry.resigned || entry.dead {
                return; // superseded, or no longer eligible
            }
            entry.dead = true;
            inner.stats.deaths += 1;
            inner.federates[fed.0 as usize].name.clone()
        };
        sim.trace_with("rti", || {
            format!("federate {fed} ({name}) declared dead; releasing its LBTS bound")
        });
        // Survivors downstream of the dead federate get their bound
        // released right here.
        self.recompute(sim);
    }

    /// The non-transitive part of a federate's floor: what its own
    /// reports promise about its future processing, with `arrival` (the
    /// transitive bound on its future message arrivals) plugged in.
    fn floor(entry: &FederateEntry, arrival: Tag) -> Tag {
        if entry.resigned || entry.dead {
            return TAG_MAX;
        }
        let arrival_floor = if entry.external {
            arrival.min(entry.fence)
        } else {
            arrival
        };
        let reported = entry.head.min(arrival_floor);
        entry
            .completed
            .map_or(reported, |c| tag_succ(c).max(reported))
    }

    /// Recomputes every federate's LBTS and sends out newly justified
    /// grants.
    fn recompute(&self, sim: &mut Simulation) {
        let grants: Vec<(FederateId, CoordKind, Tag)> = {
            let mut inner = self.0.borrow_mut();
            let n = inner.federates.len();

            // Fixpoint: lbts[f] = min over upstream edges (u, d) of
            // edge_add(floor(u), d), where floor(u) itself uses lbts[u].
            // Values start at TAG_MAX and only decrease; simple paths
            // bound the result, so n rounds suffice.
            let mut lbts = vec![TAG_MAX; n];
            for _ in 0..=n {
                let mut changed = false;
                for f in 0..n {
                    if inner.federates[f].upstream.is_empty() {
                        continue;
                    }
                    let mut new = TAG_MAX;
                    for &(u, d) in &inner.federates[f].upstream {
                        let uf = Self::floor(&inner.federates[u.0 as usize], lbts[u.0 as usize]);
                        new = new.min(edge_add(uf, d));
                    }
                    if new != lbts[f] {
                        lbts[f] = new;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }

            let mut grants = Vec::new();
            // TAG pass: strict bounds that advanced.
            for (f, &bound) in lbts.iter().enumerate() {
                let entry = &inner.federates[f];
                if !entry.connected || entry.resigned || entry.dead {
                    continue;
                }
                if entry.last_granted.is_none_or(|g| bound > g) {
                    grants.push((FederateId(f as u16), CoordKind::Tag, bound));
                    inner.federates[f].last_granted = Some(bound);
                    inner.stats.tags_issued += 1;
                }
            }
            // PTAG pass: break a zero-delay stall. A federate whose own
            // pending head *equals* its LBTS can never be released by a
            // strict bound; if every binding upstream edge is zero-delay
            // and stuck at or beyond the same tag, processing exactly the
            // head is safe, so grant it provisionally. One grant per
            // round keeps ties deterministic; the resulting LTC advances
            // the rest.
            let mut candidate: Option<(Tag, usize)> = None;
            for f in 0..n {
                let entry = &inner.federates[f];
                if !entry.connected
                    || entry.resigned
                    || entry.dead
                    || entry.upstream.is_empty()
                    || entry.head >= TAG_MAX
                    || entry.head != lbts[f]
                    || entry.last_ptag.is_some_and(|p| entry.head <= p)
                {
                    continue;
                }
                let justified = entry.upstream.iter().all(|&(u, d)| {
                    let up = &inner.federates[u.0 as usize];
                    let uf = Self::floor(up, lbts[u.0 as usize]);
                    edge_add(uf, d) > entry.head || (d.is_zero() && up.head >= entry.head)
                });
                // Deterministic tie-break: minimal (tag, index) wins.
                if justified && candidate.is_none_or(|(t, i)| (entry.head, f) < (t, i)) {
                    candidate = Some((entry.head, f));
                }
            }
            if let Some((tag, f)) = candidate {
                grants.push((FederateId(f as u16), CoordKind::Ptag, tag));
                inner.federates[f].last_ptag = Some(tag);
                inner.stats.ptags_issued += 1;
            }
            grants
        };

        let binding = self.0.borrow().binding.clone();
        let pool = binding.pool();
        for (fed, kind, tag) in grants {
            let msg = CoordMsg::new(kind, fed.0, tag_to_wire(tag));
            binding.notify(
                sim,
                ServiceInstance::new(COORD_SERVICE, COORD_INSTANCE),
                coord_eventgroup(fed.0),
                COORD_EVENT,
                msg.encode_into(&pool),
            );
        }
    }
}
