//! Behavioural tests of the two-level coordinator: a hierarchical
//! federation (zones + root) must be *observably identical* to the flat
//! RTI on the same topology — byte-identical per-consumer event traces
//! across seeds — while actually speaking the batched zone protocol; and
//! its liveness must be scoped per shard, so a silent zone is released
//! at the root while sibling zones keep advancing.

use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_federation::{CoordinatedPlatform, HierarchicalRti, Rti, ZoneId};
use dear_sim::{LinkConfig, NetworkHandle, NodeId, SimRng, Simulation, VirtualClock};
use dear_someip::{Binding, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientEventTransactor, DearConfig, EventSpec, Outbox, ServerEventTransactor,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const SERVICE_PING: u16 = 0x0100;
const SERVICE_PONG: u16 = 0x0200;
const INSTANCE: u16 = 1;
const EVENTGROUP: u16 = 1;
const EVENT: u16 = 0x8001;
const EVENTS: usize = 5;

fn spec(service: u16) -> EventSpec {
    EventSpec {
        service,
        instance: INSTANCE,
        eventgroup: EVENTGROUP,
        event: EVENT,
    }
}

/// Which coordinator drives the run: the flat RTI, or two zones under a
/// root. Everything else about the scenario is bit-identical.
#[derive(Clone, Copy, PartialEq)]
enum Coordinator {
    Flat,
    TwoZones,
}

/// The observable outcome of one run: per-consumer `(tag, value)` event
/// traces plus the invariants both coordinators must uphold.
struct RunReport {
    /// One lane per consumer, in registration order.
    traces: Vec<Vec<(Tag, u8)>>,
    bound_breaches: u64,
    stp_violations: u64,
    batches_sent: u64,
    batches_received: u64,
}

impl RunReport {
    /// FNV-1a over the full trace content (tags and values, in order).
    fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        };
        for lane in &self.traces {
            eat(0xfe); // lane separator
            for (tag, v) in lane {
                tag.time
                    .as_nanos()
                    .to_le_bytes()
                    .into_iter()
                    .for_each(&mut eat);
                tag.microstep.to_le_bytes().into_iter().for_each(&mut eat);
                eat(*v);
            }
        }
        h
    }
}

/// Runs a five-federate, two-service pipeline under either coordinator:
///
/// ```text
///   zone 0: p0 ──intra──► c0          zone 1: p1
///           p0 ──cross-zone─────────────────► c1
///           c2 ◄────────────────cross-zone─── p1
/// ```
///
/// Producer payloads are drawn from the seed, and every consumer carries
/// a seeded compute-cost model, so physical release times genuinely vary
/// per seed while the logical traces must not vary per coordinator.
fn run_fleet(seed: u64, coordinator: Coordinator) -> RunReport {
    let deadline = Duration::from_millis(2);
    let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
    let edge_delay = deadline + cfg.stp_offset();

    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    // Node plan: 0 = root/RTI, 1..=2 = zone coordinators, 3.. = federates.
    let (flat, hier) = match coordinator {
        Coordinator::Flat => (Some(Rti::new(&mut sim, &net, &sd, NodeId(0))), None),
        Coordinator::TwoZones => {
            let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
            h.add_zone(&mut sim, &net, &sd, NodeId(1));
            h.add_zone(&mut sim, &net, &sd, NodeId(2));
            (None, Some(h))
        }
    };
    let platform = |sim: &mut Simulation,
                    name: &str,
                    zone: ZoneId,
                    runtime: Runtime,
                    outbox: Outbox,
                    binding: &Binding| {
        let rng = sim.fork_rng(name);
        match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                rti,
                binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                h,
                zone,
                binding,
                false,
            )
            .unwrap(),
            _ => unreachable!(),
        }
    };
    let connect = |up: &CoordinatedPlatform, down: &CoordinatedPlatform| match (&flat, &hier) {
        (Some(rti), None) => rti.connect(up.federate_id(), down.federate_id(), edge_delay),
        (None, Some(h)) => h.connect(up.federate_id(), down.federate_id(), edge_delay),
        _ => unreachable!(),
    };

    // Seed-derived payloads, identical across coordinators.
    let mut payload_rng = SimRng::seed_from_u64(seed ^ 0xfeed);
    let mut payloads =
        || -> Vec<u8> { (0..EVENTS).map(|_| payload_rng.next_u64() as u8).collect() };

    let producer =
        |sim: &mut Simulation, name: &'static str, zone, node, service, data: Vec<u8>| {
            let outbox = Outbox::new();
            let mut b = ProgramBuilder::new();
            let publish = ServerEventTransactor::declare(&mut b, &outbox, name, deadline);
            {
                let mut logic = b.reactor(name, 0usize);
                let out = logic.output::<dear_someip::FrameBuf>("out");
                let t = logic.timer(
                    "emit",
                    Duration::from_millis(10),
                    Some(Duration::from_millis(10)),
                );
                logic.reaction("emit").triggered_by(t).effects(out).body(
                    move |n: &mut usize, ctx| {
                        if *n < data.len() {
                            ctx.set(out, vec![data[*n]].into());
                        }
                        *n += 1;
                    },
                );
                logic.finish();
                b.connect(out, publish.event).unwrap();
            }
            let binding = Binding::new(&net, &sd, node, 0x10 + node.0);
            binding.offer(
                sim,
                ServiceInstance::new(service, INSTANCE),
                Duration::from_secs(1 << 20),
            );
            let p = platform(
                sim,
                name,
                zone,
                Runtime::new(b.build().unwrap()),
                outbox,
                &binding,
            );
            publish.bind(&p, &binding, spec(service));
            p
        };
    let consumer = |sim: &mut Simulation, name: &'static str, zone, node, service| {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, name);
        let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let collect_rid;
        {
            let mut logic = b.reactor(name, ());
            let sink = seen.clone();
            collect_rid =
                logic
                    .reaction("collect")
                    .triggered_by(input.event)
                    .body(move |_, ctx| {
                        let v = ctx.get(input.event).unwrap()[0];
                        sink.lock().unwrap().push((ctx.tag(), v));
                    });
            logic.finish();
        }
        let binding = Binding::new(&net, &sd, node, 0x10 + node.0);
        let p = platform(
            sim,
            name,
            zone,
            Runtime::new(b.build().unwrap()),
            outbox,
            &binding,
        );
        let stats = input.bind(&p, &binding, spec(service), cfg);
        // A seeded compute cost shifts physical (never logical) times.
        let cost =
            dear_sim::LatencyModel::uniform(Duration::from_micros(10), Duration::from_micros(200));
        p.set_reaction_cost(collect_rid, cost);
        (p, seen, stats)
    };

    let p0 = producer(
        &mut sim,
        "p0",
        ZoneId(0),
        NodeId(3),
        SERVICE_PING,
        payloads(),
    );
    let p1 = producer(
        &mut sim,
        "p1",
        ZoneId(1),
        NodeId(4),
        SERVICE_PONG,
        payloads(),
    );
    let (c0, seen0, stats0) = consumer(&mut sim, "c0", ZoneId(0), NodeId(5), SERVICE_PING);
    let (c1, seen1, stats1) = consumer(&mut sim, "c1", ZoneId(1), NodeId(6), SERVICE_PING);
    let (c2, seen2, stats2) = consumer(&mut sim, "c2", ZoneId(0), NodeId(7), SERVICE_PONG);

    connect(&p0, &c0); // intra-zone (zone 0)
    connect(&p0, &c1); // cross-zone 0 -> 1
    connect(&p1, &c2); // cross-zone 1 -> 0

    for p in [&p0, &p1, &c0, &c1, &c2] {
        p.start(&mut sim);
    }
    sim.run_until(Instant::from_millis(200));

    let lane = |seen: &Arc<Mutex<Vec<(Tag, u8)>>>| seen.lock().unwrap().clone();
    let mut report = RunReport {
        traces: vec![lane(&seen0), lane(&seen1), lane(&seen2)],
        bound_breaches: 0,
        stp_violations: 0,
        batches_sent: 0,
        batches_received: 0,
    };
    for s in [&stats0, &stats1, &stats2] {
        report.stp_violations += s.stp_violations();
    }
    for p in [&p0, &p1, &c0, &c1, &c2] {
        let cs = p.coordination_stats();
        report.bound_breaches += cs.bound_breaches();
        report.batches_sent += cs.coord_batches_sent();
        report.batches_received += cs.coord_batches_received();
    }
    if let Some(h) = &hier {
        // The hierarchy was genuinely exercised: both zones granted,
        // floors crossed the root, every hop was batched.
        assert_eq!(h.zone_count(), 2);
        assert_eq!(h.federate_count(), 5);
        for z in [ZoneId(0), ZoneId(1)] {
            let zs = h.zone_stats(z);
            assert!(zs.tags_issued > 0, "{z} issued no grants: {zs}");
            assert!(zs.batches_sent > 0, "{z} sent no batches: {zs}");
        }
        let rs = h.root_stats();
        assert!(rs.floor_records > 0, "no floors crossed the root: {rs}");
        assert!(rs.batches_sent > 0, "root relays must be batched: {rs}");
    }
    report
}

/// The flat and hierarchical coordinators produce byte-identical logical
/// event traces on the same seeded scenario — the tentpole equivalence
/// claim, checked over fixed seeds.
#[test]
fn hierarchical_traces_match_flat_rti_across_seeds() {
    for seed in [0u64, 1, 2, 7, 42] {
        let flat = run_fleet(seed, Coordinator::Flat);
        let hier = run_fleet(seed, Coordinator::TwoZones);

        assert_eq!(
            flat.traces, hier.traces,
            "seed {seed}: traces diverged between coordinators"
        );
        assert_eq!(flat.fingerprint(), hier.fingerprint(), "seed {seed}");

        // Every lane drained fully, and both runs stayed clean.
        for (lane, trace) in flat.traces.iter().enumerate() {
            assert_eq!(trace.len(), EVENTS, "seed {seed}: consumer {lane}");
        }
        for (label, r) in [("flat", &flat), ("hierarchical", &hier)] {
            assert_eq!(r.bound_breaches, 0, "seed {seed} {label}");
            assert_eq!(r.stp_violations, 0, "seed {seed} {label}");
        }

        // The protocols differ exactly as advertised: only the
        // hierarchical run speaks batched coordination frames.
        assert_eq!(flat.batches_sent, 0);
        assert_eq!(flat.batches_received, 0);
        assert!(hier.batches_sent > 0, "seed {seed}: no step batches");
        assert!(hier.batches_received > 0, "seed {seed}: no grant batches");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form of the equivalence claim: *any* seed yields
    /// identical traces, not just the hand-picked ones.
    #[test]
    fn hierarchical_traces_match_flat_rti_on_any_seed(seed in any::<u64>()) {
        let flat = run_fleet(seed, Coordinator::Flat);
        let hier = run_fleet(seed, Coordinator::TwoZones);
        prop_assert_eq!(&flat.traces, &hier.traces);
        prop_assert_eq!(flat.fingerprint(), hier.fingerprint());
        prop_assert_eq!(flat.bound_breaches + hier.bound_breaches, 0);
    }
}

/// Partition tolerance, scoped per shard: severing one zone's uplink
/// kills only that zone's floor at the root. The root declares the zone
/// dead after the liveness deadline, releases its bound, and consumers
/// in sibling zones drain the still-flowing data plane; without liveness
/// they stall forever. Member-level watchdogs inside the silent zone see
/// heartbeats throughout and declare nobody dead.
#[test]
fn dead_zone_releases_floor_for_sibling_zones() {
    fn run(enable_liveness: bool) -> (u64, u64, usize, usize) {
        let deadline = Duration::from_millis(2);
        let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
        let edge_delay = deadline + cfg.stp_offset();

        let mut sim = Simulation::new(13);
        sim.enable_tracing();
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let hier = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
        let zone0 = hier.add_zone(&mut sim, &net, &sd, NodeId(1));
        let zone1 = hier.add_zone(&mut sim, &net, &sd, NodeId(2));
        if enable_liveness {
            hier.enable_liveness(&mut sim, Duration::from_millis(50));
        }

        // Producer in zone 1: emits 5 payloads on a 10ms timer.
        let producer =
            {
                let outbox = Outbox::new();
                let mut b = ProgramBuilder::new();
                let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", deadline);
                {
                    let mut logic = b.reactor("producer", 0u8);
                    let out = logic.output::<dear_someip::FrameBuf>("out");
                    let t = logic.timer(
                        "emit",
                        Duration::from_millis(10),
                        Some(Duration::from_millis(10)),
                    );
                    logic.reaction("emit").triggered_by(t).effects(out).body(
                        move |n: &mut u8, ctx| {
                            *n += 1;
                            if *n <= 5 {
                                ctx.set(out, vec![*n].into());
                            }
                        },
                    );
                    logic.finish();
                    b.connect(out, publish.event).unwrap();
                }
                let binding = Binding::new(&net, &sd, NodeId(3), 0x13);
                binding.offer(
                    &mut sim,
                    ServiceInstance::new(SERVICE_PING, INSTANCE),
                    Duration::from_secs(1 << 20),
                );
                let platform = CoordinatedPlatform::new_in_zone(
                    "producer",
                    Runtime::new(b.build().unwrap()),
                    VirtualClock::ideal(),
                    Outbox::clone(&outbox),
                    sim.fork_rng("producer-costs"),
                    &hier,
                    zone1,
                    &binding,
                    false,
                )
                .unwrap();
                publish.bind(&platform, &binding, spec(SERVICE_PING));
                platform
            };

        // Consumer in zone 0, fed across the zone boundary.
        let seen: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let outbox = Outbox::new();
            let mut b = ProgramBuilder::new();
            let input = ClientEventTransactor::declare(&mut b, "ping");
            {
                let mut logic = b.reactor("consumer", ());
                let sink = seen.clone();
                logic
                    .reaction("collect")
                    .triggered_by(input.event)
                    .body(move |_, ctx| {
                        sink.lock().unwrap().push(ctx.get(input.event).unwrap()[0]);
                    });
                logic.finish();
            }
            let binding = Binding::new(&net, &sd, NodeId(4), 0x14);
            let platform = CoordinatedPlatform::new_in_zone(
                "consumer",
                Runtime::new(b.build().unwrap()),
                VirtualClock::ideal(),
                Outbox::clone(&outbox),
                sim.fork_rng("consumer-costs"),
                &hier,
                zone0,
                &binding,
                false,
            )
            .unwrap();
            input.bind(&platform, &binding, spec(SERVICE_PING), cfg);
            platform
        };
        hier.connect(producer.federate_id(), consumer.federate_id(), edge_delay);

        producer.start(&mut sim);
        consumer.start(&mut sim);
        producer.enable_heartbeat(&mut sim, Duration::from_millis(10));
        consumer.enable_heartbeat(&mut sim, Duration::from_millis(10));

        // Sever zone 1's uplink to the root after the third event. The
        // zone itself stays healthy — its members keep heartbeating and
        // being granted — but its floor stops reaching the root, so the
        // consumer's proxy for zone 1 freezes.
        let mut faults = dear_sim::FaultPlan::new();
        faults.kill_link(Instant::from_millis(35), NodeId(2), NodeId(0));
        faults.apply(&mut sim, &net);

        sim.run_until(Instant::from_secs(1));

        let zone_deaths = hier.root_stats().deaths;
        let member_deaths = hier.zone_stats(zone0).deaths + hier.zone_stats(zone1).deaths;
        let seen = seen.lock().unwrap().len();
        let traces = sim.trace_log().events_in("rti").count();
        (zone_deaths, member_deaths, seen, traces)
    }

    let (zone_deaths, member_deaths, seen, traces) = run(true);
    assert_eq!(
        zone_deaths, 1,
        "the silent zone is declared dead at the root"
    );
    assert_eq!(
        member_deaths, 0,
        "liveness is scoped per shard: no member watchdog fires"
    );
    assert_eq!(traces, 1, "the zone death lands in the trace");
    assert_eq!(
        seen, 5,
        "sibling zones keep advancing once the dead zone's floor is released"
    );

    let (zone_deaths, member_deaths, seen, _) = run(false);
    assert_eq!(zone_deaths, 0);
    assert_eq!(member_deaths, 0);
    assert!(
        seen < 5,
        "without liveness the sibling stalls on the dead zone's frozen floor (saw {seen})"
    );
}
