//! Behavioural tests of the coordination control-plane diet (PR 9):
//! DNET sink suppression, same-head NET dedup, grant-ahead windows and
//! the periodic fast path must change *only* how many control frames
//! cross the wire — never the logical outcome. Diet-on and diet-off
//! runs of the same seeded scenario must produce byte-identical
//! per-consumer `(tag, value)` traces under both the flat RTI and the
//! two-level hierarchy, and a suppressed federate dying must not wedge
//! the LBTS fixpoint for survivors (its DNET state is invalidated on
//! death).

use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_federation::{CoordinatedPlatform, HierarchicalRti, Rti, RtiStats, ZoneId};
use dear_sim::{LinkConfig, NetworkHandle, NodeId, SimRng, Simulation, VirtualClock};
use dear_someip::{Binding, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientEventTransactor, DearConfig, EventSpec, Outbox, ServerEventTransactor,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const SERVICE_PING: u16 = 0x0100;
const SERVICE_PONG: u16 = 0x0200;
const INSTANCE: u16 = 1;
const EVENTGROUP: u16 = 1;
const EVENT: u16 = 0x8001;
const EVENTS: usize = 5;

fn spec(service: u16) -> EventSpec {
    EventSpec {
        service,
        instance: INSTANCE,
        eventgroup: EVENTGROUP,
        event: EVENT,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Coordinator {
    Flat,
    TwoZones,
}

/// FNV-1a over arbitrary little-endian words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

/// The observable outcome of one data-plane pipeline run.
struct PipelineReport {
    /// One lane per consumer, in registration order.
    traces: Vec<Vec<(Tag, u8)>>,
    bound_breaches: u64,
    stp_violations: u64,
    nets_suppressed: u64,
    rti: RtiStats,
}

impl PipelineReport {
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for lane in &self.traces {
            h.eat(u64::MAX); // lane separator
            for (tag, v) in lane {
                h.eat(tag.time.as_nanos());
                h.eat(u64::from(tag.microstep));
                h.eat(u64::from(*v));
            }
        }
        h.0
    }
}

/// Runs the five-federate, two-service pipeline from `tests/hierarchy.rs`
/// (two timer producers, three transactor consumers, intra- and
/// cross-zone edges) under either coordinator, with the control diet on
/// or off. Producers carry a 10 ms periodic lattice; consumers are pure
/// sinks, so the flat diet classifies them via DNET and suppresses
/// their reports entirely.
fn run_pipeline(seed: u64, coordinator: Coordinator, diet: bool) -> PipelineReport {
    let deadline = Duration::from_millis(2);
    let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
    let edge_delay = deadline + cfg.stp_offset();

    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    // Node plan: 0 = root/RTI, 1..=2 = zone coordinators, 3.. = federates.
    // The diet must be switched on before any platform is built — each
    // platform queries the coordinator's mode once, at construction.
    let (flat, hier) = match coordinator {
        Coordinator::Flat => {
            let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
            if diet {
                rti.enable_control_diet();
            }
            (Some(rti), None)
        }
        Coordinator::TwoZones => {
            let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
            h.add_zone(&mut sim, &net, &sd, NodeId(1));
            h.add_zone(&mut sim, &net, &sd, NodeId(2));
            if diet {
                h.enable_control_diet();
            }
            (None, Some(h))
        }
    };
    let platform = |sim: &mut Simulation,
                    name: &str,
                    zone: ZoneId,
                    runtime: Runtime,
                    outbox: Outbox,
                    binding: &Binding| {
        let rng = sim.fork_rng(name);
        match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                rti,
                binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                h,
                zone,
                binding,
                false,
            )
            .unwrap(),
            _ => unreachable!(),
        }
    };
    let connect = |up: &CoordinatedPlatform, down: &CoordinatedPlatform| match (&flat, &hier) {
        (Some(rti), None) => rti.connect(up.federate_id(), down.federate_id(), edge_delay),
        (None, Some(h)) => h.connect(up.federate_id(), down.federate_id(), edge_delay),
        _ => unreachable!(),
    };

    // Seed-derived payloads, identical across coordinators and diets.
    let mut payload_rng = SimRng::seed_from_u64(seed ^ 0xfeed);
    let mut payloads =
        || -> Vec<u8> { (0..EVENTS).map(|_| payload_rng.next_u64() as u8).collect() };

    let producer =
        |sim: &mut Simulation, name: &'static str, zone, node, service, data: Vec<u8>| {
            let outbox = Outbox::new();
            let mut b = ProgramBuilder::new();
            let publish = ServerEventTransactor::declare(&mut b, &outbox, name, deadline);
            {
                let mut logic = b.reactor(name, 0usize);
                let out = logic.output::<dear_someip::FrameBuf>("out");
                let t = logic.timer(
                    "emit",
                    Duration::from_millis(10),
                    Some(Duration::from_millis(10)),
                );
                logic.reaction("emit").triggered_by(t).effects(out).body(
                    move |n: &mut usize, ctx| {
                        if *n < data.len() {
                            ctx.set(out, vec![data[*n]].into());
                        }
                        *n += 1;
                    },
                );
                logic.finish();
                b.connect(out, publish.event).unwrap();
            }
            let binding = Binding::new(&net, &sd, node, 0x10 + node.0);
            binding.offer(
                sim,
                ServiceInstance::new(service, INSTANCE),
                Duration::from_secs(1 << 20),
            );
            let p = platform(
                sim,
                name,
                zone,
                Runtime::new(b.build().unwrap()),
                outbox,
                &binding,
            );
            publish.bind(&p, &binding, spec(service));
            p
        };
    let consumer = |sim: &mut Simulation, name: &'static str, zone, node, service| {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, name);
        let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let collect_rid;
        {
            let mut logic = b.reactor(name, ());
            let sink = seen.clone();
            collect_rid =
                logic
                    .reaction("collect")
                    .triggered_by(input.event)
                    .body(move |_, ctx| {
                        let v = ctx.get(input.event).unwrap()[0];
                        sink.lock().unwrap().push((ctx.tag(), v));
                    });
            logic.finish();
        }
        let binding = Binding::new(&net, &sd, node, 0x10 + node.0);
        let p = platform(
            sim,
            name,
            zone,
            Runtime::new(b.build().unwrap()),
            outbox,
            &binding,
        );
        let stats = input.bind(&p, &binding, spec(service), cfg);
        // A seeded compute cost shifts physical (never logical) times.
        let cost =
            dear_sim::LatencyModel::uniform(Duration::from_micros(10), Duration::from_micros(200));
        p.set_reaction_cost(collect_rid, cost);
        (p, seen, stats)
    };

    let p0 = producer(
        &mut sim,
        "p0",
        ZoneId(0),
        NodeId(3),
        SERVICE_PING,
        payloads(),
    );
    let p1 = producer(
        &mut sim,
        "p1",
        ZoneId(1),
        NodeId(4),
        SERVICE_PONG,
        payloads(),
    );
    let (c0, seen0, stats0) = consumer(&mut sim, "c0", ZoneId(0), NodeId(5), SERVICE_PING);
    let (c1, seen1, stats1) = consumer(&mut sim, "c1", ZoneId(1), NodeId(6), SERVICE_PING);
    let (c2, seen2, stats2) = consumer(&mut sim, "c2", ZoneId(0), NodeId(7), SERVICE_PONG);

    connect(&p0, &c0); // intra-zone (zone 0)
    connect(&p0, &c1); // cross-zone 0 -> 1
    connect(&p1, &c2); // cross-zone 1 -> 0

    for p in [&p0, &p1, &c0, &c1, &c2] {
        p.start(&mut sim);
    }
    sim.run_until(Instant::from_millis(200));

    let lane = |seen: &Arc<Mutex<Vec<(Tag, u8)>>>| seen.lock().unwrap().clone();
    let mut report = PipelineReport {
        traces: vec![lane(&seen0), lane(&seen1), lane(&seen2)],
        bound_breaches: 0,
        stp_violations: 0,
        nets_suppressed: 0,
        rti: match (&flat, &hier) {
            (Some(rti), None) => rti.stats(),
            (None, Some(h)) => h.stats(),
            _ => unreachable!(),
        },
    };
    for s in [&stats0, &stats1, &stats2] {
        report.stp_violations += s.stp_violations();
    }
    for p in [&p0, &p1, &c0, &c1, &c2] {
        let cs = p.coordination_stats();
        report.bound_breaches += cs.bound_breaches();
        report.nets_suppressed += cs.nets_suppressed();
    }
    report
}

/// Switching the diet on changes no logical trace on the data-plane
/// pipeline — flat or hierarchical — while the flat diet provably
/// suppresses the sink consumers' reports via DNET.
#[test]
fn diet_preserves_pipeline_traces_across_seeds() {
    for seed in [0u64, 3, 42] {
        let flat_off = run_pipeline(seed, Coordinator::Flat, false);
        let flat_on = run_pipeline(seed, Coordinator::Flat, true);
        let hier_off = run_pipeline(seed, Coordinator::TwoZones, false);
        let hier_on = run_pipeline(seed, Coordinator::TwoZones, true);

        assert_eq!(
            flat_off.traces, flat_on.traces,
            "seed {seed}: the flat diet changed a logical trace"
        );
        assert_eq!(
            hier_off.traces, hier_on.traces,
            "seed {seed}: the hierarchical diet changed a logical trace"
        );
        assert_eq!(
            flat_on.traces, hier_on.traces,
            "seed {seed}: coordinators diverged with the diet on"
        );
        assert_eq!(flat_off.fingerprint(), flat_on.fingerprint(), "seed {seed}");
        assert_eq!(hier_off.fingerprint(), hier_on.fingerprint(), "seed {seed}");

        for (label, r) in [
            ("flat/off", &flat_off),
            ("flat/on", &flat_on),
            ("hier/off", &hier_off),
            ("hier/on", &hier_on),
        ] {
            for (lane, trace) in r.traces.iter().enumerate() {
                assert_eq!(trace.len(), EVENTS, "seed {seed} {label}: consumer {lane}");
            }
            assert_eq!(r.bound_breaches, 0, "seed {seed} {label}");
            assert_eq!(r.stp_violations, 0, "seed {seed} {label}");
        }

        // The flat diet genuinely engaged: the three sink consumers were
        // DNET-classified and their reports suppressed, so strictly
        // fewer control frames reached the RTI.
        assert!(
            flat_on.rti.dnets_sent > 0,
            "seed {seed}: the flat RTI pushed no DNET frames"
        );
        assert!(
            flat_on.nets_suppressed > 0,
            "seed {seed}: no report was suppressed under the flat diet"
        );
        assert!(
            flat_on.rti.nets_received + flat_on.rti.ltcs_received
                < flat_off.rti.nets_received + flat_off.rti.ltcs_received,
            "seed {seed}: the diet did not reduce inbound control frames \
             (on: {} nets + {} ltcs, off: {} nets + {} ltcs)",
            flat_on.rti.nets_received,
            flat_on.rti.ltcs_received,
            flat_off.rti.nets_received,
            flat_off.rti.ltcs_received,
        );
        // Diet off is the PR 8 wire protocol, bit for bit: no DNETs, no
        // windowed tags.
        for (label, r) in [("flat", &flat_off), ("hier", &hier_off)] {
            assert_eq!(r.rti.dnets_sent, 0, "seed {seed} {label}");
            assert_eq!(r.rti.window_tags, 0, "seed {seed} {label}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the equivalence claim: *any* seed yields
    /// identical traces with the diet on and off, flat and hierarchical.
    #[test]
    fn diet_preserves_pipeline_traces_on_any_seed(seed in any::<u64>()) {
        let flat_off = run_pipeline(seed, Coordinator::Flat, false);
        let flat_on = run_pipeline(seed, Coordinator::Flat, true);
        let hier_off = run_pipeline(seed, Coordinator::TwoZones, false);
        let hier_on = run_pipeline(seed, Coordinator::TwoZones, true);
        prop_assert_eq!(&flat_off.traces, &flat_on.traces);
        prop_assert_eq!(&hier_off.traces, &hier_on.traces);
        prop_assert_eq!(&flat_on.traces, &hier_on.traces);
        prop_assert_eq!(
            flat_off.bound_breaches + flat_on.bound_breaches
                + hier_off.bound_breaches + hier_on.bound_breaches,
            0
        );
    }
}

/// The outcome of one timer-only chain run (the fleet-scale shape where
/// grant-ahead windows actually fire: lattice-declared federates with
/// lattice-declared upstreams).
struct ChainReport {
    fingerprint: u64,
    processed: u64,
    windowed_grants: u64,
    nets_suppressed: u64,
    rti: RtiStats,
    observe_snapshot: String,
}

const CHAIN_ZONES: usize = 3;
const CHAIN_MEMBERS: usize = 4;

/// Twelve timer-only federates in one global chain `m0 → … → m11`
/// (crossing both zone boundaries when hierarchical), 10 ms timers, 1 ms
/// edges. No data plane — coordination alone gates the tags, exactly the
/// `fleet_scale` regime. The horizon deliberately avoids a lattice point
/// so the last processable tag (90 ms) lands well inside it under both
/// diets.
fn run_chain(seed: u64, coordinator: Coordinator, diet: bool) -> ChainReport {
    let n = CHAIN_ZONES * CHAIN_MEMBERS;
    let edge_delay = Duration::from_millis(1);
    let mut sim = Simulation::new(seed);
    let observe = sim.enable_observability();
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(50)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    let (flat, hier) = match coordinator {
        Coordinator::Flat => {
            let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
            if diet {
                rti.enable_control_diet();
            }
            (Some(rti), None)
        }
        Coordinator::TwoZones => {
            let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
            for z in 0..CHAIN_ZONES {
                h.add_zone(&mut sim, &net, &sd, NodeId(1 + z as u16));
            }
            if diet {
                h.enable_control_diet();
            }
            (None, Some(h))
        }
    };

    let mut platforms = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("m{i}");
        let binding = Binding::new(
            &net,
            &sd,
            NodeId((1 + CHAIN_ZONES + i) as u16),
            0x1000 + i as u16,
        );
        let mut b = ProgramBuilder::new();
        {
            let mut r = b.reactor(&name, 0u64);
            let t = r.timer(
                "tick",
                Duration::from_millis(10),
                Some(Duration::from_millis(10)),
            );
            r.reaction("tick")
                .triggered_by(t)
                .body(|ticks: &mut u64, _| *ticks += 1);
            r.finish();
        }
        let runtime = Runtime::new(b.build().unwrap());
        let rng = sim.fork_rng(&name);
        let p = match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                rti,
                &binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                h,
                ZoneId((i / CHAIN_MEMBERS) as u16),
                &binding,
                false,
            )
            .unwrap(),
            _ => unreachable!(),
        };
        platforms.push(p);
    }
    for w in platforms.windows(2) {
        let (u, d) = (w[0].federate_id(), w[1].federate_id());
        match (&flat, &hier) {
            (Some(rti), None) => rti.connect(u, d, edge_delay),
            (None, Some(h)) => h.connect(u, d, edge_delay),
            _ => unreachable!(),
        }
    }

    for p in &platforms {
        p.start(&mut sim);
    }
    sim.run_until(Instant::from_millis(95));

    let mut h = Fnv::new();
    let mut processed = 0;
    let mut windowed_grants = 0;
    let mut nets_suppressed = 0;
    for p in &platforms {
        let cs = p.coordination_stats();
        assert_eq!(cs.bound_breaches(), 0, "{} breached its bound", p.name());
        windowed_grants += cs.windowed_grants();
        nets_suppressed += cs.nets_suppressed();
        let tags = p.stats().processed_tags;
        processed += tags;
        let max = p.max_processed_tag().unwrap_or(Tag::ORIGIN);
        h.eat(tags);
        h.eat(max.time.as_nanos());
        h.eat(u64::from(max.microstep));
    }
    ChainReport {
        fingerprint: h.0,
        processed,
        windowed_grants,
        nets_suppressed,
        rti: match (&flat, &hier) {
            (Some(rti), None) => rti.stats(),
            (None, Some(h)) => h.stats(),
            _ => unreachable!(),
        },
        observe_snapshot: observe.snapshot(),
    }
}

/// On the chain fleet the diet's grant-ahead windows and DNET
/// suppression fire for real, cut the control-frame volume, and leave
/// every federate's processed-tag trace untouched.
#[test]
fn diet_preserves_chain_tags_and_cuts_control_frames() {
    for seed in [7u64, 42] {
        let flat_off = run_chain(seed, Coordinator::Flat, false);
        let flat_on = run_chain(seed, Coordinator::Flat, true);
        let hier_off = run_chain(seed, Coordinator::TwoZones, false);
        let hier_on = run_chain(seed, Coordinator::TwoZones, true);

        // Equivalence: same processed tags, same per-federate extents.
        assert_eq!(flat_off.fingerprint, flat_on.fingerprint, "seed {seed}");
        assert_eq!(hier_off.fingerprint, hier_on.fingerprint, "seed {seed}");
        assert_eq!(flat_on.processed, hier_on.processed, "seed {seed}");
        assert!(flat_on.processed > 0, "seed {seed}: nothing processed");

        // Engagement: windows covered runs of future tags in one frame,
        // DNETs were pushed, reports were suppressed.
        for (label, r) in [("flat", &flat_on), ("hier", &hier_on)] {
            assert!(
                r.rti.window_tags > 0,
                "seed {seed} {label}: no windowed tags ({})",
                r.rti
            );
            assert!(
                r.windowed_grants > 0,
                "seed {seed} {label}: no platform saw a windowed grant"
            );
            assert!(r.rti.dnets_sent > 0, "seed {seed} {label}: no DNETs");
        }
        assert!(
            flat_on.nets_suppressed > 0,
            "seed {seed}: the chain tail was not suppressed"
        );

        // The point of the diet: fewer control frames per granted tag.
        // Windowed grants collapse runs of TAG frames and sink reports
        // vanish, so both directions shrink. (The processed-tag
        // fingerprints above prove the *coverage* did not shrink.)
        for (label, on, off) in [("flat", &flat_on, &flat_off), ("hier", &hier_on, &hier_off)] {
            assert!(
                on.rti.tags_issued < off.rti.tags_issued,
                "seed {seed} {label}: windows did not reduce TAG frames \
                 (on: {}, off: {})",
                on.rti.tags_issued,
                off.rti.tags_issued,
            );
            assert!(
                on.rti.nets_received + on.rti.ltcs_received
                    <= off.rti.nets_received + off.rti.ltcs_received,
                "seed {seed} {label}: inbound control frames grew under the diet"
            );
        }

        // The diet's telemetry reaches the shared registry (and with it
        // the ObservabilityReport footer and the Chrome trace export).
        for key in [
            "coord/nets_suppressed",
            "coord/window_len",
            "coord/dnet_horizon_ns",
        ] {
            assert!(
                flat_on.observe_snapshot.contains(key),
                "seed {seed}: {key} missing from the metrics snapshot:\n{}",
                flat_on.observe_snapshot
            );
        }
    }
}

/// Federate death under the diet: the dying producer is lattice-declared
/// (its DNET/period state lives at the RTI) and the surviving consumer
/// is a DNET-suppressed sink, yet liveness still declares the death and
/// releases the floor — the survivor drains the full data plane. Without
/// liveness it stalls, exactly as diet-off. A suppressed federate dying
/// must not wedge the LBTS fixpoint.
#[test]
fn dead_lattice_federate_releases_lbts_under_the_diet() {
    fn run(enable_liveness: bool) -> (u64, usize, u64, u64) {
        let deadline = Duration::from_millis(2);
        let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
        let edge_delay = deadline + cfg.stp_offset();

        let mut sim = Simulation::new(17);
        sim.enable_tracing();
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
        rti.enable_control_diet();
        if enable_liveness {
            rti.enable_liveness(Duration::from_millis(50));
        }

        // Producer: emits 5 payloads on a 10 ms timer; timer-only, so it
        // declares a 10 ms periodic lattice at registration.
        let producer =
            {
                let outbox = Outbox::new();
                let mut b = ProgramBuilder::new();
                let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", deadline);
                {
                    let mut logic = b.reactor("producer", 0u8);
                    let out = logic.output::<dear_someip::FrameBuf>("out");
                    let t = logic.timer(
                        "emit",
                        Duration::from_millis(10),
                        Some(Duration::from_millis(10)),
                    );
                    logic.reaction("emit").triggered_by(t).effects(out).body(
                        move |n: &mut u8, ctx| {
                            *n += 1;
                            if *n <= 5 {
                                ctx.set(out, vec![*n].into());
                            }
                        },
                    );
                    logic.finish();
                    b.connect(out, publish.event).unwrap();
                }
                let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
                binding.offer(
                    &mut sim,
                    ServiceInstance::new(SERVICE_PING, INSTANCE),
                    Duration::from_secs(1 << 20),
                );
                let platform = CoordinatedPlatform::new(
                    "producer",
                    Runtime::new(b.build().unwrap()),
                    VirtualClock::ideal(),
                    Outbox::clone(&outbox),
                    sim.fork_rng("producer-costs"),
                    &rti,
                    &binding,
                    false,
                );
                publish.bind(&platform, &binding, spec(SERVICE_PING));
                platform
            };

        // Consumer: a pure sink, DNET-classified and suppressed.
        let seen: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let outbox = Outbox::new();
            let mut b = ProgramBuilder::new();
            let input = ClientEventTransactor::declare(&mut b, "ping");
            {
                let mut logic = b.reactor("consumer", ());
                let sink = seen.clone();
                logic
                    .reaction("collect")
                    .triggered_by(input.event)
                    .body(move |_, ctx| {
                        sink.lock().unwrap().push(ctx.get(input.event).unwrap()[0]);
                    });
                logic.finish();
            }
            let binding = Binding::new(&net, &sd, NodeId(2), 0x22);
            let platform = CoordinatedPlatform::new(
                "consumer",
                Runtime::new(b.build().unwrap()),
                VirtualClock::ideal(),
                Outbox::clone(&outbox),
                sim.fork_rng("consumer-costs"),
                &rti,
                &binding,
                false,
            );
            input.bind(&platform, &binding, spec(SERVICE_PING), cfg);
            platform
        };
        rti.connect(producer.federate_id(), consumer.federate_id(), edge_delay);

        producer.start(&mut sim);
        consumer.start(&mut sim);
        // Heartbeats bypass the diet's suppression by design: a
        // suppressed-but-alive sink must stay distinguishable from a
        // dead one.
        producer.enable_heartbeat(&mut sim, Duration::from_millis(10));
        consumer.enable_heartbeat(&mut sim, Duration::from_millis(10));

        // Sever the producer's control uplink after its third event; the
        // data plane (producer node -> consumer node) keeps flowing.
        let mut faults = dear_sim::FaultPlan::new();
        faults.kill_link(Instant::from_millis(35), NodeId(1), NodeId(0));
        faults.apply(&mut sim, &net);

        sim.run_until(Instant::from_secs(1));

        let deaths = rti.stats().deaths;
        let suppressed = consumer.coordination_stats().nets_suppressed();
        let seen = seen.lock().unwrap().len();
        (
            deaths,
            seen,
            suppressed,
            consumer.coordination_stats().bound_breaches(),
        )
    }

    let (deaths, seen, suppressed, breaches) = run(true);
    assert_eq!(deaths, 1, "the silent lattice producer is declared dead");
    assert!(
        suppressed > 0,
        "the surviving consumer was never suppressed — the diet did not engage"
    );
    assert_eq!(breaches, 0);
    assert_eq!(
        seen, 5,
        "the suppressed survivor drains fully once the dead producer's \
         DNET/lattice state is invalidated and its floor released"
    );

    let (deaths, seen, _, _) = run(false);
    assert_eq!(deaths, 0);
    assert!(
        seen < 5,
        "without liveness the consumer stalls on the dead producer's bound (saw {seen})"
    );
}
